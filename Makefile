install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f; done

experiments:
	python -m repro experiments

experiments-full:
	python -m repro experiments --full

check:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -x -q
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro experiments E1 E13 --seed 0 --retries 1 --workers 2 --json-summary -

# The crash-safety net end to end: the chaos test suite (worker kills,
# poison-task quarantine, heartbeat escalation, disk faults), then a
# supervised parallel CLI run with the supervision flags exercised.
chaos-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest tests/test_runtime_chaos.py -q
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro experiments E4 E5 E6 E10 --seed 0 \
		--workers 2 --keep-going --max-worker-crashes 2 --json-summary -

# The sweep engine end to end: a 3-point grid on a cheap experiment at
# --workers 2, then the same grid again against the now-warm artifact
# cache (every point must replay as source=cache).
sweep-smoke:
	rm -rf .sweep-smoke && mkdir -p .sweep-smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro sweep --grid seed=0,1,2 E7 \
		--workers 2 --cache-dir .sweep-smoke/cache --results-dir .sweep-smoke/results \
		--json-summary .sweep-smoke/cold.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro sweep --grid seed=0,1,2 E7 \
		--workers 2 --cache-dir .sweep-smoke/cache --json-summary .sweep-smoke/warm.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -c "import json; \
		cold = json.load(open('.sweep-smoke/cold.json')); \
		warm = json.load(open('.sweep-smoke/warm.json')); \
		assert cold['all_ok'] and warm['all_ok'], 'sweep points failed'; \
		assert warm['from_cache'] == warm['total'] == 3, warm; \
		assert cold['fingerprint'] == warm['fingerprint'], 'warm run drifted'"
	rm -rf .sweep-smoke

# The result service end to end: the serve test suite (framing, jobs,
# degradation ladder, chaos), then the standalone smoke script — hot
# and cold fetches, a coalescing probe, a killed-worker -> 503 probe, a
# graceful-drain check, and a real-CLI SIGTERM drain.
serve-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest \
		tests/test_serve_http.py tests/test_serve_jobs.py \
		tests/test_serve_service.py tests/test_serve_chaos.py -q
	python scripts/serve_smoke.py

# One fast experiment with tracing + metrics on; `obs report` re-parses
# the trace and fails on a malformed span, so this asserts the whole
# export -> parse -> render path.
obs-smoke:
	rm -rf .obs-smoke && mkdir -p .obs-smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro run E11 \
		--trace-out .obs-smoke/trace.jsonl --metrics-out .obs-smoke/metrics.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro obs report .obs-smoke/trace.jsonl
	rm -rf .obs-smoke

# The perf-regression gate against the committed ledger: re-measure the
# cheap hot paths, append to benchmarks/results/BENCH_history.json, and
# fail if any gated series is >20% worse than its trailing median.
bench-gate:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench run scanner tfidf --repeats 12
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench gate

# The gate machinery end to end against a throwaway ledger: two honest
# runs must pass, then a synthetically inflated (+50%) entry must make
# the gate exit non-zero — proving it can actually fail.
bench-gate-smoke:
	rm -rf .bench-smoke && mkdir -p .bench-smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench run scanner \
		--ledger .bench-smoke/ledger.json --repeats 3
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench run scanner \
		--ledger .bench-smoke/ledger.json --repeats 3
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench gate scanner \
		--ledger .bench-smoke/ledger.json
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -c "from repro.bench.ledger import append_entries, load_ledger, make_entry; \
		rows = load_ledger('.bench-smoke/ledger.json'); \
		last = rows[-1]; \
		append_entries('.bench-smoke/ledger.json', [make_entry( \
			last['bench'], last['value'] * 1.5, metric=last['metric'], \
			context={'synthetic': True})])"
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench gate scanner \
		--ledger .bench-smoke/ledger.json && exit 1 || true
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench report \
		--ledger .bench-smoke/ledger.json
	rm -rf .bench-smoke

# Shard-parallel corpus generation end to end: generate a 10^4-paper
# columnar corpus at workers=2 through the CLI, re-derive its
# fingerprint sequentially in-process, then replay the warm shard cache
# streamed — all three fingerprints must agree, proving worker-count
# and cache-state invariance.
corpus-smoke:
	rm -rf .corpus-smoke
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro corpus .corpus-smoke/run \
		--papers 10000 --workers 2 --shard-size 2500 \
		--cache-dir .corpus-smoke/shards
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -c "import json; \
		from repro.bibliometrics.shardgen import ShardedCorpusConfig, generate_columnar_corpus; \
		manifest = json.load(open('.corpus-smoke/run/manifest.json')); \
		config = ShardedCorpusConfig(**manifest['config']); \
		sequential = generate_columnar_corpus(config).fingerprint(); \
		assert sequential == manifest['fingerprint'], 'worker-count drift'; \
		warm = generate_columnar_corpus(config, cache_dir='.corpus-smoke/shards', stream=True); \
		assert warm.fingerprint() == sequential, 'warm-cache drift'; \
		assert warm.resident_shards() <= 1, 'streaming held >1 shard'; \
		print('corpus-smoke ok: ' + sequential)"
	rm -rf .corpus-smoke

# The self-healing data plane end to end: the integrity test suite
# (damage taxonomy, corrupt-then-repair round trips, snapshot tamper
# detection), then the standalone smoke script — flip a byte in a
# cached shard, assert the strict read raises IntegrityError, scrub
# --repair restores the exact fingerprint, a tampered snapshot
# manifest is rejected, and serve answers 200 via recompute (never
# 500) over a corrupted artifact.
integrity-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest \
		tests/test_integrity.py tests/test_io_artifacts.py -q
	python scripts/integrity_smoke.py

# The columnar experiment backend end to end: the backend test suites
# (identity rules, routing, classic-vs-columnar oracle equality,
# shardscan edge cases), then the standalone smoke script — E1 fast on
# both backends with result-fingerprint equality, config_hash
# invariance, warm shard-cache replay, and a classic-warmed sweep
# served to a columnar rerun entirely from cache.
experiments-columnar-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest \
		tests/test_experiments_columnar.py tests/test_biblio_shardscan.py -q
	python scripts/columnar_smoke.py

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

.PHONY: install test bench examples experiments experiments-full check chaos-smoke sweep-smoke serve-smoke obs-smoke bench-gate bench-gate-smoke corpus-smoke integrity-smoke experiments-columnar-smoke outputs
