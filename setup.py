"""Legacy setup shim: this environment has no `wheel` package, so the
PEP 517 editable path (which needs bdist_wheel) fails; `setup.py develop`
does not.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
