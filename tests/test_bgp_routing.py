"""Tests for repro.netsim.bgp.routing."""

import pytest

from repro.netsim.bgp.asys import AS, ASGraph, Relationship
from repro.netsim.bgp.routing import propagate_routes


def chain_graph():
    """1 (tier-1) -> 2 -> 3 provider chains, plus 4 peered with 2."""
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(AS(asn))
    g.add_customer(provider=1, customer=2)
    g.add_customer(provider=2, customer=3)
    g.add_peering(2, 4)
    return g


class TestPropagation:
    def test_customer_routes_reach_everyone(self):
        table = propagate_routes(chain_graph())
        # 3's prefix is a customer route at 2, so 1 and 4 both learn it.
        assert table.full_path(1, 3) == (1, 2, 3)
        assert table.full_path(4, 3) == (4, 2, 3)

    def test_valley_free_blocks_peer_transit(self):
        # 4 is a peer of 2; 4's prefix must not be re-exported by 2 to 1
        # (peer route to provider) — so 1 cannot reach 4.
        table = propagate_routes(chain_graph())
        assert table.full_path(1, 4) is None

    def test_customers_learn_provider_routes(self):
        table = propagate_routes(chain_graph())
        # 3 learns 4's prefix via its provider 2 (peer route exported down).
        assert table.full_path(3, 4) == (3, 2, 4)

    def test_self_path(self):
        table = propagate_routes(chain_graph())
        assert table.full_path(2, 2) == (2,)

    def test_customer_route_preferred_over_peer(self):
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(AS(asn))
        # 3 reachable from 1 both via customer 2 and direct peering 1-3.
        g.add_customer(provider=1, customer=2)
        g.add_customer(provider=2, customer=3)
        g.add_peering(1, 3)
        table = propagate_routes(g)
        route = table.route(1, 3)
        # Customer route (1->2->3) wins over the shorter peer route.
        assert route.learned_from is Relationship.CUSTOMER
        assert route.path == (2, 3)

    def test_shorter_path_wins_within_class(self):
        g = ASGraph()
        for asn in (1, 2, 3, 4):
            g.add_as(AS(asn))
        g.add_customer(provider=1, customer=4)       # direct
        g.add_customer(provider=1, customer=2)
        g.add_customer(provider=2, customer=3)
        g.add_customer(provider=3, customer=4)       # long way (multi-homed 4)
        table = propagate_routes(g)
        assert table.full_path(1, 4) == (1, 4)

    def test_origins_subset(self):
        table = propagate_routes(chain_graph(), origins=[3])
        assert table.full_path(1, 3) is not None
        assert table.route(1, 2) is None

    def test_unknown_origin_rejected(self):
        with pytest.raises(KeyError):
            propagate_routes(chain_graph(), origins=[99])

    def test_reachable_origins(self):
        table = propagate_routes(chain_graph())
        assert table.reachable_origins(3) == [1, 2, 3, 4]
        assert table.reachable_origins(1) == [1, 2, 3]  # 4 invisible (valley-free)


class TestTier1Scenario:
    def test_two_tier1s_peering_connect_their_cones(self):
        g = ASGraph()
        for asn in (10, 20, 11, 21):
            g.add_as(AS(asn))
        g.add_customer(provider=10, customer=11)
        g.add_customer(provider=20, customer=21)
        g.add_peering(10, 20)
        table = propagate_routes(g)
        # Customer routes cross the peering link in both directions.
        assert table.full_path(11, 21) == (11, 10, 20, 21)
        assert table.full_path(21, 11) == (21, 20, 10, 11)
