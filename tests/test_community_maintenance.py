"""Tests for repro.netsim.community.maintenance."""

import random

import pytest

from repro.netsim.community.maintenance import (
    VolunteerPool,
    repair_time_days,
    sample_failures,
)
from repro.netsim.community.members import Member, MemberPool
from repro.netsim.topology import Location


class TestVolunteerPool:
    def test_from_members(self):
        pool = MemberPool(
            [
                Member("a", Location(0, 0), is_volunteer=True, skill=0.8),
                Member("b", Location(0, 0), is_volunteer=True, skill=0.4),
                Member("c", Location(0, 0), is_volunteer=False, skill=0.9),
            ]
        )
        volunteers = VolunteerPool.from_members(pool)
        assert volunteers.n_volunteers == 2
        assert volunteers.mean_skill == pytest.approx(0.6)
        assert volunteers.local

    def test_empty_pool(self):
        volunteers = VolunteerPool.from_members(MemberPool())
        assert volunteers.n_volunteers == 0


class TestRepairTime:
    def test_local_detection_faster_than_remote(self):
        rng_a, rng_b = random.Random(0), random.Random(0)
        local = VolunteerPool(5, 0.6, local=True)
        remote = VolunteerPool(5, 0.6, local=False)
        local_days = sum(
            repair_time_days(local, 0, 0, random.Random(s)) for s in range(50)
        )
        remote_days = sum(
            repair_time_days(remote, 0, 0, random.Random(s)) for s in range(50)
        )
        assert local_days < remote_days

    def test_backlog_slows_repairs(self):
        pool = VolunteerPool(2, 0.6, local=True)
        quiet = sum(
            repair_time_days(pool, 0, 0, random.Random(s)) for s in range(30)
        )
        swamped = sum(
            repair_time_days(pool, 20, 0, random.Random(s)) for s in range(30)
        )
        assert swamped > quiet

    def test_no_volunteers_means_very_slow(self):
        empty = VolunteerPool(0, 0.0, local=True)
        staffed = VolunteerPool(5, 0.6, local=True)
        empty_days = sum(
            repair_time_days(empty, 2, 0, random.Random(s)) for s in range(30)
        )
        staffed_days = sum(
            repair_time_days(staffed, 2, 0, random.Random(s)) for s in range(30)
        )
        assert empty_days > 3 * staffed_days

    def test_minimum_quarter_day(self):
        pool = VolunteerPool(100, 1.0, local=True)
        assert repair_time_days(pool, 0, 0, random.Random(0)) >= 0.25

    def test_negative_inputs_rejected(self):
        pool = VolunteerPool(1, 0.5, local=True)
        with pytest.raises(ValueError):
            repair_time_days(pool, -1, 0, random.Random(0))
        with pytest.raises(ValueError):
            repair_time_days(pool, 0, -1, random.Random(0))


class TestFailures:
    def test_rate_zero_no_failures(self):
        assert sample_failures(["a", "b"], 0, random.Random(0), base_rate=0.0) == []

    def test_rate_one_all_fail(self):
        failures = sample_failures(
            ["a", "b", "c"], 2, random.Random(0), base_rate=1.0
        )
        assert [f.node_id for f in failures] == ["a", "b", "c"]
        assert all(f.month == 2 for f in failures)

    def test_weather_multiplies(self):
        calm = sum(
            len(sample_failures([str(i) for i in range(100)], 0,
                                random.Random(s), base_rate=0.1))
            for s in range(20)
        )
        stormy = sum(
            len(sample_failures([str(i) for i in range(100)], 0,
                                random.Random(s), base_rate=0.1,
                                weather_multiplier=3.0))
            for s in range(20)
        )
        assert stormy > 2 * calm

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            sample_failures(["a"], 0, random.Random(0), base_rate=-0.1)
