"""Property-based tests for the later-phase modules."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.transport.flows import TahoeSender
from repro.netsim.transport.link import Link, interleave
from repro.qualcoding.ordinal import weighted_kappa
from repro.surveys.weighting import post_stratification_weights, weighted_mean
from repro.textmine.collocations import collocations

ordinal_labels = st.lists(
    st.integers(min_value=1, max_value=5), min_size=1, max_size=80
)


class TestWeightedKappaProperties:
    @given(ordinal_labels)
    def test_self_agreement_perfect(self, ratings):
        assert weighted_kappa(ratings, ratings, [1, 2, 3, 4, 5]) == 1.0

    @given(ordinal_labels, ordinal_labels)
    def test_bounded_above(self, a, b):
        n = min(len(a), len(b))
        kappa = weighted_kappa(a[:n], b[:n], [1, 2, 3, 4, 5])
        assert kappa <= 1.0 + 1e-9

    @given(ordinal_labels, ordinal_labels, st.sampled_from(["linear", "quadratic"]))
    def test_symmetric(self, a, b, weights):
        n = min(len(a), len(b))
        left = weighted_kappa(a[:n], b[:n], [1, 2, 3, 4, 5], weights=weights)
        right = weighted_kappa(b[:n], a[:n], [1, 2, 3, 4, 5], weights=weights)
        assert math.isclose(left, right, abs_tol=1e-10)


strata_samples = st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=1, max_size=60
)


class TestWeightingProperties:
    @given(strata_samples)
    def test_weights_average_to_covered_share(self, sample):
        shares = {"a": 0.5, "b": 0.3, "c": 0.2}
        weights = post_stratification_weights(sample, shares)
        covered = sum(shares[s] for s in set(sample))
        assert math.isclose(sum(weights) / len(weights), covered,
                            rel_tol=1e-9)

    @given(strata_samples)
    def test_weighted_mean_of_constant_is_constant(self, sample):
        shares = {"a": 0.5, "b": 0.3, "c": 0.2}
        weights = post_stratification_weights(sample, shares)
        values = [7.0] * len(sample)
        assert math.isclose(weighted_mean(values, weights), 7.0)


packet_batches = st.lists(
    st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=12),
    min_size=1, max_size=4,
)


class TestLinkProperties:
    @given(packet_batches, st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10))
    def test_conservation(self, batches, capacity, buffer_size):
        """Packets in == served + dropped + still queued, every tick."""
        link = Link(capacity=capacity, buffer_size=buffer_size)
        per_flow = [
            [(flow, seq) for seq in seqs] for flow, seqs in enumerate(batches)
        ]
        offered = sum(len(p) for p in per_flow)
        served, dropped = link.tick(per_flow)
        assert len(served) + len(dropped) + link.queue == offered

    @given(packet_batches, st.integers(min_value=1, max_value=8))
    def test_service_bounded_by_capacity(self, batches, capacity):
        link = Link(capacity=capacity, buffer_size=100)
        per_flow = [
            [(flow, seq) for seq in seqs] for flow, seqs in enumerate(batches)
        ]
        served, _ = link.tick(per_flow)
        assert len(served) <= capacity

    @given(packet_batches)
    def test_interleave_preserves_multiset(self, batches):
        per_flow = [
            [(flow, seq) for seq in seqs] for flow, seqs in enumerate(batches)
        ]
        flat = interleave(per_flow)
        assert sorted(flat) == sorted(p for flow in per_flow for p in flow)


class TestSenderProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_transmissions_bounded_by_window(self, ack_pattern):
        # A window reduction cannot recall packets already in flight
        # (as in real TCP), but each tick's *transmissions* respect the
        # window in force, and in-flight never exceeds the max window.
        sender = TahoeSender("f", demand_per_tick=100, max_window=64)
        for tick, ack_all in enumerate(ack_pattern):
            window_before = max(1, sender.window())
            sends = sender.transmit(tick)
            assert len(sends) <= window_before
            assert len(sender._in_flight) <= 64
            sender.deliver_acks(sends if ack_all else [], tick)

    @given(st.integers(min_value=1, max_value=40))
    def test_acked_never_exceeds_transmitted(self, ticks):
        sender = TahoeSender("f", demand_per_tick=3)
        for tick in range(ticks):
            sends = sender.transmit(tick)
            sender.deliver_acks(sends, tick)
        assert sender.stats.acked <= sender.stats.transmitted


class TestCollocationProperties:
    @given(st.lists(
        st.text(alphabet="abcd ", min_size=0, max_size=40), max_size=8,
    ))
    def test_counts_at_least_min_count(self, documents):
        for collocation in collocations(documents, min_count=2, top_k=50):
            assert collocation.count >= 2
