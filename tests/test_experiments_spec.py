"""Property and equivalence tests for the typed spec layer.

Three guarantees are load-bearing for the whole runtime:

- **Identity is canonical.**  ``config_hash()`` depends only on the
  spec's field values — not dict insertion order, not the process that
  computed it — and distinct configurations never share a hash.
- **Serialization roundtrips.**  ``from_dict(to_dict(spec))`` is the
  identity, which is what lets specs cross the fork pool and the
  crash-requeue path as plain payloads.
- **The legacy shim is exact.**  ``run(seed, fast)`` and
  ``run(Spec.preset(...))`` produce byte-identical results for every
  experiment, so the refactor cannot have moved any operating point.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    make_spec,
    spec_class,
)
from repro.experiments.spec import (
    CorpusParams,
    ExperimentSpec,
    apply_overrides,
    parse_override,
    parse_set_overrides,
    resolve_spec,
)

E7Spec = spec_class("E7")


# ---------------------------------------------------------------------------
# Canonicalization properties (hypothesis)


def e7_specs():
    """Valid E7 specs across the declared field ranges."""
    return st.builds(
        E7Spec,
        seed=st.integers(min_value=0, max_value=10_000),
        n_eyeballs=st.integers(min_value=2, max_value=500),
        pop_presence_levels=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=6,
        ).map(tuple),
    )


@settings(max_examples=50, deadline=None)
@given(spec=e7_specs())
def test_config_hash_is_key_order_insensitive(spec):
    data = spec.to_dict()
    reordered = dict(reversed(list(data.items())))
    assert E7Spec.from_dict(reordered).config_hash() == spec.config_hash()


@settings(max_examples=50, deadline=None)
@given(spec=e7_specs())
def test_to_dict_from_dict_roundtrip_identity(spec):
    rebuilt = E7Spec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.config_hash() == spec.config_hash()
    assert rebuilt.canonical_json() == spec.canonical_json()


@settings(max_examples=50, deadline=None)
@given(a=e7_specs(), b=e7_specs())
def test_distinct_specs_never_collide(a, b):
    if a == b:
        assert a.config_hash() == b.config_hash()
    else:
        assert a.config_hash() != b.config_hash()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_same_fields_different_experiment_different_hash(seed):
    # E6 and E12 share the n_small_isps knob name; the experiment id is
    # part of the canonical payload, so they can never share identity.
    e6 = make_spec("E6", "fast", seed=seed)
    e12 = make_spec("E12", "fast", seed=seed)
    assert e6.config_hash() != e12.config_hash()


def test_canonical_json_is_sorted_and_compact():
    spec = make_spec("E7", "fast", seed=3)
    text = spec.canonical_json()
    assert json.loads(text) == json.loads(text)  # valid JSON
    assert ": " not in text and ", " not in text  # compact separators
    payload = json.loads(text)
    assert list(payload) == sorted(payload)


def test_config_hash_stable_across_processes(tmp_path):
    """The hash must be a pure function of the spec — no per-process salt."""
    src = Path(__file__).resolve().parent.parent / "src"
    script = (
        "import json\n"
        "from repro.experiments.registry import all_experiments, make_spec\n"
        "print(json.dumps({eid: make_spec(eid, 'fast', seed=7).config_hash()\n"
        "                  for eid in all_experiments()}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "random"},
    )
    remote = json.loads(out.stdout)
    local = {
        eid: make_spec(eid, "fast", seed=7).config_hash()
        for eid in all_experiments()
    }
    assert remote == local


# ---------------------------------------------------------------------------
# Preset and validation behaviour


def test_every_experiment_has_fast_and_full_presets():
    for experiment_id in all_experiments():
        cls = spec_class(experiment_id)
        assert cls.EXPERIMENT_ID == experiment_id
        assert set(cls.preset_names()) >= {"fast", "full"}
        fast = cls.preset("fast", seed=1)
        full = cls.preset("full", seed=1)
        assert fast.origin_preset == "fast"
        assert full.origin_preset == "full"
        assert fast.seed == full.seed == 1


def test_unknown_preset_is_a_spec_error():
    with pytest.raises(SpecError, match="preset"):
        E7Spec.preset("turbo")


def test_origin_preset_is_not_part_of_identity():
    assert (
        E7Spec.preset("fast", seed=0).config_hash()
        == E7Spec(seed=0).config_hash()
    )


def test_out_of_range_value_rejected():
    with pytest.raises(SpecError, match="n_eyeballs"):
        E7Spec(n_eyeballs=1)
    with pytest.raises(SpecError, match="pop_presence_levels"):
        E7Spec(pop_presence_levels=(0.0, 1.5))


def test_wrong_type_rejected_including_bool_for_int():
    with pytest.raises(SpecError, match="seed"):
        E7Spec(seed=True)
    with pytest.raises(SpecError, match="n_eyeballs"):
        E7Spec(n_eyeballs="lots")


def test_nested_corpus_params_validated():
    with pytest.raises(SpecError, match="end_year"):
        CorpusParams(start_year=2020, end_year=2010)
    spec = make_spec("E1", "fast")
    assert isinstance(spec.corpus, CorpusParams)


def test_choice_constraint_enforced():
    E13Spec = spec_class("E13")
    with pytest.raises(SpecError, match="cubic"):
        E13Spec(protocols=("tahoe", "cubic"))


def test_from_dict_unknown_key_names_valid_fields():
    with pytest.raises(SpecError) as excinfo:
        E7Spec.from_dict({"seed": 0, "eyeballs": 3})
    message = str(excinfo.value)
    assert "E7Spec" in message and "n_eyeballs" in message


# ---------------------------------------------------------------------------
# Override parsing


def test_parse_override_coerces_types():
    assert parse_override(E7Spec, "seed=5") == ("seed", 5)
    assert parse_override(E7Spec, "pop_presence_levels=0.1,0.9") == (
        "pop_presence_levels",
        (0.1, 0.9),
    )


def test_parse_override_dotted_nested_path():
    E1Spec = spec_class("E1")
    key, value = parse_override(E1Spec, "corpus.start_year=2010")
    assert (key, value) == ("corpus.start_year", 2010)
    spec = apply_overrides(E1Spec.preset("fast"), {key: value})
    assert spec.corpus.start_year == 2010


def test_parse_override_unknown_key_is_one_line_and_actionable():
    with pytest.raises(SpecError) as excinfo:
        parse_override(E7Spec, "bogus=1")
    message = str(excinfo.value)
    assert "\n" not in message
    assert "E7Spec" in message and "n_eyeballs" in message


def test_apply_overrides_preserves_origin_preset():
    spec = apply_overrides(E7Spec.preset("full", seed=2), {"n_eyeballs": 40})
    assert spec.origin_preset == "full"
    assert spec.n_eyeballs == 40 and spec.seed == 2


def test_parse_set_overrides_collects_assignments():
    overrides = parse_set_overrides(E7Spec, ["seed=4", "n_eyeballs=9"])
    assert overrides == {"seed": 4, "n_eyeballs": 9}


# ---------------------------------------------------------------------------
# resolve_spec shim


def test_resolve_spec_accepts_all_calling_conventions():
    preset = E7Spec.preset("fast", seed=3)
    assert resolve_spec(E7Spec, preset) is preset
    assert resolve_spec(E7Spec, None, None, 3) == preset
    assert resolve_spec(E7Spec, 3) == preset
    assert resolve_spec(E7Spec, preset.to_dict()) == preset
    # A spec smuggled through a legacy wrapper's seed= keyword.
    assert resolve_spec(E7Spec, None, True, preset) is preset
    full = resolve_spec(E7Spec, None, False, 3)
    assert full == E7Spec.preset("full", seed=3)


def test_resolve_spec_rejects_wrong_spec_class():
    with pytest.raises(SpecError, match="E7Spec"):
        resolve_spec(E7Spec, make_spec("E13", "fast"))


# ---------------------------------------------------------------------------
# Legacy-vs-spec equivalence: the refactor moved no operating point.


@pytest.mark.parametrize("experiment_id", all_experiments())
def test_legacy_fast_call_matches_fast_preset(experiment_id):
    run_fn = get_experiment(experiment_id)
    legacy = run_fn(seed=1, fast=True)
    via_spec = run_fn(make_spec(experiment_id, "fast", seed=1))
    assert legacy.to_payload() == via_spec.to_payload()


def test_legacy_full_call_matches_full_preset_on_cheap_experiment():
    # One full-preset equivalence witness; the full suite's slow
    # experiments are covered by the fast-preset sweep above plus the
    # shared resolve_spec path.
    run_fn = get_experiment("E6")
    legacy = run_fn(seed=2, fast=False)
    via_spec = run_fn(make_spec("E6", "full", seed=2))
    assert legacy.to_payload() == via_spec.to_payload()


def test_spec_subclasses_are_frozen_and_hashable():
    spec = make_spec("E7", "fast")
    with pytest.raises(Exception):
        spec.seed = 5
    assert isinstance(hash(spec), int)


def test_describe_fields_reports_constraints():
    rows = make_spec("E7", "fast").describe_fields()
    by_name = {row["field"]: row for row in rows}
    assert by_name["n_eyeballs"]["minimum"] == 2
    assert by_name["seed"]["type"] == "int"
