"""Tests for repro.netsim.bgp.policy."""

from repro.netsim.bgp.asys import Relationship
from repro.netsim.bgp.policy import route_preference_key, should_export


class TestPreference:
    def test_customer_beats_peer_beats_provider(self):
        customer = route_preference_key(Relationship.CUSTOMER, (9, 8, 7))
        peer = route_preference_key(Relationship.PEER, (5,))
        provider = route_preference_key(Relationship.PROVIDER, (5,))
        assert customer < peer < provider

    def test_own_prefix_always_best(self):
        own = route_preference_key(None, ())
        customer = route_preference_key(Relationship.CUSTOMER, (2,))
        assert own < customer

    def test_shorter_path_wins_within_class(self):
        short = route_preference_key(Relationship.PEER, (5,))
        long = route_preference_key(Relationship.PEER, (5, 6))
        assert short < long

    def test_lower_next_hop_breaks_ties(self):
        low = route_preference_key(Relationship.PEER, (3, 9))
        high = route_preference_key(Relationship.PEER, (7, 9))
        assert low < high


class TestExport:
    def test_own_prefix_exported_everywhere(self):
        for rel in Relationship:
            assert should_export(None, rel)

    def test_customer_routes_exported_everywhere(self):
        for rel in Relationship:
            assert should_export(Relationship.CUSTOMER, rel)

    def test_peer_routes_only_to_customers(self):
        assert should_export(Relationship.PEER, Relationship.CUSTOMER)
        assert not should_export(Relationship.PEER, Relationship.PEER)
        assert not should_export(Relationship.PEER, Relationship.PROVIDER)

    def test_provider_routes_only_to_customers(self):
        assert should_export(Relationship.PROVIDER, Relationship.CUSTOMER)
        assert not should_export(Relationship.PROVIDER, Relationship.PEER)
        assert not should_export(Relationship.PROVIDER, Relationship.PROVIDER)
