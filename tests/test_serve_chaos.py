"""Chaos tests for repro.serve — the robustness contract under fire.

The acceptance contract: with the fault injector killing compute
workers, the server answers ``503 + Retry-After`` (it never crashes
and never hangs past the deadline), a retry after the fault clears
succeeds, and the circuit breaker stops doomed keys from burning
compute.  Faults are injected through the same
:class:`repro.runtime.faultinject.FaultInjector` the parallel-runtime
chaos suite uses — the kills land inside real pool worker processes.
"""

import time

import pytest

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.runtime.faultinject import FaultInjector, use_fault_injector
from repro.serve.client import fetch
from repro.serve.service import ResultService, ServeConfig, ServerThread

HOST = "127.0.0.1"

#: A cheap experiment with no shared corpus (sub-second per run).
CHEAP = "E5"


def make_chaos_service(tmp_path, injector, **overrides):
    """A service whose compute jobs run under the kill-armed injector.

    ``workers=2`` puts the experiment in real pool workers (kill faults
    only fire there); ``degrade=False`` keeps the runner from falling
    back to in-process execution, where the fault could not fire and
    the compute would quietly succeed.
    """
    defaults = dict(
        cache_dir=str(tmp_path / "cache"),
        workers=2,
        deadline=60.0,
        retry_after=1.0,
    )
    defaults.update(overrides)
    return ResultService(
        ServeConfig(**defaults),
        metrics=MetricsRegistry(),
        fault_injector=injector,
        runner_kwargs={"max_worker_crashes": 2, "degrade": False},
    )


def counters(service):
    return service.metrics.snapshot()["counters"]


class TestKilledComputeWorkers:
    def test_503_then_retry_succeeds(self, tmp_path):
        injector = FaultInjector(seed=7)
        injector.register(f"experiment:{CHEAP}", mode="kill")
        service = make_chaos_service(tmp_path, injector)
        with ServerThread(service) as server:
            port = server.port
            started = time.monotonic()
            failed = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90)

            # the contract: 503 + Retry-After, not a crash, not a hang
            assert failed.status == 503
            assert int(failed.headers["retry-after"]) >= 1
            assert time.monotonic() - started < service.config.deadline
            body = failed.json()
            assert body["crash"] is not None
            assert body["crash"]["quarantined"] is True

            # the server survived its compute being killed twice
            assert fetch(HOST, port, "/healthz").status == 200
            assert fetch(HOST, port, "/readyz").status == 200

            # fault clears -> the same request computes and caches
            injector.clear()
            retried = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90)
            assert retried.status == 200
            assert retried.json()["source"] == "computed"
            assert retried.json()["result"] is not None

            hot = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0")
            assert hot.status == 200
            assert hot.json()["source"] == "cache"
        stats = counters(service)
        assert stats["serve.compute_failed"] == 1
        assert stats["serve.compute_ok"] == 1
        assert stats["serve.responses.503"] == 1
        assert stats["serve.responses.200"] >= 3

    def test_breaker_trips_after_repeated_failures(self, tmp_path):
        injector = FaultInjector(seed=7)
        injector.register(f"experiment:{CHEAP}", mode="kill")
        service = make_chaos_service(
            tmp_path, injector,
            breaker_threshold=2, breaker_cooldown=0.3,
        )
        with ServerThread(service) as server:
            port = server.port
            for _ in range(2):
                failed = fetch(
                    HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90
                )
                assert failed.status == 503
            jobs_before = counters(service)["serve.compute_jobs"]

            # circuit open: immediate 503, no new compute dispatched
            rejected = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0")
            assert rejected.status == 503
            assert rejected.json().get("circuit") == "open"
            assert "retry-after" in rejected.headers
            assert counters(service)["serve.compute_jobs"] == jobs_before

            # cooldown expires, fault is gone -> the half-open probe heals
            injector.clear()
            time.sleep(0.4)
            healed = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90)
            assert healed.status == 200
        stats = counters(service)
        assert stats["serve.breaker_trips"] == 1
        assert stats["serve.breaker_rejects"] == 1
        assert stats["serve.compute_ok"] == 1

    def test_corrupted_artifact_serves_200_via_recompute(self, tmp_path):
        """Injected bit-rot on a cached result: 200, never 500 or garbage.

        The ``bitrot`` disk fault corrupts the entry the moment it is
        written; the next read fails its end-to-end digest and becomes
        a miss (counted ``artifacts.integrity_failures``) that routes
        to the normal miss-compute path — the client sees a recompute,
        not a 500 and not a silently wrong payload.
        """
        injector = FaultInjector(seed=11)
        injector.register("artifacts:damage", mode="bitrot", times=1)
        service = make_chaos_service(tmp_path, None, workers=1)
        with use_metrics(service.metrics), use_fault_injector(injector):
            with ServerThread(service) as server:
                port = server.port
                # First fetch computes and caches — but the injector
                # bit-rots the completed entry right after the rename.
                first = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90)
                assert first.status == 200
                assert first.json()["source"] == "computed"
                assert injector.stats()["artifacts:damage"]["fired"] == 1

                # The damaged entry fails verification: a recompute,
                # not a crash and not a corrupted payload.
                second = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90)
                assert second.status == 200
                assert second.json()["source"] == "computed"
                assert second.json()["result"] is not None

                # Fault budget spent: the healthy rewrite now serves hot.
                third = fetch(HOST, port, f"/v1/result/{CHEAP}?seed=0")
                assert third.status == 200
                assert third.json()["source"] == "cache"
        stats = counters(service)
        assert stats["artifacts.integrity_failures"] == 1
        assert stats["serve.responses.200"] == 3
        assert "serve.responses.500" not in stats
        assert "serve.compute_failed" not in stats

    def test_unaffected_keys_keep_serving_during_the_failures(self, tmp_path):
        """A poison key must not take neighboring keys down with it."""
        injector = FaultInjector(seed=7)
        injector.register(f"experiment:{CHEAP}", mode="kill")
        service = make_chaos_service(tmp_path, injector)
        with ServerThread(service) as server:
            port = server.port
            poisoned = fetch(
                HOST, port, f"/v1/result/{CHEAP}?seed=0", timeout=90
            )
            assert poisoned.status == 503
            # E4 has no fault armed; it computes despite E5's crashes
            healthy = fetch(HOST, port, "/v1/result/E4?seed=0", timeout=90)
            assert healthy.status == 200
        stats = counters(service)
        assert stats["serve.compute_failed"] == 1
        assert stats["serve.compute_ok"] == 1
