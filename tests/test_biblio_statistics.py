"""Tests for repro.bibliometrics.statistics."""

import pytest

from repro.bibliometrics.statistics import (
    bootstrap_mean_ci,
    chi_squared_independence,
    proportion_confint,
    two_proportion_test,
)


class TestWilson:
    def test_interval_contains_point(self):
        low, high = proportion_confint(20, 100)
        assert low < 0.2 < high

    def test_zero_successes_positive_width(self):
        low, high = proportion_confint(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.001 < high < 0.15

    def test_higher_confidence_wider(self):
        narrow = proportion_confint(30, 100, confidence=0.90)
        wide = proportion_confint(30, 100, confidence=0.99)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_confint(5, 0)
        with pytest.raises(ValueError):
            proportion_confint(10, 5)


class TestTwoProportion:
    def test_large_gap_significant(self):
        result = two_proportion_test(80, 100, 10, 100)
        assert result["significant_at_01"]
        assert result["p_value"] < 1e-6

    def test_identical_proportions_not_significant(self):
        result = two_proportion_test(50, 100, 50, 100)
        assert result["p_value"] == pytest.approx(1.0)
        assert not result["significant_at_01"]

    def test_degenerate_pooled(self):
        result = two_proportion_test(0, 10, 0, 10)
        assert result["p_value"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_test(1, 0, 1, 2)


class TestChiSquared:
    def test_dependent_table(self):
        # Venue kind strongly predicts human-method use.
        table = [[90, 10], [10, 90]]
        result = chi_squared_independence(table)
        assert result["p_value"] < 1e-6
        assert result["cramers_v"] > 0.5

    def test_independent_table(self):
        table = [[50, 50], [50, 50]]
        result = chi_squared_independence(table)
        assert result["p_value"] > 0.9
        assert result["cramers_v"] == pytest.approx(0.0, abs=1e-9)

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            chi_squared_independence([[1, 2]])


class TestBootstrap:
    def test_contains_true_mean_usually(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 20
        low, high = bootstrap_mean_ci(values, seed=0)
        assert low < 3.0 < high

    def test_deterministic(self):
        values = list(range(30))
        assert bootstrap_mean_ci(values, seed=3) == bootstrap_mean_ci(values, seed=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
