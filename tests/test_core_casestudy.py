"""Tests for repro.core.casestudy."""

import pytest

from repro.core.casestudy import CaseStudy, Claim, EvidenceRef


@pytest.fixture
def study():
    s = CaseStudy("ixp-study")
    s.add_claim(Claim("c1", "Incumbent evades the mandate", central=True))
    s.add_claim(Claim("c2", "Operators distrust the regulator"))
    s.add_claim(Claim("c3", "Local traffic share fell", central=True))
    s.attach_evidence("c1", EvidenceRef("interview", "i-07"))
    s.attach_evidence("c1", EvidenceRef("measurement", "bgp-dump-3"))
    s.attach_evidence("c2", EvidenceRef("interview", "i-02"))
    s.attach_evidence("c2", EvidenceRef("interview", "i-05"))
    return s


class TestEvidence:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EvidenceRef("rumor", "x")

    def test_empty_ref_rejected(self):
        with pytest.raises(ValueError):
            EvidenceRef("interview", "")

    def test_triangulation_needs_distinct_kinds(self, study):
        assert study.claim("c1").triangulated
        # Two interviews are one *kind* of evidence.
        assert not study.claim("c2").triangulated


class TestCaseStudy:
    def test_duplicate_claim_rejected(self, study):
        with pytest.raises(ValueError):
            study.add_claim(Claim("c1", "dup"))

    def test_attach_to_unknown_claim(self, study):
        with pytest.raises(KeyError):
            study.attach_evidence("ghost", EvidenceRef("interview", "i"))

    def test_central_filter(self, study):
        assert [c.claim_id for c in study.claims(central_only=True)] == [
            "c1", "c3",
        ]


class TestReport:
    def test_unsupported_flagged(self, study):
        report = study.triangulation_report()
        assert report["unsupported"] == ["c3"]

    def test_single_source_flagged(self, study):
        report = study.triangulation_report()
        assert report["single_source"] == ["c2"]

    def test_central_untriangulated(self, study):
        report = study.triangulation_report()
        assert report["central_untriangulated"] == ["c3"]

    def test_triangulated_share(self, study):
        assert study.triangulation_report()["triangulated_share"] == (
            pytest.approx(1 / 3)
        )

    def test_kind_usage(self, study):
        report = study.triangulation_report()
        assert report["kind_usage"] == {"interview": 2, "measurement": 1}

    def test_fixing_the_finding(self, study):
        study.attach_evidence("c3", EvidenceRef("measurement", "flows-9"))
        study.attach_evidence("c3", EvidenceRef("fieldnote", "fn-12"))
        report = study.triangulation_report()
        assert report["central_untriangulated"] == []
        assert report["unsupported"] == []

    def test_empty_study(self):
        report = CaseStudy("empty").triangulation_report()
        assert report["triangulated_share"] == 1.0
        assert report["unsupported"] == []
