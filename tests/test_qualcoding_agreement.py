"""Tests for repro.qualcoding.agreement."""

import random

import pytest

from repro.qualcoding.agreement import (
    cohens_kappa,
    compare_raters,
    fleiss_kappa,
    kappa_interpretation,
    krippendorff_alpha,
    percent_agreement,
)
from repro.qualcoding.codebook import Codebook
from repro.qualcoding.segments import CodingSession, Document


class TestPercentAgreement:
    def test_perfect(self):
        assert percent_agreement(["a", "b"], ["a", "b"]) == 1.0

    def test_none(self):
        assert percent_agreement(["a", "b"], ["b", "a"]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            percent_agreement(["a"], ["a", "b"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percent_agreement([], [])


class TestCohensKappa:
    def test_perfect_agreement(self):
        assert cohens_kappa([1, 0, 1, 0], [1, 0, 1, 0]) == pytest.approx(1.0)

    def test_chance_level_is_zero(self):
        # Independent raters with 50/50 marginals over many units.
        rng = random.Random(0)
        a = [rng.random() < 0.5 for _ in range(20000)]
        b = [rng.random() < 0.5 for _ in range(20000)]
        assert abs(cohens_kappa(a, b)) < 0.05

    def test_textbook_value(self):
        # Classic 2x2 example: 20 units, observed .70, expected .50 -> k=.40
        a = ["y"] * 10 + ["n"] * 10
        b = ["y"] * 7 + ["n"] * 3 + ["y"] * 3 + ["n"] * 7
        assert cohens_kappa(a, b) == pytest.approx(0.4)

    def test_degenerate_single_category(self):
        assert cohens_kappa(["x", "x"], ["x", "x"]) == 1.0

    def test_worse_than_chance_is_negative(self):
        assert cohens_kappa([1, 0, 1, 0], [0, 1, 0, 1]) < 0


class TestFleissKappa:
    def test_perfect(self):
        ratings = [["a", "a", "a"], ["b", "b", "b"]]
        assert fleiss_kappa(ratings) == pytest.approx(1.0)

    def test_single_category_degenerate(self):
        assert fleiss_kappa([["a", "a"], ["a", "a"]]) == 1.0

    def test_matches_cohen_for_two_raters_roughly(self):
        rng = random.Random(1)
        truth = [rng.random() < 0.5 for _ in range(2000)]
        a = [t if rng.random() > 0.1 else not t for t in truth]
        b = [t if rng.random() > 0.1 else not t for t in truth]
        fleiss = fleiss_kappa(list(zip(a, b)))
        cohen = cohens_kappa(a, b)
        assert fleiss == pytest.approx(cohen, abs=0.02)

    def test_needs_two_raters(self):
        with pytest.raises(ValueError):
            fleiss_kappa([["a"]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            fleiss_kappa([["a", "b"], ["a"]])


class TestKrippendorffAlpha:
    def test_perfect(self):
        assert krippendorff_alpha([["a", "a"], ["b", "b"]]) == pytest.approx(1.0)

    def test_handles_missing(self):
        ratings = [["a", "a", None], ["b", None, "b"], ["a", "a", "a"]]
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_drops_single_rating_units(self):
        ratings = [["a", None], ["b", "b"], ["c", "c"]]
        assert krippendorff_alpha(ratings) == pytest.approx(1.0)

    def test_all_units_unpairable_raises(self):
        with pytest.raises(ValueError):
            krippendorff_alpha([["a", None], [None, "b"]])

    def test_known_value(self):
        # Krippendorff's canonical nominal example (2 observers):
        # values from the literature: alpha = 0.095 for this layout.
        a = ["a", "a", "b", "b", "d", "c", "c", "c", "e", "d", "d", "a"]
        b = ["b", "a", "b", "b", "b", "c", "c", "c", "e", "d", "d", "d"]
        alpha = krippendorff_alpha(list(zip(a, b)))
        assert 0.6 < alpha < 0.8  # substantial but imperfect

    def test_chance_near_zero(self):
        rng = random.Random(2)
        ratings = [
            [rng.choice("ab"), rng.choice("ab")] for _ in range(20000)
        ]
        assert abs(krippendorff_alpha(ratings)) < 0.05


class TestInterpretation:
    @pytest.mark.parametrize(
        "value,band",
        [
            (-0.2, "poor"),
            (0.1, "slight"),
            (0.3, "fair"),
            (0.5, "moderate"),
            (0.7, "substantial"),
            (0.95, "almost perfect"),
        ],
    )
    def test_bands(self, value, band):
        assert kappa_interpretation(value) == band


class TestCompareRaters:
    @pytest.fixture
    def session(self):
        book = Codebook("s")
        book.add("c1")
        book.add("c2")
        session = CodingSession(book)
        for i in range(6):
            session.add_document(Document(f"d{i}", "text " * 10))
        # r1 and r2 agree on c1 everywhere, disagree on c2 on half.
        for i in range(6):
            session.code(f"d{i}", "c1", 0, 4, rater="r1")
            session.code(f"d{i}", "c1", 0, 4, rater="r2")
        for i in range(3):
            session.code(f"d{i}", "c2", 0, 4, rater="r1")
        return session

    def test_reports_per_code(self, session):
        reports = {r.code: r for r in compare_raters(session)}
        assert reports["c1"].percent == 1.0
        assert reports["c2"].percent == 0.5

    def test_needs_two_raters(self, session):
        with pytest.raises(ValueError):
            compare_raters(session, raters=["r1"])

    def test_interpretation_property(self, session):
        reports = {r.code: r for r in compare_raters(session)}
        assert reports["c1"].interpretation == "almost perfect"

    def test_three_raters_uses_fleiss(self, session):
        for i in range(6):
            session.code(f"d{i}", "c1", 0, 4, rater="r3")
        reports = {r.code: r for r in compare_raters(session)}
        assert reports["c1"].kappa == pytest.approx(1.0)
