"""Tests for parallel suite execution (SuiteRunner workers > 1).

The contract under test: a parallel run is *deterministic* and
*semantically identical* to a sequential run of the same
``(seed, fast)`` — same records (fingerprint), same checkpoint file
contents and order, same merged deterministic metrics, same re-parented
span structure — including under injected faults.

Workers are forked, so synthetic experiments patched into
``repro.runtime.runner.get_experiment`` in the parent are inherited by
the pool processes; no cross-process registry is needed.
"""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import ExperimentResult
from repro.io.jsonl import read_jsonl
from repro.io.tables import Table
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracing import Tracer, use_tracer
from repro.runtime.faultinject import FaultInjector
from repro.runtime.runner import SuiteRunner

#: Cheap real experiments (no shared corpus, sub-second each).
CHEAP_IDS = ["E4", "E5", "E6", "E10"]


def _deterministic_counters(metrics):
    """The counters that must match between worker counts.

    Timing histograms and io/artifact counters legitimately differ
    (cache hits depend on process layout); the run's *semantic*
    counters must not.
    """
    counters = metrics.snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(("runner.status.", "runner.retries",
                            "runner.timeouts", "runner.checkpoint_hits"))
    }


def _span_structure(tracer):
    """Timing-free view of a trace: (name, status, key attrs), sorted."""
    rows = []
    for span in tracer.finished:
        attrs = {
            key: value
            for key, value in span.attributes.items()
            if key in ("experiment_id", "seed", "fast", "status", "attempts",
                       "stage", "ok", "experiments")
        }
        rows.append((span.name, span.status, tuple(sorted(attrs.items()))))
    return sorted(rows)


def _run(ids, workers, **runner_kwargs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        report = SuiteRunner(workers=workers, **runner_kwargs).run_all(
            ids, seed=0, fast=True
        )
    return report, tracer, metrics


class TestDeterminism:
    def test_parallel_matches_sequential(self):
        seq, seq_tracer, seq_metrics = _run(CHEAP_IDS, workers=1)
        par, par_tracer, par_metrics = _run(CHEAP_IDS, workers=4)
        assert seq.ok and par.ok
        assert seq.fingerprint() == par.fingerprint()
        assert _deterministic_counters(seq_metrics) == _deterministic_counters(
            par_metrics
        )
        assert _span_structure(seq_tracer) == _span_structure(par_tracer)

    def test_parallel_is_repeatable(self):
        first, _, _ = _run(CHEAP_IDS, workers=4)
        second, _, _ = _run(CHEAP_IDS, workers=4)
        assert first.fingerprint() == second.fingerprint()

    def test_worker_spans_reparented_under_suite(self):
        _, tracer, _ = _run(CHEAP_IDS, workers=4)
        suites = [s for s in tracer.finished if s.name == "suite"]
        assert len(suites) == 1
        experiments = [s for s in tracer.finished if s.name == "experiment"]
        assert len(experiments) == len(CHEAP_IDS)
        assert all(s.parent_id == suites[0].span_id for s in experiments)
        # ids are unique across the merged trace
        ids = [s.span_id for s in tracer.finished]
        assert len(ids) == len(set(ids))

    def test_records_carry_live_results(self):
        report, _, _ = _run(CHEAP_IDS, workers=4)
        assert all(isinstance(r.result, ExperimentResult) for r in report)
        assert [r.experiment_id for r in report] == CHEAP_IDS


class TestFullSuiteDeterminism:
    """The acceptance check: the whole E1-E13 suite, 1 vs 4 workers."""

    def test_full_suite_workers_1_vs_4(self):
        seq, _, seq_metrics = _run(None, workers=1)
        par, _, par_metrics = _run(None, workers=4)
        from repro.experiments.registry import all_experiments

        assert len(seq.records) == len(all_experiments())
        assert seq.ok and par.ok
        assert seq.fingerprint() == par.fingerprint()
        assert _deterministic_counters(seq_metrics) == _deterministic_counters(
            par_metrics
        )


class TestDeterminismUnderFaults:
    def _fault_run(self, workers, mode, **fault_kwargs):
        injector = FaultInjector(seed=7)
        injector.register("experiment:E5", mode=mode, **fault_kwargs)
        tracer = Tracer()
        metrics = MetricsRegistry()
        with use_tracer(tracer), use_metrics(metrics):
            report = SuiteRunner(
                workers=workers,
                retries=2,
                timeout=5.0,
                fault_injector=injector,
            ).run_all(CHEAP_IDS, seed=0, fast=True)
        return report, metrics

    def test_raise_fault_matches_sequential(self):
        seq, seq_metrics = self._fault_run(1, "raise", times=2)
        par, par_metrics = self._fault_run(4, "raise", times=2)
        # two injected failures, third attempt succeeds — both ways
        e5 = {r.experiment_id: r for r in seq}["E5"]
        assert e5.status == "ok" and e5.attempts == 3
        assert seq.fingerprint() == par.fingerprint()
        assert _deterministic_counters(seq_metrics) == _deterministic_counters(
            par_metrics
        )

    def test_exhausted_raise_fault_matches_sequential(self):
        seq, _ = self._fault_run(1, "raise")  # unlimited: E5 never passes
        par, _ = self._fault_run(4, "raise")
        e5 = {r.experiment_id: r for r in par}["E5"]
        assert e5.status == "error" and e5.attempts == 3
        assert e5.error_type == "InjectedFault"
        assert seq.fingerprint() == par.fingerprint()

    def test_hang_fault_times_out_identically(self):
        injector = FaultInjector(seed=7)
        injector.register("experiment:E5", mode="hang", hang_seconds=30.0)

        def run(workers):
            return SuiteRunner(
                workers=workers, timeout=0.5, fault_injector=injector
            ).run_all(CHEAP_IDS, seed=0, fast=True)

        seq, par = run(1), run(4)
        for report in (seq, par):
            e5 = {r.experiment_id: r for r in report}["E5"]
            assert e5.status == "timeout"
            assert e5.error_type == "BudgetExceeded"
        assert seq.fingerprint() == par.fingerprint()


class TestCheckpointUnderWorkers:
    def test_checkpoint_rows_follow_suite_order(self, tmp_path):
        checkpoint = tmp_path / "suite.jsonl"
        report, _, _ = _run(CHEAP_IDS, workers=4, checkpoint=str(checkpoint))
        rows = list(read_jsonl(checkpoint))
        assert [row["experiment_id"] for row in rows] == CHEAP_IDS
        assert report.ok

    def test_resume_skips_before_dispatch(self, tmp_path, monkeypatch):
        checkpoint = tmp_path / "suite.jsonl"
        first, _, first_metrics = _run(
            CHEAP_IDS, workers=4, checkpoint=str(checkpoint)
        )
        assert first.ok

        # If any completed experiment were dispatched again, the broken
        # get_experiment inherited by the forked workers would fail it.
        def broken(experiment_id):
            raise AssertionError(
                f"completed experiment {experiment_id} was re-dispatched"
            )

        monkeypatch.setattr("repro.runtime.runner.get_experiment", broken)
        resumed, _, metrics = _run(
            CHEAP_IDS, workers=4, checkpoint=str(checkpoint)
        )
        assert all(r.from_checkpoint for r in resumed)
        counters = metrics.snapshot()["counters"]
        assert counters["runner.checkpoint_hits"] == len(CHEAP_IDS)
        assert first.fingerprint() == resumed.fingerprint()

    def test_partial_resume_runs_only_the_gap(self, tmp_path, monkeypatch):
        checkpoint = tmp_path / "suite.jsonl"
        # Synthetic failing experiment, inherited by forked workers.
        real_get = __import__(
            "repro.experiments.registry", fromlist=["get_experiment"]
        ).get_experiment

        def flaky_get(experiment_id):
            if experiment_id == "E5":
                def boom(seed=0, fast=True):
                    raise RuntimeError("injected first-pass failure")
                return boom
            return real_get(experiment_id)

        monkeypatch.setattr("repro.runtime.runner.get_experiment", flaky_get)
        first, _, _ = _run(CHEAP_IDS, workers=4, checkpoint=str(checkpoint))
        assert {r.experiment_id for r in first.errors} == {"E5"}

        monkeypatch.setattr("repro.runtime.runner.get_experiment", real_get)
        resumed, _, metrics = _run(
            CHEAP_IDS, workers=4, checkpoint=str(checkpoint)
        )
        assert resumed.ok
        by_id = {r.experiment_id: r for r in resumed}
        assert by_id["E5"].from_checkpoint is False
        assert all(
            by_id[eid].from_checkpoint for eid in CHEAP_IDS if eid != "E5"
        )
        counters = metrics.snapshot()["counters"]
        assert counters["runner.checkpoint_hits"] == len(CHEAP_IDS) - 1


class TestFailurePolicy:
    def test_keep_going_false_raises_in_suite_order(self, monkeypatch):
        real_get = __import__(
            "repro.experiments.registry", fromlist=["get_experiment"]
        ).get_experiment

        def flaky_get(experiment_id):
            if experiment_id in ("E5", "E6"):
                def boom(seed=0, fast=True):
                    raise RuntimeError(f"boom in {experiment_id}")
                return boom
            return real_get(experiment_id)

        monkeypatch.setattr("repro.runtime.runner.get_experiment", flaky_get)
        with pytest.raises(ExperimentError) as excinfo:
            SuiteRunner(workers=4, keep_going=False).run_all(
                CHEAP_IDS, seed=0, fast=True
            )
        # E5 precedes E6 in suite order, regardless of completion order
        assert excinfo.value.experiment_id == "E5"

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SuiteRunner(workers=0)
        with pytest.raises(ValueError):
            SuiteRunner().run_all(CHEAP_IDS, workers=0)


class TestSyntheticParallel:
    """Synthetic experiments exercise pool plumbing without real work."""

    def test_synthetic_results_cross_the_process_boundary(self, monkeypatch):
        def fake_get(experiment_id):
            def run(seed=0, fast=True):
                return ExperimentResult(
                    experiment_id=experiment_id,
                    title=f"synthetic {experiment_id}",
                    claim="pool plumbing carries results intact",
                    tables=[Table(
                        title="t",
                        columns=["k", "v"],
                        rows=[[experiment_id, seed]],
                    )],
                    checks={"present": True},
                )
            return run

        monkeypatch.setattr("repro.runtime.runner.get_experiment", fake_get)
        ids = [f"S{i}" for i in range(8)]
        report = SuiteRunner(workers=4).run_all(ids, seed=3, fast=True)
        assert report.ok
        assert [r.experiment_id for r in report] == ids
        assert all(r.result.tables[0].rows == [[r.experiment_id, 3]]
                   for r in report)
