"""Tests for repro.netsim.bgp.resilience."""

import pytest

from repro.netsim.bgp.asys import AS, ASGraph, Relationship
from repro.netsim.bgp.ixp import IXP, connect_ixp_members
from repro.netsim.bgp.resilience import (
    criticality_ranking,
    fail_as,
    fail_ixp,
    locality_under_failure,
)
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.bgp.scenarios import (
    INCUMBENT_ASN,
    build_mandatory_peering_scenario,
)
from repro.netsim.bgp.traffic import TrafficDemand
from repro.netsim.topology import Location


@pytest.fixture
def world():
    g = ASGraph()
    mx = Location(0, 0, country="MX")
    g.add_as(AS(1, location=mx, size=10))
    g.add_as(AS(2, location=mx))
    g.add_as(AS(3, location=mx))
    g.add_customer(provider=1, customer=2)
    g.add_customer(provider=1, customer=3)
    ixp = IXP("ix", location=mx)
    ixp.join(2)
    ixp.join(3)
    connect_ixp_members(g, ixp)
    return g, ixp


class TestFailRestore:
    def test_fail_ixp_removes_only_tagged_links(self, world):
        graph, ixp = world
        handle = fail_ixp(graph, ixp)
        assert graph.relationship(2, 3) is None
        assert graph.relationship(1, 2) is Relationship.CUSTOMER
        handle.restore(graph)
        assert graph.relationship(2, 3) is Relationship.PEER
        assert graph.link_ixp(2, 3) == "ix"

    def test_fail_as_isolates_node(self, world):
        graph, _ = world
        handle = fail_as(graph, 1)
        assert graph.neighbors(1) == {}
        handle.restore(graph)
        assert set(graph.neighbors(1)) == {2, 3}

    def test_restore_idempotent(self, world):
        graph, ixp = world
        handle = fail_ixp(graph, ixp)
        handle.restore(graph)
        handle.restore(graph)  # no links recorded -> no-op
        assert graph.relationship(2, 3) is Relationship.PEER


class TestLocalityUnderFailure:
    def test_ixp_failure_reroutes_via_transit(self, world):
        graph, ixp = world
        demands = [TrafficDemand(2, 3, 10.0)]
        baseline = propagate_routes(graph)
        assert baseline.full_path(2, 3) == (2, 3)
        handle = fail_ixp(graph, ixp)
        report = locality_under_failure(graph, demands, "MX", handle)
        handle.restore(graph)
        assert report["delivered_share"] == 1.0  # transit path still works
        assert report["mean_path_length"] == 2.0  # 2 -> 1 -> 3

    def test_transit_failure_partitions(self, world):
        graph, ixp = world
        # Demand between a stub and the transit itself.
        demands = [TrafficDemand(2, 1, 5.0), TrafficDemand(2, 3, 5.0)]
        handle = fail_as(graph, 1)
        report = locality_under_failure(graph, demands, "MX", handle)
        handle.restore(graph)
        # 2->3 still works via IXP; 2->1 is gone.
        assert report["delivered_share"] == pytest.approx(0.5)


class TestCriticalityRanking:
    def test_incumbent_is_most_critical_in_scenario(self):
        scenario = build_mandatory_peering_scenario(n_small_isps=16, seed=1)
        connect_ixp_members(scenario.graph, scenario.ixp)
        ranking = criticality_ranking(
            scenario.graph,
            scenario.demands,
            scenario.country,
            candidate_asns=[INCUMBENT_ASN, 2],
            candidate_ixps=[scenario.ixp],
        )
        assert ranking[0]["element"] == f"as:{INCUMBENT_ASN}"
        assert ranking[0]["delivered_drop"] > 0.3

    def test_graph_unchanged_after_ranking(self):
        scenario = build_mandatory_peering_scenario(n_small_isps=10, seed=2)
        connect_ixp_members(scenario.graph, scenario.ixp)
        before = {
            asn: scenario.graph.neighbors(asn) for asn in scenario.graph.asns()
        }
        criticality_ranking(
            scenario.graph, scenario.demands, scenario.country,
            candidate_asns=[INCUMBENT_ASN], candidate_ixps=[scenario.ixp],
        )
        after = {
            asn: scenario.graph.neighbors(asn) for asn in scenario.graph.asns()
        }
        assert before == after

    def test_ixp_failure_hurts_local_share(self, world):
        graph, ixp = world
        demands = [TrafficDemand(2, 3, 10.0)]
        ranking = criticality_ranking(
            graph, demands, "MX", candidate_ixps=[ixp],
        )
        record = ranking[0]
        assert record["element"] == "ixp:ix"
        # Traffic still delivered (via transit) so no delivered drop...
        assert record["delivered_drop"] == pytest.approx(0.0)
        # ...and stays in-country, but the path gets longer: no local
        # drop either in this tiny world.
        assert record["local_drop"] == pytest.approx(0.0)
