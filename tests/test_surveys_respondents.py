"""Tests for repro.surveys.respondents."""

import pytest

from repro.surveys.instrument import Instrument, Question
from repro.surveys.respondents import (
    DEFAULT_STRATA,
    PROBLEM_CATALOG,
    ResponseStyle,
    Stakeholder,
    StakeholderPopulation,
    default_population,
    simulate_responses,
)


class TestPopulation:
    def test_default_population_size(self):
        population = default_population(size=200, seed=0)
        assert len(population) == 200

    def test_deterministic(self):
        a = default_population(size=100, seed=5)
        b = default_population(size=100, seed=5)
        assert [m.stakeholder_id for m in a] == [m.stakeholder_id for m in b]
        assert [m.problems for m in a] == [m.problems for m in b]

    def test_all_strata_present_at_scale(self):
        population = default_population(size=1000, seed=0)
        assert set(population.strata()) == set(DEFAULT_STRATA)

    def test_members_experience_stratum_problems(self):
        population = default_population(size=300, seed=1)
        for member in population:
            for problem in member.problems:
                assert member.stratum in PROBLEM_CATALOG[problem]["strata"]

    def test_referrals_exclude_self(self):
        population = default_population(size=100, seed=2)
        for member in population:
            assert member.stakeholder_id not in member.referrals

    def test_duplicate_rejected(self):
        population = StakeholderPopulation()
        s = Stakeholder("s1", "rural-user", 0.1)
        population.add(s)
        with pytest.raises(ValueError):
            population.add(s)

    def test_problems_by_stratum(self):
        population = default_population(size=500, seed=0)
        by_stratum = population.problems_by_stratum()
        assert "dc-incast" in by_stratum.get("hyperscaler-engineer", set())

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            default_population(size=0)


class TestSimulateResponses:
    @pytest.fixture
    def instrument(self):
        inst = Instrument("study")
        inst.add(Question("problem:power-instability", "Power outages affect me"))
        inst.add(Question("problem:dc-incast", "Incast affects me"))
        inst.add(
            Question(
                "problems_experienced",
                "Which problems do you face?",
                kind="multi_choice",
                choices=tuple(sorted(PROBLEM_CATALOG)),
            )
        )
        inst.add(
            Question(
                "stratum", "Your role", kind="single_choice",
                choices=tuple(sorted(DEFAULT_STRATA)),
            )
        )
        return inst

    def test_one_response_per_stakeholder(self, instrument):
        population = default_population(size=50, seed=3)
        responses = simulate_responses(list(population), instrument, seed=0)
        assert len(responses) == 50

    def test_problem_likert_reflects_ground_truth(self, instrument):
        population = default_population(size=400, seed=3)
        responses = simulate_responses(list(population), instrument, seed=0)
        experiencing = []
        not_experiencing = []
        for member, response in zip(population, responses):
            answer = response.answer("problem:power-instability")
            if "power-instability" in member.problems:
                experiencing.append(answer)
            else:
                not_experiencing.append(answer)
        assert sum(experiencing) / len(experiencing) > (
            sum(not_experiencing) / len(not_experiencing) + 1.0
        )

    def test_multi_choice_returns_true_problems(self, instrument):
        population = default_population(size=30, seed=4)
        responses = simulate_responses(list(population), instrument, seed=0)
        for member, response in zip(population, responses):
            assert response.answer("problems_experienced") == member.problems

    def test_stratum_reported(self, instrument):
        population = default_population(size=30, seed=4)
        responses = simulate_responses(list(population), instrument, seed=0)
        for member, response in zip(population, responses):
            assert response.answer("stratum") == member.stratum
            assert response.metadata["stratum"] == member.stratum

    def test_acquiescence_shifts_answers_up(self):
        inst = Instrument("s", [Question("q", "p")])
        neutral = Stakeholder("n", "x", 0.5, style=ResponseStyle(0.0, 1.0, 0.3))
        agreeer = Stakeholder("y", "x", 0.5, style=ResponseStyle(1.5, 1.0, 0.3))
        # Average over many seeds for a stable comparison.
        n_vals = [
            simulate_responses([neutral], inst, seed=s)[0].answer("q")
            for s in range(60)
        ]
        a_vals = [
            simulate_responses([agreeer], inst, seed=s)[0].answer("q")
            for s in range(60)
        ]
        assert sum(a_vals) / 60 > sum(n_vals) / 60 + 0.5
