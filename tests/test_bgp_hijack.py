"""Tests for repro.netsim.bgp.hijack."""

import pytest

from repro.netsim.bgp.asys import AS, ASGraph
from repro.netsim.bgp.hijack import run_hijack_study, simulate_prefix_hijack
from repro.netsim.bgp.scenarios import build_mandatory_peering_scenario
from repro.netsim.bgp.ixp import connect_ixp_members


@pytest.fixture
def world():
    """Two tier-1s (1, 2) peering; victim 10 under 1, attacker 20 under 2,
    plus bystanders 11 (under 1) and 21, 22 (under 2)."""
    g = ASGraph()
    for asn in (1, 2, 10, 11, 20, 21, 22):
        g.add_as(AS(asn))
    g.add_peering(1, 2)
    g.add_customer(provider=1, customer=10)
    g.add_customer(provider=1, customer=11)
    g.add_customer(provider=2, customer=20)
    g.add_customer(provider=2, customer=21)
    g.add_customer(provider=2, customer=22)
    return g


class TestHijack:
    def test_customer_lie_beats_peer_truth(self, world):
        result = simulate_prefix_hijack(world, victim=10, attacker=20)
        # Tier-1 2 hears the truth from its peer 1 and the lie from its
        # customer 20; economics pick the customer. Its whole cone is
        # polluted.
        assert 2 in result.polluted
        assert 21 in result.polluted
        assert 22 in result.polluted

    def test_victim_side_stays_clean(self, world):
        result = simulate_prefix_hijack(world, victim=10, attacker=20)
        assert 1 not in result.polluted
        assert 11 not in result.polluted

    def test_no_attacker_origin_no_pollution(self, world):
        # Sanity: hijack by an AS equal to victim is rejected.
        with pytest.raises(ValueError):
            simulate_prefix_hijack(world, victim=10, attacker=10)

    def test_unknown_asns_rejected(self, world):
        with pytest.raises(KeyError):
            simulate_prefix_hijack(world, victim=10, attacker=999)

    def test_full_validation_stops_hijack(self, world):
        validating = set(world.asns()) - {20}
        result = simulate_prefix_hijack(
            world, victim=10, attacker=20, validating=validating
        )
        assert result.polluted == ()
        assert result.pollution_share == 0.0

    def test_validating_transit_shields_cone(self, world):
        # Only tier-1 2 validates: it rejects the lie, so its other
        # customers learn the truth through it.
        result = simulate_prefix_hijack(
            world, victim=10, attacker=20, validating={2}
        )
        assert 21 not in result.polluted
        assert 22 not in result.polluted

    def test_pollution_share_range(self, world):
        result = simulate_prefix_hijack(world, victim=10, attacker=20)
        assert 0.0 <= result.pollution_share <= 1.0


class TestStudy:
    def test_validation_monotonically_reduces_pollution(self):
        scenario = build_mandatory_peering_scenario(n_small_isps=16, seed=3)
        connect_ixp_members(scenario.graph, scenario.ixp)
        asns = scenario.graph.asns()
        victim = asns[-1]
        attacker = asns[-2]
        records = run_hijack_study(
            scenario.graph, victim, [attacker],
            validation_levels=(0.0, 0.5, 1.0),
        )
        shares = [r["pollution_share"] for r in records]
        assert shares[0] >= shares[1] >= shares[2]
        assert shares[2] == 0.0

    def test_bigger_cone_pollutes_more(self, world):
        # Attacker 2 (tier-1, big cone) vs attacker 22 (stub).
        records = run_hijack_study(
            world, victim=10, attackers=[2, 22], validation_levels=(0.0,)
        )
        by_attacker = {r["attacker"]: r for r in records}
        assert (
            by_attacker[2]["pollution_share"]
            >= by_attacker[22]["pollution_share"]
        )

    def test_bad_level_rejected(self, world):
        with pytest.raises(ValueError):
            run_hijack_study(world, 10, [20], validation_levels=(1.5,))
