"""Tests for scenario-builder options not covered by the studies."""

import pytest

from repro.netsim.bgp.ixp import connect_ixp_members
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.bgp.scenarios import (
    build_gravity_scenario,
    build_mandatory_peering_scenario,
)
from repro.netsim.bgp.traffic import locality_report, resolve_flows


class TestGravityOptions:
    def test_domestic_transit_peering_reduces_tromboning(self):
        reports = {}
        for peering in (False, True):
            scenario = build_gravity_scenario(
                n_eyeballs=15, content_pop_presence=0.0,
                domestic_transit_peering=peering, seed=4,
            )
            for ixp in scenario.local_ixps + [scenario.mega_ixp]:
                connect_ixp_members(scenario.graph, ixp)
            table = propagate_routes(scenario.graph)
            flows = resolve_flows(scenario.graph, table, scenario.demands)
            ixp_countries = {
                ixp.ixp_id: ixp.country
                for ixp in scenario.local_ixps + [scenario.mega_ixp]
            }
            reports[peering] = locality_report(
                flows, scenario.country, ixp_countries
            )
        # Domestic transits interconnecting at home keeps eyeball pairs
        # in-country instead of meeting at the European tier-1.
        assert (
            reports[True]["tromboned_share"]
            < reports[False]["tromboned_share"]
        )

    def test_remote_membership_zero_empties_mega_ixp(self):
        scenario = build_gravity_scenario(
            n_eyeballs=12, remote_mega_membership=0.0, seed=1
        )
        # Only the EU content AS remains a member.
        assert scenario.mega_ixp.members == {2000}

    def test_local_membership_zero(self):
        scenario = build_gravity_scenario(
            n_eyeballs=12, local_ixp_membership=0.0,
            content_pop_presence=0.0, seed=1,
        )
        assert all(not ixp.members for ixp in scenario.local_ixps)


class TestMandatoryPeeringOptions:
    def test_all_customers_to_incumbent(self):
        scenario = build_mandatory_peering_scenario(
            n_small_isps=10, incumbent_customer_share=1.0, seed=0
        )
        cone = scenario.graph.customer_cone(1)
        stubs = [a.asn for a in scenario.graph if a.kind == "stub"]
        assert all(asn in cone for asn in stubs)

    def test_zero_ixp_membership(self):
        scenario = build_mandatory_peering_scenario(
            n_small_isps=10, ixp_membership_rate=0.0, seed=0
        )
        assert scenario.ixp.members == set()

    def test_demand_volume_conserved(self):
        scenario = build_mandatory_peering_scenario(n_small_isps=12, seed=0)
        assert sum(d.volume for d in scenario.demands) == pytest.approx(1000.0)
