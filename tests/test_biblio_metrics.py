"""Tests for repro.bibliometrics.metrics."""

import pytest

from repro.bibliometrics.metrics import (
    gini,
    h_index,
    hhi,
    lorenz_curve,
    shannon_diversity,
    top_k_share,
)


class TestGini:
    def test_perfect_equality(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_monopoly_approaches_one(self):
        value = gini([0] * 99 + [100])
        assert value > 0.95

    def test_known_value(self):
        # For [1, 3]: gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
        assert gini([1, 3]) == pytest.approx(0.25)

    def test_all_zero_is_equal(self):
        assert gini([0, 0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))


class TestLorenz:
    def test_endpoints(self):
        points = lorenz_curve([1, 2, 3])
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (pytest.approx(1.0), pytest.approx(1.0))

    def test_convexity(self):
        points = lorenz_curve([1, 5, 10])
        shares = [s for _, s in points]
        increments = [b - a for a, b in zip(shares, shares[1:])]
        assert increments == sorted(increments)

    def test_below_diagonal(self):
        for population, share in lorenz_curve([1, 2, 10]):
            assert share <= population + 1e-9


class TestHHI:
    def test_even_split(self):
        assert hhi([1, 1, 1, 1]) == pytest.approx(0.25)

    def test_monopoly(self):
        assert hhi([0, 0, 7]) == pytest.approx(1.0)

    def test_all_zero_degenerate(self):
        assert hhi([0, 0]) == pytest.approx(0.5)


class TestShannon:
    def test_uniform_maximal(self):
        uniform = shannon_diversity([1, 1, 1, 1], normalized=True)
        skewed = shannon_diversity([10, 1, 1, 1], normalized=True)
        assert uniform == pytest.approx(1.0)
        assert skewed < uniform

    def test_single_category_zero(self):
        assert shannon_diversity([5], normalized=True) == 0.0
        assert shannon_diversity([5, 0, 0]) == pytest.approx(0.0)

    def test_raw_entropy_of_two_even(self):
        import math
        assert shannon_diversity([1, 1]) == pytest.approx(math.log(2))


class TestTopK:
    def test_basic(self):
        assert top_k_share([10, 1, 1, 1], 1) == pytest.approx(10 / 13)

    def test_k_exceeds_length(self):
        assert top_k_share([1, 2], 10) == 1.0

    def test_zero_total(self):
        assert top_k_share([0, 0], 1) == 0.0

    def test_bad_k(self):
        with pytest.raises(ValueError):
            top_k_share([1], 0)


class TestHIndex:
    def test_textbook(self):
        assert h_index([10, 8, 5, 4, 3]) == 4

    def test_all_zero(self):
        assert h_index([0, 0, 0]) == 0

    def test_uniform(self):
        assert h_index([3, 3, 3]) == 3

    def test_single_paper(self):
        assert h_index([100]) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            h_index([-1])
