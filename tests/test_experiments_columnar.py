"""The experiment suite on the columnar corpus engine.

The contract under test (DESIGN.md §15): ``CorpusParams.backend`` and
``shard_size`` are *execution* knobs — they pick how the corpus is
represented and cached, never what it contains — so (a) they sit
outside the spec identity (``config_hash``), (b) routing a spec
through the columnar engine produces byte-identical result
fingerprints (the classic dataclass pipeline is the oracle, enforced
per experiment at the **full** preset), and (c) sweep/serve
memoization keys are therefore stable across backends: a cache warmed
on one backend serves the other with zero compute jobs.
"""

import pytest

from repro.bibliometrics.synthgen import SyntheticCorpusConfig, generate_corpus
from repro.experiments import _corpus
from repro.experiments._corpus import (
    COLUMNAR_AUTO_THRESHOLD,
    CORPUS_ARTIFACT_KIND,
    clear_corpus_cache,
    configure_corpus_cache,
    corpus_cache_dir,
    estimated_corpus_papers,
    resolve_backend,
    shared_aggregates_from_config,
    shared_columnar_corpus_from_config,
    shared_corpus_from_config,
)
from repro.experiments.registry import make_spec
from repro.experiments.sweep import run_sweep
from tests.backend_oracle import (
    CORPUS_EXPERIMENTS,
    assert_backends_agree,
    result_fingerprint,
    run_on_backend,
)

TINY = SyntheticCorpusConfig(
    start_year=2023, end_year=2024, seed=7, authors_per_venue_pool=8
)


@pytest.fixture(autouse=True)
def isolated_corpus_state():
    """Save and restore the module's memory cache and disk setting."""
    saved_memory = dict(_corpus._memory)
    saved_dir = corpus_cache_dir()
    configure_corpus_cache(None)
    _corpus._memory.clear()
    yield
    configure_corpus_cache(saved_dir)
    _corpus._memory.clear()
    _corpus._memory.update(saved_memory)


@pytest.fixture
def counted_generator(monkeypatch):
    """Count (and keep) real generator calls for the TINY config."""
    calls = []
    real = generate_corpus

    def counting(config):
        calls.append(config)
        return real(config)

    monkeypatch.setattr(_corpus, "generate_corpus", counting)
    return calls


class TestIdentityRules:
    """backend/shard_size are execution knobs, not identity."""

    @pytest.mark.parametrize("experiment_id", CORPUS_EXPERIMENTS)
    def test_backend_knobs_do_not_split_config_hash(self, experiment_id):
        base = make_spec(experiment_id, "fast")
        routed = make_spec(
            experiment_id, "fast",
            overrides={
                "corpus.backend": "columnar",
                "corpus.shard_size": 777,
            },
        )
        assert routed.corpus.backend == "columnar"
        assert routed.corpus.shard_size == 777
        assert routed.config_hash() == base.config_hash()

    def test_content_knobs_still_split_config_hash(self):
        base = make_spec("E1", "fast")
        scaled = make_spec("E1", "fast", overrides={"corpus.venue_scale": 2.0})
        assert scaled.config_hash() != base.config_hash()

    def test_identity_dict_excludes_execution_knobs(self):
        params = make_spec("E1", "fast").corpus
        identity = params.identity_dict()
        assert "backend" not in identity
        assert "shard_size" not in identity
        assert "start_year" in identity

    def test_to_dict_still_carries_execution_knobs(self):
        # Fork-pool transport serializes specs with to_dict/from_dict:
        # the knobs must survive the roundtrip even though the identity
        # ignores them, or workers would silently fall back to classic.
        spec = make_spec(
            "E1", "fast", overrides={"corpus.backend": "columnar"}
        )
        revived = type(spec).from_dict(spec.to_dict())
        assert revived.corpus.backend == "columnar"
        assert revived.corpus.shard_size == spec.corpus.shard_size
        assert revived.config_hash() == spec.config_hash()


class TestBackendRouting:
    def test_explicit_backend_wins(self):
        fast = make_spec("E1", "fast")
        assert resolve_backend(
            type(fast.corpus)(**{**fast.corpus.to_dict(), "backend": "classic"})
        ) == "classic"
        assert resolve_backend(
            type(fast.corpus)(**{**fast.corpus.to_dict(), "backend": "columnar"})
        ) == "columnar"

    def test_auto_routes_small_configs_classic(self):
        for preset in ("fast", "full"):
            params = make_spec("E1", preset).corpus
            assert params.backend == "auto"
            assert resolve_backend(params) == "classic"

    def test_auto_routes_large_configs_columnar(self):
        params = make_spec(
            "E1", "full", overrides={"corpus.venue_scale": 20.0}
        ).corpus
        config = _corpus.corpus_config_from_params(0, params)
        assert estimated_corpus_papers(config) >= COLUMNAR_AUTO_THRESHOLD
        assert resolve_backend(params) == "columnar"

    def test_pre_backend_params_resolve_classic(self):
        class Legacy:
            start_year, end_year, authors_per_venue_pool = 2016, 2025, 60

        assert resolve_backend(Legacy()) == "classic"

    def test_estimated_papers_exact_for_stock_profiles(self):
        corpus, _ = generate_corpus(TINY)
        assert estimated_corpus_papers(TINY) == len(corpus)


class TestColumnarCaching:
    def test_memory_cache_returns_same_object(self, counted_generator):
        first = shared_columnar_corpus_from_config(TINY, 50)
        second = shared_columnar_corpus_from_config(TINY, 50)
        assert first is second
        assert len(counted_generator) == 1

    def test_shard_size_is_a_distinct_memory_key(self):
        a = shared_columnar_corpus_from_config(TINY, 50)
        b = shared_columnar_corpus_from_config(TINY, 75)
        assert a is not b
        assert a.fingerprint() != b.fingerprint()  # geometry differs...
        assert a.to_corpus().to_records() == b.to_corpus().to_records()

    def test_aggregates_scanned_once(self, monkeypatch):
        scans = []
        real = _corpus.scan_corpus

        def counting(corpus, min_mentions=1):
            scans.append(1)
            return real(corpus, min_mentions)

        monkeypatch.setattr(_corpus, "scan_corpus", counting)
        first = shared_aggregates_from_config(TINY, 50)
        second = shared_aggregates_from_config(TINY, 50)
        assert first is second
        assert len(scans) == 1

    def test_disk_layout_is_manifest_plus_shards(self, tmp_path):
        configure_corpus_cache(str(tmp_path))
        corpus = shared_columnar_corpus_from_config(TINY, 50)
        n_shards = len(list(corpus.iter_shards()))
        shard_entries = list((tmp_path / "corpus-shard").glob("*.jsonl"))
        manifest_entries = list(
            (tmp_path / CORPUS_ARTIFACT_KIND).glob("*.jsonl")
        )
        assert len(shard_entries) == n_shards >= 2
        # One small manifest — no monolithic classic blob alongside it.
        assert len(manifest_entries) == 1

    def test_warm_replay_streams_bit_identically(self, tmp_path):
        configure_corpus_cache(str(tmp_path))
        cold = shared_columnar_corpus_from_config(TINY, 50).fingerprint()
        clear_corpus_cache()  # memory only; disk stays warm
        warm = shared_columnar_corpus_from_config(TINY, 50)
        assert warm.fingerprint() == cold
        for _ in warm.iter_shards():
            assert warm.resident_shards() <= 1

    def test_clear_disk_invalidates_both_kinds(
        self, tmp_path, counted_generator
    ):
        configure_corpus_cache(str(tmp_path))
        shared_columnar_corpus_from_config(TINY, 50)
        clear_corpus_cache(disk=True)
        shared_columnar_corpus_from_config(TINY, 50)
        assert len(counted_generator) == 2

    def test_columnar_route_reuses_cached_classic_corpus(
        self, counted_generator
    ):
        shared_corpus_from_config(TINY)
        shared_columnar_corpus_from_config(TINY, 50)
        assert len(counted_generator) == 1


class TestCrossBackendEquality:
    """The acceptance bar: byte-identical results, enforced per experiment."""

    @pytest.fixture(scope="class")
    def full_fingerprints(self):
        """Both backends at the **full** preset, once per experiment.

        Computed in one pass so the in-memory LRU shares the expensive
        classic full corpus (and the columnarized shards + aggregates)
        across all four experiments instead of regenerating per test.
        """
        saved_memory = dict(_corpus._memory)
        saved_dir = configure_corpus_cache(None)
        _corpus._memory.clear()
        try:
            pairs = {}
            for experiment_id in CORPUS_EXPERIMENTS:
                pairs[experiment_id] = tuple(
                    result_fingerprint(
                        run_on_backend(
                            experiment_id, backend,
                            preset="full", shard_size=1500,
                        )
                    )
                    for backend in ("classic", "columnar")
                )
            return pairs
        finally:
            configure_corpus_cache(saved_dir)
            _corpus._memory.clear()
            _corpus._memory.update(saved_memory)

    @pytest.mark.parametrize("experiment_id", CORPUS_EXPERIMENTS)
    def test_full_preset_fingerprints_identical(
        self, experiment_id, full_fingerprints
    ):
        classic, columnar = full_fingerprints[experiment_id]
        assert classic == columnar, (
            f"{experiment_id} full: classic {classic} != columnar {columnar}"
        )

    def test_fast_preset_nonzero_seed(self):
        # Seed handling is the classic aliasing bug: make sure the
        # columnar route keys its caches on the seeded config too.
        assert_backends_agree("E1", preset="fast", seed=3, shard_size=1100)


class TestSweepAcrossBackends:
    def test_classic_warmed_cache_serves_columnar_rerun(self, tmp_path):
        grid = {"seed": [0]}
        cold = run_sweep(
            "E1", grid, preset="fast",
            base_overrides={"corpus.backend": "classic"},
            cache_dir=str(tmp_path),
        )
        assert [p.source for p in cold.points] == ["run"]
        clear_corpus_cache()
        replay = run_sweep(
            "E1", grid, preset="fast",
            base_overrides={"corpus.backend": "columnar"},
            cache_dir=str(tmp_path),
        )
        assert [p.source for p in replay.points] == ["cache"]
        assert replay.fingerprint() == cold.fingerprint()
