"""Tests for repro.obs.metrics.

Bucket-edge placement and merge associativity are checked
property-style with hypothesis, as DESIGN.md's conventions require for
algebraic claims.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    current_metrics,
    merge_snapshots,
    use_metrics,
)

EDGES = (1.0, 2.0, 5.0)


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_bucket(self):
        histogram = Histogram("h", buckets=EDGES)
        for edge in EDGES:
            histogram.observe(edge)
        assert histogram.counts == [1, 1, 1, 0]

    def test_overflow_bucket(self):
        histogram = Histogram("h", buckets=EDGES)
        histogram.observe(5.000001)
        assert histogram.counts == [0, 0, 0, 1]

    def test_underflow_goes_to_first_bucket(self):
        histogram = Histogram("h", buckets=EDGES)
        histogram.observe(-100.0)
        assert histogram.counts == [1, 0, 0, 0]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_counts_partition_observations(self, values):
        """Every observation lands in exactly one bucket."""
        histogram = Histogram("h", buckets=EDGES)
        for value in values:
            histogram.observe(value)
        assert sum(histogram.counts) == len(values)
        assert histogram.count == len(values)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_bucket_placement_respects_le_semantics(self, value):
        histogram = Histogram("h", buckets=EDGES)
        histogram.observe(value)
        index = histogram.counts.index(1)
        if index < len(EDGES):
            assert value <= EDGES[index]
        if index > 0:
            assert value > EDGES[index - 1]

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_mean(self):
        histogram = Histogram("h", buckets=EDGES)
        assert histogram.mean == 0.0
        histogram.observe(1.0)
        histogram.observe(3.0)
        assert histogram.mean == pytest.approx(2.0)


def _snapshot_strategy():
    names = st.sampled_from(["a", "b", "c"])
    counters = st.dictionaries(names, st.integers(min_value=0, max_value=100))
    gauges = st.dictionaries(
        names, st.floats(min_value=-10, max_value=10, allow_nan=False)
    )
    histograms = st.dictionaries(
        names,
        st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False), max_size=8
        ),
    )
    return st.tuples(counters, gauges, histograms)


def _build_snapshot(parts):
    counters, gauges, histograms = parts
    registry = MetricsRegistry()
    for name, value in counters.items():
        registry.count(name, value)
    for name, value in gauges.items():
        registry.set_gauge(name, value)
    for name, values in histograms.items():
        for value in values:
            registry.observe(f"hist.{name}", value, buckets=EDGES)
    return registry.snapshot()


class TestMerge:
    @given(_snapshot_strategy(), _snapshot_strategy(), _snapshot_strategy())
    def test_merge_is_associative(self, a, b, c):
        x, y, z = _build_snapshot(a), _build_snapshot(b), _build_snapshot(c)
        left = merge_snapshots(merge_snapshots(x, y), z)
        right = merge_snapshots(x, merge_snapshots(y, z))
        # Counters, gauges, and histogram cell counts are integers or
        # copied floats: exactly associative.  Histogram sums are float
        # accumulations, associative only up to rounding.
        assert left["counters"] == right["counters"]
        assert left["gauges"] == right["gauges"]
        assert left["histograms"].keys() == right["histograms"].keys()
        for name, data in left["histograms"].items():
            other = right["histograms"][name]
            assert data["buckets"] == other["buckets"]
            assert data["counts"] == other["counts"]
            assert data["count"] == other["count"]
            assert data["sum"] == pytest.approx(other["sum"])

    @given(_snapshot_strategy(), _snapshot_strategy())
    def test_counters_and_histograms_merge_commutatively(self, a, b):
        x, y = _build_snapshot(a), _build_snapshot(b)
        forward = merge_snapshots(x, y)
        backward = merge_snapshots(y, x)
        assert forward["counters"] == backward["counters"]
        assert forward["histograms"].keys() == backward["histograms"].keys()
        for name, data in forward["histograms"].items():
            other = backward["histograms"][name]
            assert data["counts"] == other["counts"]
            assert data["sum"] == pytest.approx(other["sum"])

    def test_counter_values_add(self):
        a = MetricsRegistry()
        a.count("x", 2)
        b = MetricsRegistry()
        b.count("x", 3)
        b.count("y", 1)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"] == {"x": 5, "y": 1}

    def test_histogram_cells_add(self):
        a = MetricsRegistry()
        a.observe("h", 1.0, buckets=EDGES)
        b = MetricsRegistry()
        b.observe("h", 10.0, buckets=EDGES)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["histograms"]["h"]["counts"] == [1, 0, 0, 1]
        assert merged["histograms"]["h"]["count"] == 2

    def test_mismatched_bucket_edges_rejected(self):
        a = MetricsRegistry()
        a.observe("h", 1.0, buckets=EDGES)
        b = MetricsRegistry()
        b.observe("h", 1.0, buckets=(7.0, 8.0))
        with pytest.raises(ValueError):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_gauge_last_write_wins(self):
        a = MetricsRegistry()
        a.set_gauge("g", 1.0)
        b = MetricsRegistry()
        b.set_gauge("g", 2.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["gauges"]["g"] == 2.0


class TestRegistry:
    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.count("x", -1)

    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.count("c")
        registry.set_gauge("g", 7.5)
        registry.observe("h", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 7.5}
        assert snapshot["histograms"]["h"]["buckets"] == list(DEFAULT_BUCKETS)

    def test_histogram_keeps_first_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, buckets=EDGES)
        again = registry.histogram("h", buckets=(99.0,))
        assert again.buckets == EDGES

    def test_render_text_lists_instruments(self):
        registry = MetricsRegistry()
        registry.count("runner.retries", 3)
        registry.set_gauge("pool.size", 4)
        registry.observe("latency", 0.02)
        text = registry.render_text()
        assert "runner.retries" in text
        assert "pool.size" in text
        assert "latency" in text

    def test_render_text_empty(self):
        assert "no metrics" in MetricsRegistry().render_text()

    def test_render_json_parses(self):
        registry = MetricsRegistry()
        registry.count("x")
        payload = json.loads(registry.render_json())
        assert payload["counters"] == {"x": 1}

    def test_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("x", 2)
        path = tmp_path / "sub" / "metrics.json"
        registry.write(path)
        assert json.loads(path.read_text())["counters"] == {"x": 2}


class TestNullMetrics:
    def test_default_registry_is_null(self):
        assert isinstance(current_metrics(), NullMetrics)
        assert current_metrics().enabled is False

    def test_noops_record_nothing(self):
        null = NullMetrics()
        null.count("x")
        null.set_gauge("g", 1.0)
        null.observe("h", 0.5)
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_use_metrics_restores_previous(self):
        registry = MetricsRegistry()
        before = current_metrics()
        with use_metrics(registry):
            assert current_metrics() is registry
            current_metrics().count("seen")
        assert current_metrics() is before
        assert registry.snapshot()["counters"] == {"seen": 1}
