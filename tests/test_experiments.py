"""Tests for the E1-E13 experiment suite.

Each experiment's shape-checks ARE its assertions — they encode the
"expected shape" column of DESIGN.md.  These tests run every experiment
in fast mode and require every check to pass, plus registry behaviour.
"""

import pytest

from repro.experiments.registry import (
    all_experiments,
    describe,
    get_experiment,
    make_result,
)

EXPERIMENT_IDS = all_experiments()


def test_registry_lists_contiguous_suite():
    # Count is derived, not hardcoded: the registry must stay a
    # contiguous E1..EN block (suite order) of at least today's size.
    assert EXPERIMENT_IDS == [
        f"E{i}" for i in range(1, len(EXPERIMENT_IDS) + 1)
    ]
    assert len(EXPERIMENT_IDS) >= 13


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("E99")


def test_describe_returns_title_and_claim():
    title, claim = describe("E6")
    assert "peering" in title.lower()
    assert claim


def test_make_result_prefills_metadata():
    result = make_result("E1")
    assert result.experiment_id == "E1"
    assert result.title


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_shape_holds(experiment_id):
    result = get_experiment(experiment_id)(seed=0, fast=True)
    failing = {name for name, ok in result.checks.items() if not ok}
    assert not failing, f"{experiment_id} failed shape checks: {failing}"


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_produces_tables(experiment_id):
    result = get_experiment(experiment_id)(seed=0, fast=True)
    assert result.tables
    for table in result.tables:
        assert table.rows
        rendered = table.render()
        assert rendered.strip()


def test_experiments_deterministic():
    a = get_experiment("E6")(seed=0, fast=True)
    b = get_experiment("E6")(seed=0, fast=True)
    assert [t.rows for t in a.tables] == [t.rows for t in b.tables]


def test_render_includes_checks():
    result = get_experiment("E11")(seed=0, fast=True)
    text = result.render()
    assert "E11" in text
    assert "PASS" in text


def test_describe_unknown_id_helpful_message():
    # Satellite fix: describe() used to raise a bare KeyError.
    with pytest.raises(KeyError) as excinfo:
        describe("E99")
    assert "unknown experiment" in str(excinfo.value)
    assert "E13" in str(excinfo.value)


def test_unknown_ids_raise_taxonomy_error():
    from repro.errors import ExperimentError, UnknownExperimentError

    for lookup in (describe, get_experiment):
        with pytest.raises(UnknownExperimentError) as excinfo:
            lookup("nope")
        assert isinstance(excinfo.value, ExperimentError)
        assert isinstance(excinfo.value, KeyError)
