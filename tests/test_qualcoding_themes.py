"""Tests for repro.qualcoding.themes."""

import pytest

from repro.qualcoding.codebook import Codebook
from repro.qualcoding.segments import CodingSession, Document
from repro.qualcoding.themes import extract_themes


@pytest.fixture
def session():
    """Two clearly separated code clusters across 8 documents."""
    book = Codebook("s")
    for name in ("cost", "maintenance", "parts", "trust", "privacy"):
        book.add(name)
    session = CodingSession(book)
    cluster_a = {"cost", "maintenance", "parts"}
    cluster_b = {"trust", "privacy"}
    for i in range(4):
        doc = f"a{i}"
        session.add_document(Document(doc, "x" * 60))
        for j, code in enumerate(sorted(cluster_a)):
            session.code(doc, code, j * 3, j * 3 + 2, rater="r1")
    for i in range(4):
        doc = f"b{i}"
        session.add_document(Document(doc, "y" * 60))
        for j, code in enumerate(sorted(cluster_b)):
            session.code(doc, code, j * 3, j * 3 + 2, rater="r1")
    return session


def test_finds_two_themes(session):
    themes = extract_themes(session, min_cooccurrence=2)
    assert len(themes) == 2
    code_sets = [set(t.codes) for t in themes]
    assert {"cost", "maintenance", "parts"} in code_sets
    assert {"privacy", "trust"} in code_sets


def test_theme_named_by_central_code(session):
    themes = extract_themes(session, min_cooccurrence=2)
    for theme in themes:
        assert theme.name in theme.codes


def test_quotes_attached(session):
    themes = extract_themes(session, quotes_per_theme=2, min_cooccurrence=2)
    assert all(len(t.quotes) == 2 for t in themes)


def test_min_size_filters_small_themes(session):
    themes = extract_themes(session, min_cooccurrence=2, min_size=3)
    assert len(themes) == 1
    assert themes[0].size == 3


def test_empty_session_yields_no_themes():
    book = Codebook("s")
    book.add("lonely")
    session = CodingSession(book)
    assert extract_themes(session) == []


def test_sorted_by_weight(session):
    themes = extract_themes(session, min_cooccurrence=2)
    weights = [t.weight for t in themes]
    assert weights == sorted(weights, reverse=True)
