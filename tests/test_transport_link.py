"""Tests for repro.netsim.transport.link."""

import pytest

from repro.netsim.transport.link import Link, interleave


class TestInterleave:
    def test_round_robin(self):
        assert interleave([[(0, 1), (0, 2)], [(1, 9)]]) == [
            (0, 1), (1, 9), (0, 2),
        ]

    def test_empty(self):
        assert interleave([[], []]) == []

    def test_single_flow(self):
        assert interleave([[(0, 1), (0, 2)]]) == [(0, 1), (0, 2)]


class TestLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            Link(capacity=0, buffer_size=10)
        with pytest.raises(ValueError):
            Link(capacity=1, buffer_size=-1)

    def test_under_capacity_all_served(self):
        link = Link(capacity=10, buffer_size=10)
        served, dropped = link.tick([[(0, i) for i in range(5)]])
        assert len(served) == 5
        assert dropped == []
        assert link.queue == 0

    def test_over_capacity_queues(self):
        link = Link(capacity=4, buffer_size=10)
        served, dropped = link.tick([[(0, i) for i in range(8)]])
        assert len(served) == 4
        assert dropped == []
        assert link.queue == 4

    def test_drop_tail_beyond_buffer(self):
        link = Link(capacity=2, buffer_size=3)
        served, dropped = link.tick([[(0, i) for i in range(10)]])
        # room = 3 + 2 = 5 admitted; 2 served; 3 queued; 5 dropped.
        assert len(served) == 2
        assert len(dropped) == 5
        assert link.queue == 3

    def test_fifo_order(self):
        link = Link(capacity=2, buffer_size=10)
        link.tick([[(0, 0), (0, 1), (0, 2), (0, 3)]])
        served, _ = link.tick([[]])
        assert served == [(0, 2), (0, 3)]

    def test_interleaving_shares_admission(self):
        link = Link(capacity=2, buffer_size=0)
        served, dropped = link.tick(
            [[(0, 0), (0, 1)], [(1, 0), (1, 1)]]
        )
        # Only 2 admitted, round-robin: one from each flow.
        flows_served = {flow for flow, _ in served}
        assert flows_served == {0, 1}

    def test_queue_delay(self):
        link = Link(capacity=4, buffer_size=100)
        link.tick([[(0, i) for i in range(12)]])
        assert link.queue_delay_ticks == pytest.approx(2.0)

    def test_reset(self):
        link = Link(capacity=1, buffer_size=5)
        link.tick([[(0, 0), (0, 1)]])
        link.reset()
        assert link.queue == 0
