"""Tests for repro.qualcoding.saturation."""

import pytest

from repro.qualcoding.codebook import Codebook
from repro.qualcoding.saturation import (
    SaturationCurve,
    bootstrap_saturation,
    saturation_curve,
    saturation_point,
)
from repro.qualcoding.segments import CodingSession, Document


def make_session(code_sets):
    """Session with one document per entry; entry = set of codes."""
    book = Codebook("s")
    all_codes = sorted({c for codes in code_sets for c in codes})
    for code in all_codes:
        book.add(code)
    session = CodingSession(book)
    for i, codes in enumerate(code_sets):
        doc_id = f"d{i:02d}"
        session.add_document(Document(doc_id, "x" * 50))
        for j, code in enumerate(sorted(codes)):
            session.code(doc_id, code, j, j + 2, rater="r1")
    return session


class TestCurve:
    def test_cumulative_counts(self):
        session = make_session([{"a", "b"}, {"b"}, {"c"}])
        curve = saturation_curve(session)
        assert curve.cumulative_codes == (2, 2, 3)
        assert curve.new_codes_per_doc == (2, 0, 1)

    def test_order_respected(self):
        session = make_session([{"a"}, {"b"}])
        curve = saturation_curve(session, order=["d01", "d00"])
        assert curve.doc_ids == ("d01", "d00")

    def test_unknown_order_id_raises(self):
        session = make_session([{"a"}])
        with pytest.raises(KeyError):
            saturation_curve(session, order=["ghost"])

    def test_coverage_at(self):
        session = make_session([{"a", "b"}, {"c"}, {"d"}])
        curve = saturation_curve(session)
        assert curve.coverage_at(1) == pytest.approx(0.5)
        assert curve.coverage_at(3) == 1.0
        assert curve.coverage_at(0) == 0.0
        assert curve.coverage_at(99) == 1.0


class TestSaturationPoint:
    def test_finds_quiet_window(self):
        curve = SaturationCurve(
            ("a", "b", "c", "d", "e"), (3, 5, 5, 5, 5), (3, 2, 0, 0, 0)
        )
        assert saturation_point(curve, window=3) == 2

    def test_none_when_never_saturates(self):
        curve = SaturationCurve(("a", "b"), (1, 2), (1, 1))
        assert saturation_point(curve, window=2) is None

    def test_threshold_relaxes_rule(self):
        curve = SaturationCurve(("a", "b", "c"), (3, 4, 5), (3, 1, 1))
        assert saturation_point(curve, window=2, threshold=1) == 1

    def test_bad_window_rejected(self):
        curve = SaturationCurve(("a",), (1,), (1,))
        with pytest.raises(ValueError):
            saturation_point(curve, window=0)


class TestBootstrap:
    def test_mean_curve_is_monotone(self):
        session = make_session(
            [{"a", "b"}, {"a"}, {"b", "c"}, {"c"}, {"d"}, {"a"}]
        )
        boot = bootstrap_saturation(session, n_orderings=20, seed=1)
        curve = boot["mean_curve"]
        assert all(x <= y + 1e-9 for x, y in zip(curve, curve[1:]))

    def test_deterministic_for_seed(self):
        session = make_session([{"a"}, {"b"}, {"a", "c"}])
        a = bootstrap_saturation(session, n_orderings=10, seed=7)
        b = bootstrap_saturation(session, n_orderings=10, seed=7)
        assert a == b

    def test_empty_session_raises(self):
        session = make_session([])
        with pytest.raises(ValueError):
            bootstrap_saturation(session)

    def test_bad_n_orderings(self):
        session = make_session([{"a"}])
        with pytest.raises(ValueError):
            bootstrap_saturation(session, n_orderings=0)
