"""Tests for repro.qualcoding.segments."""

import pytest

from repro.qualcoding.codebook import Codebook
from repro.qualcoding.segments import CodedSegment, CodingSession, Document


@pytest.fixture
def session():
    book = Codebook("study")
    book.add("trust")
    book.add("cost")
    s = CodingSession(book)
    s.add_document(Document("i1", "I trust the local operator completely."))
    s.add_document(Document("i2", "Costs are too high for households."))
    return s


class TestDocuments:
    def test_duplicate_rejected(self, session):
        with pytest.raises(ValueError):
            session.add_document(Document("i1", "dup"))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Document("", "text")

    def test_documents_sorted(self, session):
        assert [d.doc_id for d in session.documents()] == ["i1", "i2"]


class TestCoding:
    def test_code_returns_segment(self, session):
        segment = session.code("i1", "trust", 2, 7, rater="r1")
        assert segment.text_in(session.document("i1")) == "trust"

    def test_unknown_document_rejected(self, session):
        with pytest.raises(KeyError):
            session.code("nope", "trust", 0, 3, rater="r1")

    def test_unknown_code_rejected(self, session):
        with pytest.raises(KeyError):
            session.code("i1", "nope", 0, 3, rater="r1")

    def test_span_beyond_document_rejected(self, session):
        with pytest.raises(ValueError):
            session.code("i1", "trust", 0, 10_000, rater="r1")

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            CodedSegment("d", "c", 5, 5, "r")

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            CodedSegment("d", "c", -1, 3, "r")


class TestOverlap:
    def test_overlapping_same_doc(self):
        a = CodedSegment("d", "c1", 0, 10, "r")
        b = CodedSegment("d", "c2", 5, 15, "r")
        assert a.overlaps(b) and b.overlaps(a)

    def test_adjacent_do_not_overlap(self):
        a = CodedSegment("d", "c1", 0, 5, "r")
        b = CodedSegment("d", "c2", 5, 10, "r")
        assert not a.overlaps(b)

    def test_different_docs_never_overlap(self):
        a = CodedSegment("d1", "c", 0, 5, "r")
        b = CodedSegment("d2", "c", 0, 5, "r")
        assert not a.overlaps(b)

    def test_text_in_wrong_document_raises(self, session):
        segment = session.code("i1", "trust", 0, 3, rater="r1")
        with pytest.raises(ValueError):
            segment.text_in(session.document("i2"))


class TestQueries:
    def test_filters(self, session):
        session.code("i1", "trust", 0, 5, rater="r1")
        session.code("i1", "cost", 0, 5, rater="r2")
        session.code("i2", "cost", 0, 5, rater="r1")
        assert len(session.segments(doc_id="i1")) == 2
        assert len(session.segments(code="cost")) == 2
        assert len(session.segments(rater="r1")) == 2
        assert len(session.segments(doc_id="i1", rater="r1", code="trust")) == 1

    def test_raters_sorted(self, session):
        session.code("i1", "trust", 0, 5, rater="zed")
        session.code("i1", "trust", 0, 5, rater="amy")
        assert session.raters() == ["amy", "zed"]

    def test_code_frequencies_include_zeros(self, session):
        session.code("i1", "trust", 0, 5, rater="r1")
        freqs = session.code_frequencies()
        assert freqs == {"trust": 1, "cost": 0}

    def test_document_code_matrix(self, session):
        session.code("i1", "trust", 0, 5, rater="r1")
        matrix = session.document_code_matrix()
        assert matrix == {"i1": {"trust"}, "i2": set()}

    def test_quotes(self, session):
        session.code("i2", "cost", 0, 5, rater="r1")
        assert session.quotes("cost") == ["Costs"]

    def test_iter_units(self, session):
        session.code("i1", "trust", 0, 5, rater="r1")
        session.code("i1", "cost", 0, 5, rater="r2")
        units = dict(session.iter_units(["r1", "r2"]))
        assert units["i1"] == {"r1": {"trust"}, "r2": {"cost"}}
        assert units["i2"] == {"r1": set(), "r2": set()}


class TestMergeRemap:
    def test_remap_after_merge(self, session):
        session.code("i1", "cost", 0, 5, rater="r1")
        session.codebook.merge("cost", "trust")
        rewritten = session.remap_merged_codes()
        assert rewritten == 1
        assert session.codes_for_document("i1") == ["trust"]
