"""Tests for repro.textmine.sections."""

from repro.textmine.sections import Section, find_section, split_sections

PAPER = """Human Networks Paper

Abstract
We study the humans of networks.

1 Introduction
Networks are operated by people.

2 Methods
We did fieldwork.

2.1 Ethnography
Twelve weeks at the exchange.

Positionality
We write as engineers.

References
[1] Something.
"""


def test_front_matter_captured():
    sections = split_sections(PAPER)
    assert sections[0].title == "(front matter)"
    assert "Human Networks Paper" in sections[0].body


def test_numbered_headers_found():
    sections = split_sections(PAPER)
    numbers = [s.number for s in sections if s.number]
    assert numbers == ["1", "2", "2.1"]


def test_unnumbered_known_headers_found():
    sections = split_sections(PAPER)
    titles = {s.title.lower() for s in sections}
    assert "abstract" in titles
    assert "positionality" in titles
    assert "references" in titles


def test_bodies_attached_to_right_headers():
    sections = split_sections(PAPER)
    methods = find_section(sections, "Methods")
    assert methods is not None
    assert "fieldwork" in methods.body


def test_depth():
    assert Section("2.1", "x", "").depth == 2
    assert Section("3", "x", "").depth == 1
    assert Section("", "Abstract", "").depth == 1


def test_find_section_case_insensitive():
    sections = split_sections(PAPER)
    assert find_section(sections, "positionality") is not None
    assert find_section(sections, "POSITIONALITY") is not None


def test_find_section_missing_returns_none():
    assert find_section(split_sections(PAPER), "appendix z") is None


def test_prose_sentences_not_mistaken_for_headers():
    text = "1 Introduction\nThis is a long prose sentence that ends with a period.\nAnother line."
    sections = split_sections(text)
    assert len([s for s in sections if s.number]) == 1


def test_markdown_headers_recognized():
    sections = split_sections("# 3 Results\nbody text")
    assert sections[0].number == "3"
    assert sections[0].title == "Results"
