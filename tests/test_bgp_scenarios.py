"""Tests for repro.netsim.bgp.scenarios."""

import pytest

from repro.netsim.bgp.scenarios import (
    INCUMBENT_ASN,
    MEGA_IXP_ID,
    build_gravity_scenario,
    build_mandatory_peering_scenario,
    run_gravity_study,
    run_mandatory_peering_study,
)


class TestMandatoryPeeringScenario:
    def test_deterministic(self):
        a = build_mandatory_peering_scenario(seed=7)
        b = build_mandatory_peering_scenario(seed=7)
        assert a.graph.asns() == b.graph.asns()
        assert a.ixp.members == b.ixp.members

    def test_hierarchy_valid(self):
        scenario = build_mandatory_peering_scenario(seed=1)
        assert scenario.graph.validate_hierarchy() == []

    def test_incumbent_dominates_cone(self):
        scenario = build_mandatory_peering_scenario(seed=1)
        incumbent_cone = scenario.graph.customer_cone(INCUMBENT_ASN)
        # Majority of small ISPs default to the incumbent.
        assert len(incumbent_cone) > 10

    def test_demands_are_domestic(self):
        scenario = build_mandatory_peering_scenario(seed=1)
        for demand in scenario.demands:
            assert scenario.graph.get(demand.src).country == "MX"
            assert scenario.graph.get(demand.dst).country == "MX"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_mandatory_peering_scenario(incumbent_customer_share=1.5)
        with pytest.raises(ValueError):
            build_mandatory_peering_scenario(ixp_membership_rate=-0.1)


class TestMandatoryPeeringStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_mandatory_peering_study(n_small_isps=20, seed=0)

    def test_all_variants_present(self, study):
        assert set(study) == {
            "no_regulation", "honest_compliance",
            "asn_split_evasion", "org_enforcement",
        }

    def test_honesty_beats_no_regulation(self, study):
        assert (
            study["honest_compliance"]["local_share"]
            > study["no_regulation"]["local_share"]
        )

    def test_evasion_matches_no_regulation_traffic(self, study):
        assert study["asn_split_evasion"]["local_share"] == pytest.approx(
            study["no_regulation"]["local_share"], abs=1e-9
        )

    def test_evasion_compliance_gap(self, study):
        evasion = study["asn_split_evasion"]
        assert evasion["compliant_asn_level"]
        assert not evasion["compliant_org_level"]

    def test_org_enforcement_restores_honest_outcome(self, study):
        assert study["org_enforcement"]["local_share"] == pytest.approx(
            study["honest_compliance"]["local_share"], abs=1e-9
        )


class TestGravityScenario:
    def test_deterministic(self):
        a = build_gravity_scenario(seed=3)
        b = build_gravity_scenario(seed=3)
        assert a.graph.asns() == b.graph.asns()

    def test_pop_count_scales_with_presence(self):
        none = build_gravity_scenario(content_pop_presence=0.0, seed=0)
        full = build_gravity_scenario(content_pop_presence=1.0, seed=0)
        assert len(none.graph.ases_of_org("bigtech")) == 1
        assert len(full.graph.ases_of_org("bigtech")) == 1 + len(full.local_ixps)

    def test_hierarchy_valid(self):
        scenario = build_gravity_scenario(seed=0)
        assert scenario.graph.validate_hierarchy() == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_gravity_scenario(content_pop_presence=2.0)


class TestGravityStudy:
    @pytest.fixture(scope="class")
    def records(self):
        return run_gravity_study(n_eyeballs=15, seed=0)

    def test_domestic_content_monotone(self, records):
        series = [r["content_served_domestically"] for r in records]
        assert series[0] == 0.0
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))

    def test_mega_gravity_falls(self, records):
        assert records[0]["mega_gravity_ratio"] > records[-1]["mega_gravity_ratio"]

    def test_mega_dominates_without_pops(self, records):
        assert records[0]["mega_gravity_ratio"] > 0.5
