"""Tests for repro.textmine.collocations."""

import pytest

from repro.textmine.collocations import collocations

DOCS = [
    "the community network held up during the storm",
    "community network volunteers repaired the tower",
    "a community network is maintained by its members",
    "the route server at the exchange failed",
    "route server policies differ at every exchange",
    "route server maintenance happens monthly",
]


def test_finds_recurring_phrases():
    result = collocations(DOCS, min_count=3, top_k=5)
    phrases = {c.text for c in result}
    assert "community network" in phrases
    assert "route server" in phrases


def test_counts_recorded():
    result = {c.text: c for c in collocations(DOCS, min_count=3)}
    assert result["community network"].count == 3


def test_stopwords_do_not_dominate():
    result = collocations(DOCS, min_count=2, top_k=20)
    for collocation in result:
        assert "the" not in collocation.bigram


def test_min_count_filters():
    # "held up" appears once -> excluded at min_count=2.
    phrases = {c.text for c in collocations(DOCS, min_count=2, top_k=50)}
    assert "held up" not in phrases


def test_sorted_by_pmi():
    result = collocations(DOCS, min_count=2, top_k=50)
    pmis = [c.pmi for c in result]
    assert pmis == sorted(pmis, reverse=True)


def test_empty_corpus():
    assert collocations([], min_count=1) == []


def test_bad_min_count():
    with pytest.raises(ValueError):
        collocations(DOCS, min_count=0)


def test_discount_shrinks_hapax_pmi_below_raw():
    # Raw PMI of a hapax pair of two hapax words is log2(N); the
    # Pantel-Lin discount (x 1/2 x 1/2) must land well below it.
    import math
    docs = DOCS + ["xylophone quibble"]
    result = {c.text: c for c in collocations(docs, min_count=1, top_k=100)}
    hapax = result["xylophone quibble"]
    from repro.textmine.stopwords import remove_stopwords
    from repro.textmine.tokenize import word_tokens
    total = sum(len(remove_stopwords(word_tokens(d))) for d in docs)
    assert hapax.pmi == pytest.approx(math.log2(total) * 0.25)


def test_recurring_phrase_outranks_hapax():
    docs = DOCS + ["xylophone quibble"]
    result = {c.text: c for c in collocations(docs, min_count=1, top_k=100)}
    assert result["community network"].pmi > result["xylophone quibble"].pmi


def test_default_min_count_excludes_hapax_entirely():
    docs = DOCS + ["xylophone quibble"]
    phrases = {c.text for c in collocations(docs, top_k=100)}
    assert "xylophone quibble" not in phrases
    assert "community network" in phrases
