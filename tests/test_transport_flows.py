"""Tests for repro.netsim.transport.flows."""

import pytest

from repro.netsim.transport.flows import (
    FixedWindowSender,
    RenoSender,
    TahoeSender,
    make_sender,
)


class TestFixedWindow:
    def test_sends_up_to_window(self):
        sender = FixedWindowSender("f", demand_per_tick=10, window_size=4)
        assert len(sender.transmit(0)) == 4

    def test_acks_free_window(self):
        sender = FixedWindowSender("f", demand_per_tick=4, window_size=4)
        sends = sender.transmit(0)
        sender.deliver_acks(sends, 0)
        assert len(sender.transmit(1)) == 4
        assert sender.stats.acked == 4

    def test_timeout_retransmits(self):
        sender = FixedWindowSender(
            "f", demand_per_tick=2, window_size=4, static_timeout=2
        )
        first = sender.transmit(0)
        sender.deliver_acks([], 0)  # nothing came back
        sender.transmit(1)
        sender.deliver_acks([], 1)
        third = sender.transmit(2)  # 2 ticks later: timeout
        assert set(first) <= set(third)
        assert sender.stats.retransmissions >= len(first)

    def test_window_never_adapts(self):
        sender = FixedWindowSender("f", demand_per_tick=8, window_size=8)
        for tick in range(5):
            sender.transmit(tick)
            sender.deliver_acks([], tick)
        assert sender.window() == 8

    def test_spurious_ack_counted(self):
        sender = FixedWindowSender("f", demand_per_tick=1, window_size=2)
        sends = sender.transmit(0)
        fresh, spurious = sender.deliver_acks(sends + sends, 0)
        assert fresh == len(sends)
        assert spurious == len(sends)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedWindowSender("f", -1, 4)
        with pytest.raises(ValueError):
            FixedWindowSender("f", 1, 0)
        with pytest.raises(ValueError):
            FixedWindowSender("f", 1, 4, static_timeout=0)


class TestTahoe:
    def test_slow_start_doubles(self):
        sender = TahoeSender("f", demand_per_tick=100)
        windows = []
        for tick in range(5):
            sends = sender.transmit(tick)
            windows.append(sender.window())
            sender.deliver_acks(sends, tick)
        assert windows == [1, 2, 4, 8, 16]

    def test_loss_resets_to_one(self):
        sender = TahoeSender("f", demand_per_tick=100)
        for tick in range(4):
            sends = sender.transmit(tick)
            sender.deliver_acks(sends, tick)
        assert sender.window() > 4
        # Starve ACKs until a timeout fires.
        tick = 4
        while sender.stats.retransmissions == 0:
            sender.transmit(tick)
            sender.deliver_acks([], tick)
            tick += 1
        assert sender.window() == 1

    def test_congestion_avoidance_linear(self):
        sender = TahoeSender("f", demand_per_tick=100)
        sender.cwnd = 8.0
        sender.ssthresh = 8.0
        sends = sender.transmit(0)
        sender.deliver_acks(sends, 0)
        assert sender.cwnd == pytest.approx(9.0)

    def test_adaptive_timeout_tracks_rtt(self):
        sender = TahoeSender("f", demand_per_tick=1)
        base = sender.timeout_ticks(0)
        for _ in range(30):
            sender.record_rtt(10.0)
        assert sender.timeout_ticks(0) > base


class TestReno:
    def test_partial_loss_halves_instead_of_reset(self):
        sender = RenoSender("f", demand_per_tick=100)
        for tick in range(4):
            sends = sender.transmit(tick)
            sender.deliver_acks(sends, tick)
        before = sender.cwnd
        # Simulate a tick with both a timeout retransmission and an ACK.
        sender._timeouts_this_tick = 1
        sender.on_tick_feedback(acked=3, spurious_acks=0, timeouts=1, now=5)
        assert sender.cwnd == pytest.approx(max(2.0, before / 2.0))
        assert sender.cwnd > 1.0

    def test_total_loss_resets(self):
        sender = RenoSender("f", demand_per_tick=100)
        sender.cwnd = 16.0
        sender.on_tick_feedback(acked=0, spurious_acks=0, timeouts=2, now=5)
        assert sender.cwnd == 1.0


class TestFactory:
    @pytest.mark.parametrize("protocol,cls", [
        ("fixed", FixedWindowSender),
        ("tahoe", TahoeSender),
        ("reno", RenoSender),
    ])
    def test_factory(self, protocol, cls):
        assert isinstance(make_sender(protocol, "f", 1), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_sender("cubic", "f", 1)
