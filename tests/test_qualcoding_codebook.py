"""Tests for repro.qualcoding.codebook."""

import pytest

from repro.qualcoding.codebook import Code, Codebook


@pytest.fixture
def book():
    b = Codebook("study")
    b.add("barriers", "Obstacles to adoption")
    b.add("barriers/cost", "Monetary obstacles", parent="barriers")
    b.add("barriers/skills", "Skill obstacles", parent="barriers")
    b.add("trust", "Trust in operators")
    return b


class TestConstruction:
    def test_len_and_contains(self, book):
        assert len(book) == 4
        assert "trust" in book
        assert "missing" not in book

    def test_duplicate_rejected(self, book):
        with pytest.raises(ValueError):
            book.add("trust")

    def test_unknown_parent_rejected(self, book):
        with pytest.raises(ValueError):
            book.add("x", parent="nope")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Code("   ")

    def test_iteration_sorted(self, book):
        names = [c.name for c in book]
        assert names == sorted(names)


class TestHierarchy:
    def test_roots(self, book):
        assert [c.name for c in book.roots()] == ["barriers", "trust"]

    def test_children(self, book):
        assert [c.name for c in book.children("barriers")] == [
            "barriers/cost", "barriers/skills",
        ]

    def test_children_unknown_raises(self, book):
        with pytest.raises(KeyError):
            book.children("nope")

    def test_descendants(self, book):
        book.add("barriers/cost/equipment", parent="barriers/cost")
        names = [c.name for c in book.descendants("barriers")]
        assert "barriers/cost/equipment" in names
        assert len(names) == 3

    def test_ancestry(self, book):
        assert book.ancestry("barriers/cost") == ["barriers", "barriers/cost"]


class TestMerge:
    def test_merge_removes_source(self, book):
        book.merge("barriers/skills", "barriers/cost")
        assert "barriers/skills" not in book

    def test_merge_moves_examples(self, book):
        book.get("barriers/skills").examples.append("no one can solder")
        book.merge("barriers/skills", "barriers/cost")
        assert "no one can solder" in book.get("barriers/cost").examples

    def test_merge_reparents_children(self, book):
        book.add("barriers/skills/rf", parent="barriers/skills")
        book.merge("barriers/skills", "trust")
        assert book.get("barriers/skills/rf").parent == "trust"

    def test_merge_into_self_rejected(self, book):
        with pytest.raises(ValueError):
            book.merge("trust", "trust")

    def test_resolve_follows_chain(self, book):
        book.merge("barriers/skills", "barriers/cost")
        book.merge("barriers/cost", "trust")
        assert book.resolve("barriers/skills") == "trust"
        assert book.resolve("trust") == "trust"

    def test_merge_history_recorded(self, book):
        book.merge("barriers/skills", "trust")
        assert book.merge_history() == [("barriers/skills", "trust")]


class TestSerialization:
    def test_roundtrip(self, book):
        clone = Codebook.from_dict(book.to_dict())
        assert clone.names() == book.names()
        assert clone.get("barriers/cost").parent == "barriers"

    def test_roundtrip_out_of_order_parents(self):
        payload = {
            "name": "x",
            "codes": [
                {"name": "child", "parent": "root"},
                {"name": "root", "parent": None},
            ],
        }
        book = Codebook.from_dict(payload)
        assert book.get("child").parent == "root"

    def test_unresolvable_parent_raises(self):
        payload = {"name": "x", "codes": [{"name": "a", "parent": "ghost"}]}
        with pytest.raises(ValueError):
            Codebook.from_dict(payload)
