"""Tests for repro.netsim.community.deployment."""

import pytest

from repro.netsim.community.deployment import (
    DeploymentConfig,
    run_deployment_study,
    simulate_deployment,
)


class TestConfigPresets:
    def test_par_preset(self):
        config = DeploymentConfig.par()
        assert config.community_siting
        assert config.local_maintenance
        assert config.feedback_iteration

    def test_top_down_preset(self):
        config = DeploymentConfig.top_down()
        assert not config.community_siting
        assert not config.local_maintenance
        assert not config.feedback_iteration


class TestSimulation:
    @pytest.fixture(scope="class")
    def par_outcome(self):
        return simulate_deployment(DeploymentConfig.par(months=12, seed=0))

    @pytest.fixture(scope="class")
    def top_outcome(self):
        return simulate_deployment(DeploymentConfig.top_down(months=12, seed=0))

    def test_deterministic(self):
        a = simulate_deployment(DeploymentConfig.par(months=6, seed=3))
        b = simulate_deployment(DeploymentConfig.par(months=6, seed=3))
        assert a == b

    def test_outcome_ranges(self, par_outcome):
        assert 0.0 <= par_outcome.mean_uptime <= 1.0
        assert 0.0 <= par_outcome.mean_coverage <= 1.0
        assert 0.0 <= par_outcome.retention <= 1.0
        assert par_outcome.median_repair_days >= 0.25

    def test_monthly_series_length(self, par_outcome):
        assert len(par_outcome.monthly_quality) == 12

    def test_par_repairs_faster(self, par_outcome, top_outcome):
        assert par_outcome.median_repair_days < top_outcome.median_repair_days

    def test_par_retains_more_volunteers(self, par_outcome, top_outcome):
        assert par_outcome.final_volunteers >= top_outcome.final_volunteers

    def test_failures_happen(self, par_outcome):
        assert par_outcome.n_failures > 0


class TestStudy:
    def test_policies_present_with_ablations(self):
        results = run_deployment_study(n_seeds=2, months=8, ablations=True)
        assert set(results) == {
            "par", "top_down", "siting_only", "maintenance_only",
            "iteration_only",
        }

    def test_par_beats_top_down_on_retention(self):
        results = run_deployment_study(n_seeds=3, months=12)
        assert results["par"]["retention"] > results["top_down"]["retention"]

    def test_par_beats_top_down_on_repair(self):
        results = run_deployment_study(n_seeds=3, months=12)
        assert (
            results["par"]["median_repair_days"]
            < results["top_down"]["median_repair_days"]
        )
