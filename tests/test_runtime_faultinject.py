"""Tests for repro.runtime.faultinject."""

import pytest

from repro.runtime.faultinject import FaultInjector, FaultSpec, InjectedFault


def fire_sequence(injector, point, n=40):
    """Whether each of ``n`` calls through ``point`` faulted."""
    outcomes = []
    for _ in range(n):
        try:
            injector.call(point, lambda: "ok")
            outcomes.append(False)
        except InjectedFault:
            outcomes.append(True)
    return outcomes


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=7)
        b = FaultInjector(seed=7)
        for injector in (a, b):
            injector.register("p", probability=0.3)
        assert fire_sequence(a, "p") == fire_sequence(b, "p")

    def test_different_seeds_diverge(self):
        a = FaultInjector(seed=0)
        b = FaultInjector(seed=1)
        for injector in (a, b):
            injector.register("p", probability=0.5)
        assert fire_sequence(a, "p") != fire_sequence(b, "p")

    def test_points_have_independent_streams(self):
        # Interleaving calls to another point must not shift p's schedule.
        a = FaultInjector(seed=3)
        a.register("p", probability=0.5)
        solo = fire_sequence(a, "p")

        b = FaultInjector(seed=3)
        b.register("p", probability=0.5)
        b.register("q", probability=0.5)
        interleaved = []
        for _ in range(40):
            try:
                b.call("p", lambda: "ok")
                interleaved.append(False)
            except InjectedFault:
                interleaved.append(True)
            b.should_fire("q")  # advance q's stream between p calls
        assert interleaved == solo


class TestModes:
    def test_raise_mode_default_exception(self):
        injector = FaultInjector()
        injector.register("p")
        with pytest.raises(InjectedFault):
            injector.call("p", lambda: "ok")

    def test_raise_mode_custom_exception(self):
        injector = FaultInjector()
        injector.register("p", exception=lambda: OSError("disk gone"))
        with pytest.raises(OSError, match="disk gone"):
            injector.call("p", lambda: "ok")

    def test_times_budget_then_passthrough(self):
        injector = FaultInjector()
        injector.register("p", times=2)
        assert fire_sequence(injector, "p", n=5) == [
            True, True, False, False, False,
        ]

    def test_corrupt_mode_damages_return_value(self):
        injector = FaultInjector()
        injector.register("p", mode="corrupt", times=1)
        assert injector.call("p", lambda: [1, 2]) is None  # default: None
        assert injector.call("p", lambda: [1, 2]) == [1, 2]

    def test_corrupt_mode_custom_function(self):
        injector = FaultInjector()
        injector.register(
            "p", mode="corrupt", corrupt=lambda value: value[::-1]
        )
        assert injector.call("p", lambda: [1, 2, 3]) == [3, 2, 1]

    def test_hang_mode_sleeps_then_returns(self):
        slept = []
        injector = FaultInjector(sleep=slept.append)
        injector.register("p", mode="hang", hang_seconds=12.5, times=1)
        assert injector.call("p", lambda: "ok") == "ok"
        assert slept == [12.5]

    def test_unregistered_point_is_passthrough(self):
        injector = FaultInjector()
        assert injector.call("nope", lambda: 41 + 1) == 42


class TestApi:
    def test_register_validates_mode_and_probability(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="mode"):
            injector.register("p", mode="explode")
        with pytest.raises(ValueError, match="probability"):
            injector.register("p", probability=1.5)

    def test_register_returns_live_spec(self):
        injector = FaultInjector()
        spec = injector.register("p", times=1)
        assert isinstance(spec, FaultSpec)
        with pytest.raises(InjectedFault):
            injector.call("p", lambda: "ok")
        assert spec.fired == 1
        assert spec.calls == 1

    def test_stats_and_clear(self):
        injector = FaultInjector()
        injector.register("p", times=1)
        injector.register("q", times=0)
        fire_sequence(injector, "p", n=3)
        assert injector.stats() == {
            "p": {"calls": 3, "fired": 1},
            "q": {"calls": 0, "fired": 0},
        }
        injector.clear("p")
        assert injector.spec("p") is None
        injector.clear()
        assert injector.stats() == {}

    def test_args_forwarded(self):
        injector = FaultInjector()
        assert injector.call("p", lambda a, b=0: a + b, 40, b=2) == 42


class TestDiskDamageModes:
    """bitrot/truncate: the disk-fault modes behind artifacts:damage.

    They damage *files* (via damage_file), never call results — a
    damage-mode spec on a point must leave call() as a pass-through.
    """

    def write_target(self, tmp_path, data=b"0123456789" * 20):
        path = tmp_path / "entry.jsonl"
        path.write_bytes(data)
        return path

    def test_bitrot_flips_exactly_one_byte(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="bitrot", times=1)
        path = self.write_target(tmp_path)
        before = path.read_bytes()
        assert injector.damage_file("p", path) == "bitrot"
        after = path.read_bytes()
        assert len(after) == len(before)
        assert sum(a != b for a, b in zip(before, after)) == 1

    def test_truncate_shortens_the_file(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="truncate", times=1)
        path = self.write_target(tmp_path)
        before = path.read_bytes()
        assert injector.damage_file("p", path) == "truncate"
        after = path.read_bytes()
        assert len(after) < len(before)
        assert before.startswith(after)

    def test_same_seed_damages_the_same_byte(self, tmp_path):
        results = []
        for run in range(2):
            injector = FaultInjector(seed=11)
            injector.register("p", mode="bitrot", times=1)
            path = tmp_path / f"copy{run}.jsonl"
            path.write_bytes(b"0123456789" * 20)
            injector.damage_file("p", path)
            results.append(path.read_bytes())
        assert results[0] == results[1]

    def test_budget_limits_damage(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="bitrot", times=1)
        first = self.write_target(tmp_path)
        assert injector.damage_file("p", first) == "bitrot"
        untouched = tmp_path / "second.jsonl"
        untouched.write_bytes(b"safe")
        assert injector.damage_file("p", untouched) is None
        assert untouched.read_bytes() == b"safe"

    def test_missing_file_refunds_the_budget(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="bitrot", times=1)
        assert injector.damage_file("p", tmp_path / "absent.jsonl") is None
        # the budget survived the misfire and lands on a real file
        path = self.write_target(tmp_path)
        assert injector.damage_file("p", path) == "bitrot"

    def test_empty_file_refunds_the_budget(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="bitrot", times=1)
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert injector.damage_file("p", empty) is None
        path = self.write_target(tmp_path)
        assert injector.damage_file("p", path) == "bitrot"

    def test_damage_modes_are_inert_in_call(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="bitrot")
        injector.register("q", mode="truncate")
        assert injector.call("p", lambda: 42) == 42
        assert injector.call("q", lambda: "ok") == "ok"

    def test_non_damage_point_is_a_damage_file_noop(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="raise")
        path = self.write_target(tmp_path)
        before = path.read_bytes()
        assert injector.damage_file("p", path) is None
        assert path.read_bytes() == before

    def test_export_specs_round_trips_damage_modes(self, tmp_path):
        injector = FaultInjector(seed=5)
        injector.register("p", mode="bitrot", times=2)
        path = self.write_target(tmp_path)
        injector.damage_file("p", path)

        rebuilt = FaultInjector.from_specs(injector.export_specs(), seed=5)
        spec = rebuilt.spec("p")
        assert spec.mode == "bitrot"
        assert spec.fired == 1  # the spent budget survived the hop
        second = tmp_path / "second.jsonl"
        second.write_bytes(b"0123456789" * 20)
        assert rebuilt.damage_file("p", second) == "bitrot"
        assert rebuilt.damage_file("p", second) is None  # budget exhausted
