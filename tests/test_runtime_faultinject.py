"""Tests for repro.runtime.faultinject."""

import pytest

from repro.runtime.faultinject import FaultInjector, FaultSpec, InjectedFault


def fire_sequence(injector, point, n=40):
    """Whether each of ``n`` calls through ``point`` faulted."""
    outcomes = []
    for _ in range(n):
        try:
            injector.call(point, lambda: "ok")
            outcomes.append(False)
        except InjectedFault:
            outcomes.append(True)
    return outcomes


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=7)
        b = FaultInjector(seed=7)
        for injector in (a, b):
            injector.register("p", probability=0.3)
        assert fire_sequence(a, "p") == fire_sequence(b, "p")

    def test_different_seeds_diverge(self):
        a = FaultInjector(seed=0)
        b = FaultInjector(seed=1)
        for injector in (a, b):
            injector.register("p", probability=0.5)
        assert fire_sequence(a, "p") != fire_sequence(b, "p")

    def test_points_have_independent_streams(self):
        # Interleaving calls to another point must not shift p's schedule.
        a = FaultInjector(seed=3)
        a.register("p", probability=0.5)
        solo = fire_sequence(a, "p")

        b = FaultInjector(seed=3)
        b.register("p", probability=0.5)
        b.register("q", probability=0.5)
        interleaved = []
        for _ in range(40):
            try:
                b.call("p", lambda: "ok")
                interleaved.append(False)
            except InjectedFault:
                interleaved.append(True)
            b.should_fire("q")  # advance q's stream between p calls
        assert interleaved == solo


class TestModes:
    def test_raise_mode_default_exception(self):
        injector = FaultInjector()
        injector.register("p")
        with pytest.raises(InjectedFault):
            injector.call("p", lambda: "ok")

    def test_raise_mode_custom_exception(self):
        injector = FaultInjector()
        injector.register("p", exception=lambda: OSError("disk gone"))
        with pytest.raises(OSError, match="disk gone"):
            injector.call("p", lambda: "ok")

    def test_times_budget_then_passthrough(self):
        injector = FaultInjector()
        injector.register("p", times=2)
        assert fire_sequence(injector, "p", n=5) == [
            True, True, False, False, False,
        ]

    def test_corrupt_mode_damages_return_value(self):
        injector = FaultInjector()
        injector.register("p", mode="corrupt", times=1)
        assert injector.call("p", lambda: [1, 2]) is None  # default: None
        assert injector.call("p", lambda: [1, 2]) == [1, 2]

    def test_corrupt_mode_custom_function(self):
        injector = FaultInjector()
        injector.register(
            "p", mode="corrupt", corrupt=lambda value: value[::-1]
        )
        assert injector.call("p", lambda: [1, 2, 3]) == [3, 2, 1]

    def test_hang_mode_sleeps_then_returns(self):
        slept = []
        injector = FaultInjector(sleep=slept.append)
        injector.register("p", mode="hang", hang_seconds=12.5, times=1)
        assert injector.call("p", lambda: "ok") == "ok"
        assert slept == [12.5]

    def test_unregistered_point_is_passthrough(self):
        injector = FaultInjector()
        assert injector.call("nope", lambda: 41 + 1) == 42


class TestApi:
    def test_register_validates_mode_and_probability(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="mode"):
            injector.register("p", mode="explode")
        with pytest.raises(ValueError, match="probability"):
            injector.register("p", probability=1.5)

    def test_register_returns_live_spec(self):
        injector = FaultInjector()
        spec = injector.register("p", times=1)
        assert isinstance(spec, FaultSpec)
        with pytest.raises(InjectedFault):
            injector.call("p", lambda: "ok")
        assert spec.fired == 1
        assert spec.calls == 1

    def test_stats_and_clear(self):
        injector = FaultInjector()
        injector.register("p", times=1)
        injector.register("q", times=0)
        fire_sequence(injector, "p", n=3)
        assert injector.stats() == {
            "p": {"calls": 3, "fired": 1},
            "q": {"calls": 0, "fired": 0},
        }
        injector.clear("p")
        assert injector.spec("p") is None
        injector.clear()
        assert injector.stats() == {}

    def test_args_forwarded(self):
        injector = FaultInjector()
        assert injector.call("p", lambda a, b=0: a + b, 40, b=2) == 42
