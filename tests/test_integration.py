"""Cross-module integration tests.

Each test exercises a realistic end-to-end workflow spanning several
packages, the way the examples do.
"""

import pytest

from repro.core.ethnography import FieldNote, FieldSite, FieldworkPlan
from repro.core.positionality import extract_statements
from repro.ethics.anonymize import Pseudonymizer, scrub_quasi_identifiers
from repro.ethics.consent import ConsentRegistry
from repro.qualcoding.agreement import compare_raters
from repro.qualcoding.codebook import Codebook
from repro.qualcoding.segments import CodingSession
from repro.qualcoding.themes import extract_themes


class TestFieldworkToCodingPipeline:
    """Field notes -> documents -> coding -> reliability -> themes."""

    @pytest.fixture
    def coded_study(self):
        plan = FieldworkPlan("community-study")
        plan.add_site(FieldSite("village", "the deployment site"))
        plan.schedule_visit("village", 0, 30)
        notes = [
            "The tower went down again; parts take a season to arrive and "
            "the cost of spares eats the budget.",
            "Maintenance volunteers are exhausted; the cost of travel to "
            "the tower is a burden.",
            "Residents trust the local operator; costs remain the worry.",
            "A storm took the backhaul; maintenance crews responded fast.",
        ]
        for i, text in enumerate(notes):
            plan.record_note(FieldNote(f"note-{i}", "village", i, text))

        book = Codebook("community")
        book.add("cost", "Money-related burdens")
        book.add("maintenance", "Repair and upkeep work")
        book.add("trust", "Trust in operators")
        session = CodingSession(book)
        for document in plan.documents():
            session.add_document(document)

        # Two raters code by simple keyword rules (deterministic).
        rules = {
            "cost": ("cost", "budget"),
            "maintenance": ("maintenance", "parts", "repair"),
            "trust": ("trust",),
        }
        for rater, fuzz in (("r1", ()), ("r2", ("trust",))):
            for document in plan.documents():
                lowered = document.text.lower()
                for code, keywords in rules.items():
                    if code in fuzz:
                        continue  # r2 never applies "trust" (disagreement)
                    if any(k in lowered for k in keywords):
                        session.code(document.doc_id, code, 0, 10, rater=rater)
        return session

    def test_reliability_battery_runs(self, coded_study):
        reports = {r.code: r for r in compare_raters(coded_study)}
        assert reports["cost"].kappa == pytest.approx(1.0)
        assert reports["maintenance"].kappa == pytest.approx(1.0)
        assert reports["trust"].percent < 1.0

    def test_themes_emerge_from_codes(self, coded_study):
        themes = extract_themes(coded_study, min_cooccurrence=2, rater="r1")
        assert themes
        assert "cost" in themes[0].codes


class TestConsentGatedQuoting:
    """Consent registry gates which quotes reach publication."""

    def test_withdrawn_participant_quotes_blocked(self):
        registry = ConsentRegistry()
        registry.grant("op-1", {"interview", "publication-quote"}, now=0)
        registry.grant("op-2", {"interview"}, now=0)

        quotes = {
            "op-1": "the network dies every harvest",
            "op-2": "we route around the incumbent",
        }
        publishable = {
            pid: quote
            for pid, quote in quotes.items()
            if registry.check(pid, "publication-quote", now=5)
        }
        assert list(publishable) == ["op-1"]

        registry.withdraw("op-1", now=6)
        still_publishable = [
            pid for pid in quotes
            if registry.check(pid, "publication-quote", now=7)
        ]
        assert still_publishable == []

    def test_anonymization_before_publication(self):
        pseudonymizer = Pseudonymizer("study-key")
        raw = (
            "Maria Lopez (maria@coop.example) of AS64500 said the uplink "
            "at 203.0.113.9 flaps."
        )
        text = pseudonymizer.apply(raw, ["Maria Lopez"])
        text = scrub_quasi_identifiers(text)
        assert "Maria" not in text
        assert "@" not in text
        assert "AS64500" not in text
        assert "203.0.113.9" not in text


class TestCorpusPositionalityPipeline:
    """Synthetic corpus -> extractor, cross-package consistency."""

    def test_generated_statements_are_extractable(self):
        from repro.bibliometrics.synthgen import (
            SyntheticCorpusConfig, generate_corpus,
        )
        corpus, truth = generate_corpus(
            SyntheticCorpusConfig(start_year=2022, end_year=2023, seed=9,
                                  authors_per_venue_pool=20)
        )
        hits = 0
        for paper_id in sorted(truth.positionality)[:20]:
            statements = extract_statements(corpus.paper(paper_id).full_text)
            if statements and statements[0].disclosed_facets():
                hits += 1
        checked = min(20, len(truth.positionality))
        assert checked > 0
        assert hits == checked


class TestInterconnectionRoundTrip:
    """Graph -> routes -> traffic -> report -> JSONL persistence."""

    def test_report_persists_and_reloads(self, tmp_path):
        from repro.io.jsonl import read_jsonl, write_jsonl
        from repro.netsim.bgp.scenarios import run_mandatory_peering_study

        results = run_mandatory_peering_study(n_small_isps=12, seed=2)
        records = [
            {"variant": variant, **{k: v for k, v in record.items()
                                    if k != "ixp_volumes"}}
            for variant, record in results.items()
        ]
        path = tmp_path / "e6.jsonl"
        write_jsonl(path, records)
        reloaded = list(read_jsonl(path))
        assert len(reloaded) == 4
        by_variant = {r["variant"]: r for r in reloaded}
        assert by_variant["asn_split_evasion"]["compliant_asn_level"] is True
