"""Tests for repro.serve.service — the degradation ladder over real TCP.

Each rung of the ladder gets a test: hit, miss-then-compute, ETag/304,
coalescing (N requests → one job), deadline → 503 with the job
surviving, admission-control 429, graceful drain, and the status-code
contract for bad input.  Everything runs against a live ServerThread
on a loopback port — the same path production traffic takes — except
the cases that need deterministic internal state, which drive
ResultService.respond directly.
"""

import asyncio
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.client import fetch
from repro.serve.http import Request
from repro.serve.service import ResultService, ServeConfig, ServerThread

HOST = "127.0.0.1"


def make_service(tmp_path, metrics=None, **overrides):
    defaults = dict(cache_dir=str(tmp_path / "cache"), deadline=60.0)
    defaults.update(overrides)
    return ResultService(
        ServeConfig(**defaults), metrics=metrics or MetricsRegistry()
    )


def counters(service):
    return service.metrics.snapshot()["counters"]


def respond(service, path, headers=None, method="GET"):
    """Drive the service directly with a synthetic request."""
    from urllib.parse import parse_qs, urlsplit

    split = urlsplit(path)
    request = Request(
        method=method,
        target=path,
        path=split.path,
        query=parse_qs(split.query, keep_blank_values=True),
        headers={k.lower(): v for k, v in (headers or {}).items()},
    )
    return asyncio.run(service.respond(request))


class TestReadThrough:
    def test_cold_then_hot_then_304(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            cold = fetch(HOST, server.port, "/v1/result/E7?seed=0")
            assert cold.status == 200
            assert cold.json()["source"] == "computed"
            etag = cold.headers["etag"]
            assert etag == '"%s"' % cold.json()["config_hash"]

            hot = fetch(HOST, server.port, "/v1/result/E7?seed=0")
            assert hot.status == 200
            assert hot.json()["source"] == "cache"
            assert hot.json()["result"] == cold.json()["result"]

            cached = fetch(
                HOST, server.port, "/v1/result/E7?seed=0",
                headers={"If-None-Match": etag},
            )
            assert cached.status == 304
            assert cached.body == b""
            assert cached.headers["etag"] == etag
        stats = counters(service)
        assert stats["serve.misses"] == 1
        assert stats["serve.hits"] == 2
        assert stats["serve.compute_jobs"] == 1
        assert stats["serve.not_modified"] == 1

    def test_result_by_hash_is_lookup_only(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            miss = fetch(HOST, server.port, "/v1/result/E7/0000dead")
            assert miss.status == 404
            cold = fetch(HOST, server.port, "/v1/result/E7?seed=0")
            config_hash = cold.json()["config_hash"]
            hit = fetch(HOST, server.port, f"/v1/result/E7/{config_hash}")
            assert hit.status == 200
            assert hit.json()["source"] == "cache"
        # the 404 lookup must not have dispatched a compute job
        assert counters(service)["serve.compute_jobs"] == 1

    def test_sweep_results_are_served(self, tmp_path):
        """A sweep warms the cache; the server reads the same entries."""
        from repro.experiments.sweep import run_sweep

        cache_dir = str(tmp_path / "cache")
        report = run_sweep(
            "E7", {"seed": [0, 1]}, preset="fast", cache_dir=cache_dir
        )
        assert report.ok
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            for point in report.points:
                config_hash = point.spec.config_hash()
                hit = fetch(HOST, server.port, f"/v1/result/E7/{config_hash}")
                assert hit.status == 200
        assert counters(service).get("serve.compute_jobs", 0) == 0

    def test_grid_reports_cache_status_without_computing(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            fetch(HOST, server.port, "/v1/result/E7?seed=1")
            grid = fetch(HOST, server.port, "/v1/grid/E7?grid=seed=0,1,2")
            assert grid.status == 200
            payload = grid.json()
            assert payload["total"] == 3
            assert payload["cached"] == 1
            assert [p["cached"] for p in payload["points"]] == [
                False, True, False,
            ]
        assert counters(service)["serve.compute_jobs"] == 1

    def test_corpus_stats_cached_across_requests(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            cold = fetch(HOST, server.port, "/v1/corpus?seed=0&preset=fast")
            assert cold.status == 200
            assert cold.json()["source"] == "computed"
            stats = cold.json()["stats"]
            assert stats["papers"] > 0
            assert stats["authors"] > 0
            hot = fetch(HOST, server.port, "/v1/corpus?seed=0&preset=fast")
            assert hot.json()["source"] == "cache"
            not_modified = fetch(
                HOST, server.port, "/v1/corpus?seed=0&preset=fast",
                headers={"If-None-Match": cold.headers["etag"]},
            )
            assert not_modified.status == 304


class TestCoalescing:
    def test_n_concurrent_cold_requests_run_one_job(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_compute(spec, **kwargs):
            calls.append(1)
            started.set()
            release.wait(timeout=10)
            return [{"record": {"status": "ok"}, "result": {"fake": True}}]

        monkeypatch.setattr(
            "repro.serve.service.compute_experiment_rows", slow_compute
        )
        service = make_service(tmp_path)
        results = []
        with ServerThread(service) as server:

            def client():
                results.append(
                    fetch(HOST, server.port, "/v1/result/E7?seed=0", timeout=30)
                )

            first = threading.Thread(target=client)
            first.start()
            assert started.wait(timeout=10)
            # the job is provably in flight; pile four more requests on
            rest = [threading.Thread(target=client) for _ in range(4)]
            for thread in rest:
                thread.start()
            deadline = time.monotonic() + 10
            while (
                counters(service).get("serve.coalesced", 0) < 4
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            release.set()
            for thread in [first, *rest]:
                thread.join(timeout=30)
        assert len(calls) == 1
        assert [r.status for r in results] == [200] * 5
        stats = counters(service)
        assert stats["serve.compute_jobs"] == 1
        assert stats["serve.coalesced"] == 4
        assert stats["serve.misses"] == 5


class TestDeadline:
    def test_deadline_degrades_to_503_and_job_survives(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments.sweep import (
            SWEEP_RESULT_KIND,
            result_cache_config,
        )

        finished = threading.Event()
        rows = [{"record": {"status": "ok"}, "result": {"fake": True}}]

        def slow_compute(spec, *, cache, **kwargs):
            time.sleep(0.5)
            cache.put(
                SWEEP_RESULT_KIND,
                result_cache_config("E7", spec.config_hash()),
                rows,
            )
            finished.set()
            return rows

        monkeypatch.setattr(
            "repro.serve.service.compute_experiment_rows", slow_compute
        )
        service = make_service(tmp_path, deadline=0.15, retry_after=1.0)
        with ServerThread(service) as server:
            timed_out = fetch(HOST, server.port, "/v1/result/E7?seed=0")
            assert timed_out.status == 503
            assert int(timed_out.headers["retry-after"]) >= 1
            # the request gave up; the job must finish and cache anyway
            assert finished.wait(timeout=10)
            retry = fetch(HOST, server.port, "/v1/result/E7?seed=0")
            assert retry.status == 200
            assert retry.json()["source"] == "cache"
        stats = counters(service)
        assert stats["serve.deadline_timeouts"] == 1
        assert stats["serve.compute_jobs"] == 1  # the retry was a pure hit
        assert stats["serve.responses.503"] == 1
        assert stats["serve.responses.200"] == 1


class TestAdmissionControl:
    def test_saturated_service_sheds_with_429(self, tmp_path):
        service = make_service(tmp_path, max_inflight=2)
        service._inflight = 2  # deterministic saturation
        response = respond(service, "/v1/experiments")
        assert response.status == 429
        # base retry_after is 2.0 with up to +25% anti-herd jitter, so
        # the integral header lands in [2, ceil(2.5)]
        assert 2 <= int(response.headers["Retry-After"]) <= 3
        assert b"saturated" in response.body
        assert counters(service)["serve.shed"] == 1

    def test_retry_after_jitter_is_bounded(self, tmp_path):
        service = make_service(tmp_path, max_inflight=1, retry_jitter=0.5)
        service._inflight = 1
        seen = set()
        for _ in range(32):
            response = respond(service, "/v1/experiments")
            assert response.status == 429
            seen.add(int(response.headers["Retry-After"]))
        # every value within [base, base * 1.5] rounded up...
        assert seen <= {2, 3}
        # ...and the spread actually spreads (herd de-synchronized)
        assert len(seen) == 2

    def test_zero_jitter_is_deterministic(self, tmp_path):
        service = make_service(tmp_path, max_inflight=1, retry_jitter=0.0)
        service._inflight = 1
        for _ in range(4):
            response = respond(service, "/v1/experiments")
            assert response.headers["Retry-After"] == "2"

    def test_health_answers_even_when_saturated(self, tmp_path):
        service = make_service(tmp_path, max_inflight=1)
        service._inflight = 1
        assert respond(service, "/healthz").status == 200
        assert respond(service, "/readyz").status == 200

    def test_shedding_over_tcp_under_load(self, tmp_path, monkeypatch):
        release = threading.Event()
        started = threading.Event()

        def slow_compute(spec, **kwargs):
            started.set()
            release.wait(timeout=10)
            return [{"record": {"status": "ok"}, "result": {}}]

        monkeypatch.setattr(
            "repro.serve.service.compute_experiment_rows", slow_compute
        )
        service = make_service(tmp_path, max_inflight=1)
        with ServerThread(service) as server:
            blocker = threading.Thread(
                target=lambda: fetch(
                    HOST, server.port, "/v1/result/E7?seed=0", timeout=30
                )
            )
            blocker.start()
            assert started.wait(timeout=10)
            shed = fetch(HOST, server.port, "/v1/result/E7?seed=1")
            release.set()
            blocker.join(timeout=30)
        assert shed.status == 429
        assert "retry-after" in shed.headers


class TestDrain:
    def test_drain_finishes_inflight_then_refuses(self, tmp_path, monkeypatch):
        started = threading.Event()

        def slow_compute(spec, **kwargs):
            started.set()
            time.sleep(0.3)
            return [{"record": {"status": "ok"}, "result": {"ok": True}}]

        monkeypatch.setattr(
            "repro.serve.service.compute_experiment_rows", slow_compute
        )
        service = make_service(tmp_path)
        server = ServerThread(service).start()
        results = []
        client = threading.Thread(
            target=lambda: results.append(
                fetch(HOST, server.port, "/v1/result/E7?seed=0", timeout=30)
            )
        )
        client.start()
        assert started.wait(timeout=10)
        port = server.port
        server.drain()  # waits for the in-flight request
        client.join(timeout=30)
        assert [r.status for r in results] == [200]
        with pytest.raises(OSError):
            fetch(HOST, port, "/healthz", timeout=2)
        assert counters(service)["serve.drains"] == 1

    def test_draining_service_rejects_but_stays_alive(self, tmp_path):
        service = make_service(tmp_path)
        service.draining = True
        assert respond(service, "/healthz").status == 200
        ready = respond(service, "/readyz")
        assert ready.status == 503
        rejected = respond(service, "/v1/experiments")
        assert rejected.status == 503
        assert "Retry-After" in rejected.headers


class TestContract:
    def test_status_codes_for_bad_input(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            port = server.port
            assert fetch(HOST, port, "/nope").status == 404
            assert fetch(HOST, port, "/v1/result/E99?seed=0").status == 404
            assert fetch(HOST, port, "/v1/result/E7?seed=zebra").status == 400
            assert fetch(HOST, port, "/v1/result/E7?set=bogus=1").status == 400
            assert fetch(HOST, port, "/v1/corpus?preset=medium").status == 400
            post = fetch(HOST, port, "/v1/result/E7", method="POST")
            assert post.status == 405
            assert post.headers["allow"] == "GET, HEAD"

    def test_head_request_omits_body(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            response = fetch(HOST, server.port, "/healthz", method="HEAD")
            assert response.status == 200
            assert response.body == b""
            assert int(response.headers["content-length"]) > 0

    def test_garbage_bytes_get_400_not_a_dead_server(self, tmp_path):
        import socket

        service = make_service(tmp_path)
        with ServerThread(service) as server:
            with socket.create_connection((HOST, server.port), timeout=5) as s:
                s.sendall(b"garbage that is not http\r\n\r\n")
                reply = s.recv(4096)
            assert reply.startswith(b"HTTP/1.1 400")
            # and the server still serves the next client
            assert fetch(HOST, server.port, "/healthz").status == 200

    def test_metrics_endpoint_reports_serve_counters(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            fetch(HOST, server.port, "/v1/experiments")
            snapshot = fetch(HOST, server.port, "/metrics").json()
        assert snapshot["counters"]["serve.requests"] >= 2
        assert snapshot["counters"]["serve.responses.200"] >= 1
