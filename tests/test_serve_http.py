"""Tests for repro.serve.http — the framing layer.

Framing must parse every request the service's own client emits,
reject hostile or broken input with BadRequest (never an uncaught
exception), and render responses that honor the HEAD/304 body rules.
"""

import asyncio

import pytest

from repro.serve.http import (
    MAX_HEAD_BYTES,
    BadRequest,
    Response,
    json_response,
    read_request,
)


def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_simple_get(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"

    def test_query_parsing_keeps_repeats(self):
        request = _parse(
            b"GET /v1/result/E7?seed=3&set=a=1&set=b=2 HTTP/1.1\r\n\r\n"
        )
        assert request.param("seed") == "3"
        assert request.params("set") == ["a=1", "b=2"]
        assert request.param("absent") is None
        assert request.param("absent", "dflt") == "dflt"

    def test_method_uppercased_and_header_names_lowercased(self):
        request = _parse(b"get / HTTP/1.0\r\nIf-None-Match: \"abc\"\r\n\r\n")
        assert request.method == "GET"
        assert request.headers["if-none-match"] == '"abc"'

    def test_percent_decoded_path(self):
        request = _parse(b"GET /a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/a b"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"NOT HTTP\r\n\r\n")

    def test_non_http_version_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"GET / SPDY/3\r\n\r\n")

    def test_header_without_colon_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n")

    def test_eof_inside_header_block_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"GET / HTTP/1.1\r\nHost: x\r\n")

    def test_oversized_head_raises(self):
        filler = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"y" * 1024) for i in range(40)
        )
        assert len(filler) > MAX_HEAD_BYTES
        with pytest.raises(BadRequest):
            _parse(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")

    def test_oversized_single_line_raises(self):
        with pytest.raises(BadRequest):
            _parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")


class TestResponse:
    def test_json_response_roundtrips(self):
        import json

        response = json_response(200, {"b": 2, "a": 1})
        assert json.loads(response.body) == {"a": 1, "b": 2}
        assert response.body.endswith(b"\n")

    def test_encode_carries_status_and_length(self):
        response = json_response(429, {"error": "x"}, {"Retry-After": "2"})
        wire = response.encode()
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 2" in head
        assert b"Connection: close" in head
        assert f"Content-Length: {len(body)}".encode() in head

    def test_head_only_drops_body_keeps_length(self):
        response = json_response(200, {"big": "x" * 100})
        wire = response.encode(head_only=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert body == b""
        assert f"Content-Length: {len(response.body)}".encode() in head

    def test_304_never_carries_a_body(self):
        response = Response(status=304, headers={"ETag": '"h"'})
        wire = response.encode()
        assert wire.endswith(b"\r\n\r\n")
        assert b"ETag" in wire
