"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bibliometrics.metrics import gini, hhi, lorenz_curve, top_k_share
from repro.netsim.community.congestion import (
    allocate_fifo,
    allocate_maxmin,
    allocate_static_cap,
    jain_fairness,
)
from repro.qualcoding.agreement import (
    cohens_kappa,
    krippendorff_alpha,
    percent_agreement,
)
from repro.textmine.similarity import jaccard_similarity
from repro.textmine.tokenize import ngrams, sentences, word_tokens

nonneg_values = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=50,
)
positive_values = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
    min_size=1, max_size=50,
)
labels = st.lists(st.sampled_from("abc"), min_size=1, max_size=100)


class TestMetricsProperties:
    @given(nonneg_values)
    def test_gini_bounded(self, values):
        assert -1e-9 <= gini(values) <= 1.0

    @given(positive_values, st.floats(min_value=1.1, max_value=10.0))
    def test_gini_scale_invariant(self, values, scale):
        assert math.isclose(
            gini(values), gini([v * scale for v in values]),
            rel_tol=1e-6, abs_tol=1e-9,
        )

    @given(nonneg_values)
    def test_lorenz_endpoints_and_monotone(self, values):
        points = lorenz_curve(values)
        assert points[0] == (0.0, 0.0)
        assert math.isclose(points[-1][0], 1.0)
        assert math.isclose(points[-1][1], 1.0)
        shares = [s for _, s in points]
        assert all(a <= b + 1e-9 for a, b in zip(shares, shares[1:]))

    @given(nonneg_values)
    def test_hhi_bounded(self, values):
        value = hhi(values)
        assert 1.0 / len(values) - 1e-9 <= value <= 1.0 + 1e-9

    @given(nonneg_values, st.integers(min_value=1, max_value=60))
    def test_top_k_share_monotone_in_k(self, values, k):
        assert top_k_share(values, k) <= top_k_share(values, k + 1) + 1e-12

    @given(nonneg_values)
    def test_jain_bounded(self, values):
        value = jain_fairness(values)
        assert 1.0 / len(values) - 1e-9 <= value <= 1.0 + 1e-9


class TestAgreementProperties:
    @given(labels)
    def test_self_agreement_perfect(self, ratings):
        assert percent_agreement(ratings, ratings) == 1.0
        assert cohens_kappa(ratings, ratings) == 1.0

    @given(labels, labels)
    def test_kappa_never_exceeds_one(self, a, b):
        n = min(len(a), len(b))
        kappa = cohens_kappa(a[:n], b[:n])
        assert kappa <= 1.0 + 1e-12

    @given(labels)
    def test_alpha_perfect_on_duplicated_raters(self, ratings):
        rows = [(label, label) for label in ratings]
        assert krippendorff_alpha(rows) == 1.0

    @given(labels, labels)
    def test_kappa_symmetric(self, a, b):
        n = min(len(a), len(b))
        assert math.isclose(
            cohens_kappa(a[:n], b[:n]), cohens_kappa(b[:n], a[:n]),
            abs_tol=1e-12,
        )


demand_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=30,
)
capacities = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


class TestAllocatorProperties:
    @given(demand_lists, capacities)
    def test_fifo_feasible(self, demands, capacity):
        result = allocate_fifo(demands, capacity)
        assert sum(result.allocations) <= capacity + 1e-6
        for alloc, demand in zip(result.allocations, demands):
            assert -1e-9 <= alloc <= demand + 1e-9

    @given(demand_lists, capacities)
    def test_static_cap_feasible(self, demands, capacity):
        result = allocate_static_cap(demands, capacity)
        assert sum(result.allocations) <= capacity + 1e-6
        cap = capacity / len(demands)
        assert all(a <= cap + 1e-9 for a in result.allocations)

    @given(demand_lists, capacities)
    def test_maxmin_feasible_and_work_conserving(self, demands, capacity):
        result = allocate_maxmin(demands, capacity)
        total = sum(result.allocations)
        assert total <= capacity + 1e-6
        for alloc, demand in zip(result.allocations, demands):
            assert -1e-9 <= alloc <= demand + 1e-9
        # Work conserving: either all demand met or capacity exhausted.
        total_demand = sum(demands)
        assert (
            math.isclose(total, min(total_demand, capacity), abs_tol=1e-5)
        )

    @given(demand_lists, capacities)
    def test_maxmin_no_envy_for_unsatisfied(self, demands, capacity):
        # Any member whose demand is unmet receives at least as much as
        # every member with a smaller allocation... i.e. the unmet
        # members all sit at the common water level.
        result = allocate_maxmin(demands, capacity)
        unmet = [
            alloc
            for alloc, demand in zip(result.allocations, demands)
            if alloc < demand - 1e-6
        ]
        if unmet:
            assert max(unmet) - min(unmet) < 1e-5


class TestTextProperties:
    @given(st.text(max_size=300))
    def test_sentences_cover_words(self, text):
        original_words = word_tokens(text)
        recovered = [
            w for sentence in sentences(text) for w in word_tokens(sentence)
        ]
        assert recovered == original_words

    @given(
        st.lists(st.text(alphabet="abc", min_size=1, max_size=4), max_size=20),
        st.integers(min_value=1, max_value=5),
    )
    def test_ngram_count(self, words, n):
        grams = ngrams(words, n)
        assert len(grams) == max(0, len(words) - n + 1)

    @given(
        st.sets(st.text(alphabet="abcde", min_size=1, max_size=3), max_size=10),
        st.sets(st.text(alphabet="abcde", min_size=1, max_size=3), max_size=10),
    )
    def test_jaccard_bounded_and_symmetric(self, a, b):
        value = jaccard_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(b, a)


class TestConsentProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),  # grant time
                st.integers(min_value=0, max_value=20),  # check offset
            ),
            min_size=1, max_size=10,
        ),
        st.integers(min_value=0, max_value=40),
    )
    def test_withdrawal_is_final(self, grants, withdraw_time):
        from repro.ethics.consent import ConsentRegistry
        registry = ConsentRegistry()
        for granted_at, _ in grants:
            registry.grant("p", {"interview"}, now=granted_at)
        registry.withdraw("p", now=withdraw_time)
        for t in range(withdraw_time, withdraw_time + 25):
            assert not registry.check("p", "interview", now=t)
