"""Tests for repro.netsim.transport.sim."""

import pytest

from repro.netsim.transport.sim import run_collapse_study, simulate_shared_link


class TestSimulation:
    def test_deterministic(self):
        a = simulate_shared_link("tahoe", ticks=150)
        b = simulate_shared_link("tahoe", ticks=150)
        assert a == b

    def test_underload_is_clean(self):
        result = simulate_shared_link(
            "fixed", n_flows=4, demand_per_flow=2, capacity=16, ticks=150
        )
        assert result.goodput == pytest.approx(0.5, abs=0.05)
        assert result.loss_rate == 0.0
        assert result.duplicate_share == 0.0

    def test_goodput_never_exceeds_capacity(self):
        for protocol in ("fixed", "tahoe", "reno"):
            result = simulate_shared_link(
                protocol, demand_per_flow=16, ticks=150
            )
            assert result.goodput <= 1.0 + 1e-9

    def test_overloaded_fixed_produces_duplicates(self):
        result = simulate_shared_link(
            "fixed", n_flows=8, demand_per_flow=8, capacity=16,
            window_size=24, ticks=200,
        )
        assert result.duplicate_share > 0.2
        assert result.goodput < 0.8

    def test_overloaded_tahoe_clean_goodput(self):
        result = simulate_shared_link(
            "tahoe", n_flows=8, demand_per_flow=8, capacity=16,
            window_size=1 << 10, ticks=300,
        )
        assert result.duplicate_share < 0.05
        assert result.goodput > 0.7

    def test_fairness_reported(self):
        result = simulate_shared_link("reno", ticks=200)
        assert 0.0 < result.fairness <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_shared_link("tahoe", n_flows=0)
        with pytest.raises(ValueError):
            simulate_shared_link("tahoe", ticks=10, warmup=10)


class TestCollapseStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return run_collapse_study(ticks=250)

    def test_grid_complete(self, results):
        assert len(results) == 15  # 3 protocols x 5 loads

    def test_collapse_shape(self, results):
        fixed = [r for r in results if r.protocol == "fixed"]
        at_capacity = next(r for r in fixed if r.offered_load == 1.0)
        overloaded = [r for r in fixed if r.offered_load > 1.0]
        assert all(r.goodput < at_capacity.goodput - 0.2 for r in overloaded)

    def test_aimd_plateau(self, results):
        for protocol in ("tahoe", "reno"):
            rows = [
                r for r in results
                if r.protocol == protocol and r.offered_load > 1.0
            ]
            assert all(r.goodput >= 0.7 for r in rows)

    def test_reno_dominates_tahoe(self, results):
        tahoe = {r.offered_load: r for r in results if r.protocol == "tahoe"}
        reno = {r.offered_load: r for r in results if r.protocol == "reno"}
        for load, reno_row in reno.items():
            assert reno_row.goodput >= tahoe[load].goodput - 0.02
