"""Tests for repro.ethics.consent."""

import pytest

from repro.ethics.consent import ConsentError, ConsentRegistry


@pytest.fixture
def registry():
    r = ConsentRegistry()
    r.grant("p1", {"interview", "recording"}, now=0)
    r.grant("p2", {"interview"}, now=0, expires_at=5)
    return r


class TestGrant:
    def test_check_covers_scope(self, registry):
        assert registry.check("p1", "interview", now=1)
        assert registry.check("p1", "recording", now=1)

    def test_uncovered_scope_fails(self, registry):
        assert not registry.check("p1", "publication-quote", now=1)

    def test_unknown_participant_fails(self, registry):
        assert not registry.check("ghost", "interview", now=1)

    def test_not_yet_granted(self, registry):
        registry.grant("p3", {"interview"}, now=10)
        assert not registry.check("p3", "interview", now=5)

    def test_empty_scopes_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.grant("p4", set(), now=0)

    def test_expiry_before_grant_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.grant("p4", {"x"}, now=5, expires_at=3)

    def test_grants_accumulate(self, registry):
        registry.grant("p1", {"publication-quote"}, now=2)
        assert registry.check("p1", "publication-quote", now=3)
        assert registry.check("p1", "interview", now=3)


class TestExpiry:
    def test_expires(self, registry):
        assert registry.check("p2", "interview", now=5)
        assert not registry.check("p2", "interview", now=6)


class TestWithdrawal:
    def test_withdrawal_kills_all_scopes(self, registry):
        registry.withdraw("p1", now=3)
        assert not registry.check("p1", "interview", now=3)
        assert not registry.check("p1", "recording", now=4)

    def test_check_before_withdrawal_time(self, registry):
        registry.withdraw("p1", now=3)
        assert registry.check("p1", "interview", now=2)

    def test_withdraw_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.withdraw("ghost", now=0)

    def test_withdraw_returns_count(self, registry):
        registry.grant("p1", {"survey"}, now=1)
        assert registry.withdraw("p1", now=2) == 2


class TestRequire:
    def test_passes_in_force(self, registry):
        registry.require("p1", "interview", now=1)

    def test_raises_otherwise(self, registry):
        with pytest.raises(ConsentError):
            registry.require("p1", "survey", now=1)


class TestAudit:
    def test_snapshot(self, registry):
        registry.withdraw("p1", now=2)
        audit = registry.audit(now=10)
        assert audit["p1"]["withdrawn_records"] == 1
        assert audit["p1"]["live_scopes"] == []
        assert audit["p2"]["expired_records"] == 1

    def test_usable_participants(self, registry):
        assert registry.usable_participants("interview", now=1) == ["p1", "p2"]
        assert registry.usable_participants("interview", now=7) == ["p1"]
