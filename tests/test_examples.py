"""Smoke tests: every example script must run clean end to end.

Examples are the first thing a new user executes; a broken example is a
broken front door.  Each runs in a subprocess with the repo's src/ on
the path and must exit 0 with non-trivial output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert len(result.stdout) > 200, f"{script.name} produced little output"
    assert "Traceback" not in result.stderr
