"""Tests for repro.surveys.instrument."""

import pytest

from repro.surveys.instrument import Instrument, LikertScale, Question, Response


class TestLikertScale:
    def test_validate_accepts_range(self):
        scale = LikertScale(points=5)
        assert scale.validate(3) == 3

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LikertScale(points=5).validate(6)

    def test_rejects_non_int(self):
        with pytest.raises(ValueError):
            LikertScale().validate(3.5)
        with pytest.raises(ValueError):
            LikertScale().validate(True)

    def test_midpoint(self):
        assert LikertScale(points=7).midpoint == 4.0

    def test_labels_must_match_points(self):
        with pytest.raises(ValueError):
            LikertScale(points=3, labels=("a", "b"))

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            LikertScale(points=1)


class TestQuestion:
    def test_likert_gets_default_scale(self):
        question = Question("q1", "Prompt")
        assert question.scale is not None

    def test_choice_requires_choices(self):
        with pytest.raises(ValueError):
            Question("q1", "Prompt", kind="single_choice")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Question("q1", "Prompt", kind="essay")

    def test_single_choice_validation(self):
        question = Question("q", "p", kind="single_choice", choices=("a", "b"))
        assert question.validate("a") == "a"
        with pytest.raises(ValueError):
            question.validate("c")

    def test_multi_choice_normalizes(self):
        question = Question("q", "p", kind="multi_choice", choices=("a", "b", "c"))
        assert question.validate(["c", "a", "c"]) == ("a", "c")
        with pytest.raises(ValueError):
            question.validate(["z"])
        with pytest.raises(ValueError):
            question.validate("a")  # not a collection

    def test_numeric_validation(self):
        question = Question("q", "p", kind="numeric")
        assert question.validate(3) == 3.0
        with pytest.raises(ValueError):
            question.validate("3")

    def test_free_text_validation(self):
        question = Question("q", "p", kind="free_text")
        assert question.validate("hello") == "hello"
        with pytest.raises(ValueError):
            question.validate(42)


class TestInstrument:
    @pytest.fixture
    def instrument(self):
        inst = Instrument("ops")
        inst.add(Question("q1", "Likert prompt"))
        inst.add(Question("q2", "Optional", kind="free_text", required=False))
        return inst

    def test_duplicate_question_rejected(self, instrument):
        with pytest.raises(ValueError):
            instrument.add(Question("q1", "dup"))

    def test_order_preserved(self, instrument):
        assert instrument.question_ids() == ["q1", "q2"]

    def test_likert_ids(self, instrument):
        assert instrument.likert_ids() == ["q1"]

    def test_missing_required_rejected(self, instrument):
        with pytest.raises(ValueError):
            instrument.validate_response({"q2": "x"})

    def test_optional_may_be_omitted(self, instrument):
        assert instrument.validate_response({"q1": 4}) == {"q1": 4}

    def test_unknown_question_rejected(self, instrument):
        with pytest.raises(ValueError):
            instrument.validate_response({"q1": 4, "zz": 1})


class TestResponse:
    def test_create_validates(self):
        inst = Instrument("s", [Question("q1", "p")])
        response = Response.create("r1", inst, {"q1": 5}, {"stratum": "x"})
        assert response.answer("q1") == 5
        assert response.metadata["stratum"] == "x"

    def test_answer_default(self):
        inst = Instrument("s", [Question("q1", "p")])
        response = Response.create("r1", inst, {"q1": 1})
        assert response.answer("missing", default=-1) == -1
