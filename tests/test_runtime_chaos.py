"""Chaos tests: the parallel runtime under process and disk faults.

The contract under test extends ``test_runtime_parallel``'s determinism
contract to the crash domain: a worker killed mid-experiment must not
take the suite down, must not change the fingerprint of anything that
survived, and must leave structured evidence (crash records, counters,
spans) rather than a bare ``BrokenProcessPool``.  Disk-level faults
(ENOSPC, killed writers) must leave the artifact cache and checkpoint
files either complete or absent — never torn.

Worker-only fault modes (``kill``) pass through in the parent process,
which is what makes the 1-vs-N fingerprint comparisons here possible:
the same injector config runs clean sequentially and lethal in a pool.
"""

import errno
import os
import time

import pytest

from repro.errors import WorkerCrashError
from repro.io.artifacts import ArtifactCache
from repro.io.jsonl import read_jsonl, salvage_jsonl_tail
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracing import Tracer, use_tracer
from repro.runtime.faultinject import FaultInjector, use_fault_injector
from repro.runtime.runner import SuiteReport, SuiteRunner

#: Cheap real experiments (no shared corpus, sub-second each).
CHEAP_IDS = ["E4", "E5", "E6", "E10"]


def _run(ids, workers, injector=None, **runner_kwargs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        report = SuiteRunner(
            workers=workers, fault_injector=injector, **runner_kwargs
        ).run_all(ids, seed=0, fast=True)
    return report, tracer, metrics


def _counters(metrics):
    return metrics.snapshot()["counters"]


def _kill_injector(times=None):
    injector = FaultInjector(seed=7)
    kwargs = {} if times is None else {"times": times}
    injector.register("experiment:E5", mode="kill", **kwargs)
    return injector


def _without(report, experiment_id):
    """A report restricted to the runs that did not involve ``experiment_id``."""
    return SuiteReport(records=[
        r for r in report.records if r.experiment_id != experiment_id
    ])


class TestWorkerKill:
    def test_kill_requeues_and_matches_sequential(self):
        """A SIGKILL'd worker rebuilds the pool; the requeued experiment
        succeeds and the suite fingerprint equals the sequential run's."""
        par, _, par_metrics = _run(CHEAP_IDS, 4, _kill_injector(times=1))
        seq, _, _ = _run(CHEAP_IDS, 1, _kill_injector(times=1))
        assert par.ok and seq.ok
        assert par.fingerprint() == seq.fingerprint()
        counters = _counters(par_metrics)
        assert counters["runner.pool_rebuilds"] >= 1
        assert counters["runner.worker_crashes"] >= 1
        e5 = {r.experiment_id: r for r in par}["E5"]
        assert e5.status == "ok" and e5.crash is None

    def test_poison_task_quarantined_with_evidence(self):
        """A task that kills every worker it meets exhausts its crash
        budget and lands a structured WorkerCrashError record."""
        report, tracer, metrics = _run(
            CHEAP_IDS, 4, _kill_injector(),
            max_worker_crashes=2, degrade=False,
        )
        e5 = {r.experiment_id: r for r in report}["E5"]
        assert e5.status == "error"
        assert e5.error_type == "WorkerCrashError"
        assert e5.crash is not None
        assert e5.crash["quarantined"] is True
        assert e5.crash["attempt"] == 2
        assert "crash budget exhausted" in e5.crash["reason"]
        # the worker died by signal; the record says so
        assert e5.crash["exit_code"] < 0
        assert e5.crash["exit_signal"] is not None
        counters = _counters(metrics)
        assert counters["runner.quarantined"] == 1
        assert counters["runner.worker_crashes"] >= 2
        names = [s.name for s in tracer.finished]
        assert "worker_crash" in names and "quarantine" in names

    def test_survivors_fingerprint_equals_sequential(self):
        """Quarantining the poison task must not perturb its siblings."""
        par, _, _ = _run(
            CHEAP_IDS, 4, _kill_injector(),
            max_worker_crashes=2, degrade=False,
        )
        seq, _, _ = _run(CHEAP_IDS, 1)
        assert not par.ok  # E5 was quarantined
        assert (
            _without(par, "E5").fingerprint()
            == _without(seq, "E5").fingerprint()
        )

    def test_keep_going_false_raises_worker_crash_error(self):
        injector = _kill_injector()
        with pytest.raises(WorkerCrashError) as excinfo:
            SuiteRunner(
                workers=4, keep_going=False, fault_injector=injector,
                max_worker_crashes=1, degrade=False,
            ).run_all(CHEAP_IDS, seed=0, fast=True)
        assert excinfo.value.experiment_id == "E5"
        assert excinfo.value.crash_info()["quarantined"] is True


class TestDegradation:
    def test_repeated_pool_breakage_degrades_to_in_process(self):
        """Past the rebuild budget the remaining tasks run in-process —
        where worker-only kill faults cannot fire, so E5 completes."""
        report, tracer, metrics = _run(
            CHEAP_IDS, 4, _kill_injector(),
            max_pool_rebuilds=1,
        )
        assert report.ok
        e5 = {r.experiment_id: r for r in report}["E5"]
        assert e5.status == "ok"
        counters = _counters(metrics)
        assert counters["runner.degraded"] == 1
        assert any(s.name == "degrade" for s in tracer.finished)

    def test_no_degrade_keeps_rebuilding_until_quarantine(self):
        report, _, metrics = _run(
            CHEAP_IDS, 4, _kill_injector(),
            max_pool_rebuilds=1, max_worker_crashes=3, degrade=False,
        )
        e5 = {r.experiment_id: r for r in report}["E5"]
        assert e5.status == "error" and e5.crash["attempt"] == 3
        assert "runner.degraded" not in _counters(metrics)

    def test_degraded_completion_is_a_complete_report(self):
        """keep_going + degradation always ends with every experiment
        accounted for, in suite order."""
        report, _, _ = _run(
            CHEAP_IDS, 4, _kill_injector(), max_pool_rebuilds=1,
        )
        assert [r.experiment_id for r in report] == CHEAP_IDS


class TestHeartbeat:
    def test_wedged_worker_is_killed_and_blamed(self):
        """A worker that stops making progress past the heartbeat window
        is terminated and the hang is treated as a crash event."""
        injector = FaultInjector(seed=7)
        injector.register("experiment:E5", mode="hang", hang_seconds=60.0)
        report, _, metrics = _run(
            CHEAP_IDS, 2, injector,
            heartbeat_timeout=1.0, max_worker_crashes=1, degrade=False,
        )
        e5 = {r.experiment_id: r for r in report}["E5"]
        assert e5.status == "error"
        assert e5.error_type == "WorkerCrashError"
        assert "missed heartbeat" in e5.crash["reason"]
        assert _counters(metrics)["runner.quarantined"] == 1


class TestOomFault:
    def test_oom_burst_is_an_ordinary_failure(self):
        """An allocation burst raises MemoryError inside the worker; the
        in-worker runner records it and the suite completes."""
        injector = FaultInjector(seed=7)
        injector.register(
            "experiment:E5", mode="oom", oom_bytes=16 * 1024 * 1024,
        )
        report, _, _ = _run(CHEAP_IDS, 4, injector)
        e5 = {r.experiment_id: r for r in report}["E5"]
        assert e5.status == "error"
        assert e5.error_type == "MemoryError"
        assert e5.crash is None  # the worker survived
        assert [r.experiment_id for r in report] == CHEAP_IDS


class TestEnospcArtifacts:
    def _cache(self, tmp_path):
        return ArtifactCache(tmp_path / "cache", sweep=False)

    def test_enospc_leaves_no_partial_entry(self, tmp_path):
        cache = self._cache(tmp_path)
        injector = FaultInjector(seed=7)
        injector.register("artifacts:put", mode="enospc")
        with use_fault_injector(injector):
            with pytest.raises(OSError) as excinfo:
                cache.put("rows", {"n": 3}, [{"i": i} for i in range(3)])
        assert excinfo.value.errno == errno.ENOSPC
        assert list(cache.root.rglob("*.tmp")) == []
        assert list(cache.root.rglob("*.jsonl")) == []
        assert cache.get("rows", {"n": 3}) is None

    def test_write_succeeds_once_space_returns(self, tmp_path):
        cache = self._cache(tmp_path)
        injector = FaultInjector(seed=7)
        injector.register("artifacts:put", mode="enospc", times=1)
        with use_fault_injector(injector):
            with pytest.raises(OSError):
                cache.put("rows", {"n": 2}, [{"i": 0}, {"i": 1}])
            cache.put("rows", {"n": 2}, [{"i": 0}, {"i": 1}])
        assert [r["i"] for r in cache.get("rows", {"n": 2})] == [0, 1]

    def test_enospc_at_write_jsonl_unlinks_temp(self, tmp_path):
        """The deeper injection point (inside write_jsonl, after the
        temp file exists) exercises the crash-cleanup unlink."""
        cache = self._cache(tmp_path)
        injector = FaultInjector(seed=7)
        injector.register("io:write_jsonl", mode="enospc")
        with use_fault_injector(injector):
            with pytest.raises(OSError):
                cache.put("rows", {"n": 1}, [{"i": 0}])
        assert list(cache.root.rglob("*.tmp")) == []


class TestOrphanSweep:
    def test_construction_sweeps_stale_tmp_files(self, tmp_path):
        root = tmp_path / "cache"
        (root / "rows").mkdir(parents=True)
        stale = root / "rows" / "deadbeef.jsonl.abc123.tmp"
        stale.write_text("{\"torn\":")
        old = time.time() - 3600.0
        os.utime(stale, (old, old))
        fresh = root / "rows" / "cafef00d.jsonl.def456.tmp"
        fresh.write_text("{\"live\":")
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            ArtifactCache(root)
        assert not stale.exists()
        assert fresh.exists()  # may belong to a live writer
        assert _counters(metrics)["artifacts.orphans_swept"] == 1

    def test_zero_grace_sweep_reaps_everything(self, tmp_path):
        """The post-crash sweep: every pool writer is dead, so even
        fresh temp files are orphans."""
        root = tmp_path / "cache"
        (root / "rows").mkdir(parents=True)
        fresh = root / "rows" / "cafef00d.jsonl.def456.tmp"
        fresh.write_text("{\"dead\":")
        cache = ArtifactCache(root, sweep=False)
        assert fresh.exists()
        assert cache.sweep_orphans(max_age_seconds=0.0) == 1
        assert not fresh.exists()

    def test_sweep_spares_real_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache", sweep=False)
        cache.put("rows", {"n": 1}, [{"i": 0}])
        assert cache.sweep_orphans(max_age_seconds=0.0) == 0
        assert cache.get("rows", {"n": 1}) is not None


class TestCheckpointSalvage:
    def test_salvage_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": ')
        assert salvage_jsonl_tail(path) == "truncated"
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]
        assert path.read_text().endswith("\n")

    def test_salvage_closes_complete_unterminated_record(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}')
        assert salvage_jsonl_tail(path) == "closed"
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_salvage_noop_cases(self, tmp_path):
        path = tmp_path / "data.jsonl"
        assert salvage_jsonl_tail(path) is None  # absent
        path.write_text("")
        assert salvage_jsonl_tail(path) is None  # empty
        path.write_text('{"a": 1}\n')
        assert salvage_jsonl_tail(path) is None  # healthy
        assert list(read_jsonl(path)) == [{"a": 1}]

    def test_resume_salvages_hand_truncated_checkpoint(self, tmp_path):
        """Regression: a checkpoint torn mid-record by a killed writer
        must resume cleanly — complete records kept, the torn one
        re-run, subsequent appends not concatenated onto the damage."""
        checkpoint = tmp_path / "suite.jsonl"
        first, _, _ = _run(CHEAP_IDS, 1, checkpoint=str(checkpoint))
        assert first.ok
        # Tear the final record the way SIGKILL mid-append does: the
        # last line survives only up to its midpoint, no newline.
        lines = checkpoint.read_bytes().splitlines(keepends=True)
        torn = lines[-1][: len(lines[-1]) // 2].rstrip(b"\n")
        checkpoint.write_bytes(b"".join(lines[:-1]) + torn)
        resumed, _, metrics = _run(CHEAP_IDS, 1, checkpoint=str(checkpoint))
        assert resumed.ok
        counters = _counters(metrics)
        assert counters["runner.checkpoint_salvaged"] == 1
        assert counters["runner.checkpoint_hits"] == len(CHEAP_IDS) - 1
        by_id = {r.experiment_id: r for r in resumed}
        assert by_id[CHEAP_IDS[-1]].from_checkpoint is False
        # the file healed: every line parses, the re-run was appended
        rows = list(read_jsonl(checkpoint))
        assert rows[-1]["experiment_id"] == CHEAP_IDS[-1]
        assert first.fingerprint() == resumed.fingerprint()

    def test_resume_closes_record_missing_only_its_newline(self, tmp_path):
        checkpoint = tmp_path / "suite.jsonl"
        first, _, _ = _run(CHEAP_IDS, 1, checkpoint=str(checkpoint))
        checkpoint.write_bytes(checkpoint.read_bytes().rstrip(b"\n"))
        resumed, _, metrics = _run(CHEAP_IDS, 1, checkpoint=str(checkpoint))
        assert resumed.ok
        counters = _counters(metrics)
        assert counters["runner.checkpoint_salvaged"] == 1
        # the record survived intact, so every experiment replays
        assert counters["runner.checkpoint_hits"] == len(CHEAP_IDS)
        assert all(r.from_checkpoint for r in resumed)


class TestCrashReport:
    """The obs-report side: crash evidence renders from trace spans."""

    def _span(self, name, span_id, **attributes):
        return {
            "span_id": span_id, "parent_id": None, "name": name,
            "start": 0.0, "end": 1.0, "duration": 1.0, "status": "ok",
            "attributes": attributes,
        }

    def test_crash_breakdown_from_spans(self):
        from repro.obs.report import build_report

        spans = [
            self._span("suite", 1, experiments=2),
            self._span("worker_crash", 2, experiment_id="E5",
                       exit_code=-9, exit_signal="SIGKILL", crashes=1,
                       reason="worker process died"),
            self._span("worker_crash", 3, experiment_id="E5",
                       exit_code=-9, exit_signal="SIGKILL", crashes=2,
                       reason="worker process died"),
            self._span("pool_rebuild", 4, rebuilds=1, reason="x"),
            self._span("pool_rebuild", 5, rebuilds=2, reason="x"),
            self._span("quarantine", 6, experiment_id="E5",
                       exit_code=-9, exit_signal="SIGKILL", crashes=2),
        ]
        crashes = build_report(spans)["worker_crashes"]
        assert crashes["events"] == 2
        assert crashes["causes"] == [
            {"experiment_id": "E5", "cause": "SIGKILL", "crashes": 2}
        ]
        assert crashes["quarantined"][0]["experiment_id"] == "E5"
        assert crashes["pool_rebuilds"] == 2
        assert crashes["degraded"] is False

    def test_render_includes_quarantine_table(self):
        from repro.obs.report import render_report

        spans = [
            self._span("worker_crash", 1, experiment_id="E5",
                       exit_code=-9, exit_signal="SIGKILL", crashes=1,
                       reason="worker process died"),
            self._span("quarantine", 2, experiment_id="E5",
                       exit_code=-9, exit_signal="SIGKILL", crashes=1),
        ]
        text = render_report(spans)
        assert "worker crashes" in text
        assert "quarantined poison tasks" in text
        assert "SIGKILL" in text

    def test_clean_trace_renders_no_crash_section(self):
        from repro.obs.report import render_report

        text = render_report([self._span("suite", 1)])
        assert "worker crashes" not in text


class TestFaultInjectorModes:
    """Unit coverage for the new process/disk fault modes."""

    def test_worker_only_kill_passes_through_in_parent(self):
        injector = FaultInjector(seed=7)
        injector.register("p", mode="kill")
        injector.call("p", lambda: 41)  # does not kill this process
        assert injector.call("p", lambda: 41) == 41

    def test_enospc_mode_raises_oserror(self):
        injector = FaultInjector(seed=7)
        injector.register("p", mode="enospc", times=1)
        with pytest.raises(OSError) as excinfo:
            injector.check("p")
        assert excinfo.value.errno == errno.ENOSPC
        injector.check("p")  # budget spent: passes

    def test_oom_mode_raises_memory_error(self):
        injector = FaultInjector(seed=7)
        injector.register("p", mode="oom", oom_bytes=1024, times=1)
        with pytest.raises(MemoryError):
            injector.check("p")
        injector.check("p")

    def test_specs_round_trip_new_fields(self):
        injector = FaultInjector(seed=7)
        injector.register("p", mode="oom", oom_bytes=2048)
        injector.register("q", mode="kill", kill_signal=15)
        rebuilt = FaultInjector.from_specs(injector.export_specs(), seed=7)
        specs = {spec["point"]: spec for spec in rebuilt.export_specs()}
        assert specs["p"]["oom_bytes"] == 2048
        assert specs["q"]["kill_signal"] == 15
