"""Tests for the shared-corpus cache (repro.experiments._corpus).

Covers the explicit two-level cache that replaced ``lru_cache`` corpus
pinning: in-memory LRU behavior, ``clear_corpus_cache`` (memory and
disk), the on-disk artifact-cache path, and — critical for parallel
determinism — serialization roundtrip fidelity: a corpus loaded from
the cache must be indistinguishable from the one that was generated.
"""

import json

import pytest

from repro.bibliometrics.synthgen import SyntheticCorpusConfig, generate_corpus
from repro.experiments import _corpus
from repro.experiments._corpus import (
    CORPUS_ARTIFACT_KIND,
    clear_corpus_cache,
    configure_corpus_cache,
    corpus_cache_dir,
    shared_corpus,
)


@pytest.fixture(autouse=True)
def isolated_corpus_state():
    """Save and restore the module's memory cache and disk setting."""
    saved_memory = dict(_corpus._memory)
    saved_dir = corpus_cache_dir()
    _corpus._memory.clear()
    yield
    configure_corpus_cache(saved_dir)
    _corpus._memory.clear()
    _corpus._memory.update(saved_memory)


@pytest.fixture
def tiny_generator(monkeypatch):
    """Replace the real generator with a tiny, counted one."""
    calls = []
    tiny_config = SyntheticCorpusConfig(
        start_year=2023, end_year=2024, seed=1, authors_per_venue_pool=8
    )

    def fake_generate(config):
        calls.append(config)
        return generate_corpus(tiny_config)

    monkeypatch.setattr(_corpus, "generate_corpus", fake_generate)
    return calls


class TestRoundtripFidelity:
    def test_serialize_deserialize_is_lossless(self):
        config = SyntheticCorpusConfig(
            start_year=2022, end_year=2024, seed=5, authors_per_venue_pool=10
        )
        corpus, truth = generate_corpus(config)
        # through JSON, exactly as the artifact cache stores it
        records = json.loads(json.dumps(_corpus._serialize(corpus, truth)))
        loaded_corpus, loaded_truth = _corpus._deserialize(records)
        assert loaded_corpus.to_records() == corpus.to_records()
        assert loaded_truth.human_methods == truth.human_methods
        assert loaded_truth.positionality == truth.positionality
        # iteration order (what experiments consume) is preserved too
        assert [p.paper_id for p in loaded_corpus] == [
            p.paper_id for p in corpus
        ]

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            _corpus._deserialize([{"table": "nope", "row": {}}])


class TestMemoryCache:
    def test_generated_once_per_key(self, tiny_generator):
        first = shared_corpus(seed=91, fast=True)
        second = shared_corpus(seed=91, fast=True)
        assert len(tiny_generator) == 1
        assert first is second

    def test_distinct_keys_generate_separately(self, tiny_generator):
        shared_corpus(seed=91, fast=True)
        shared_corpus(seed=92, fast=True)
        assert len(tiny_generator) == 2

    def test_clear_corpus_cache_forces_regeneration(self, tiny_generator):
        shared_corpus(seed=91, fast=True)
        clear_corpus_cache()
        shared_corpus(seed=91, fast=True)
        assert len(tiny_generator) == 2

    def test_lru_evicts_oldest(self, tiny_generator):
        for seed in range(91, 91 + _corpus._MEMORY_SLOTS + 1):
            shared_corpus(seed=seed, fast=True)
        generated = len(tiny_generator)
        shared_corpus(seed=91, fast=True)  # evicted -> regenerated
        assert len(tiny_generator) == generated + 1


class TestDiskCache:
    def test_disk_entry_survives_memory_clear(self, tiny_generator, tmp_path):
        configure_corpus_cache(str(tmp_path))
        shared_corpus(seed=91, fast=True)
        assert len(tiny_generator) == 1
        assert any((tmp_path / CORPUS_ARTIFACT_KIND).iterdir())
        clear_corpus_cache()  # memory only
        shared_corpus(seed=91, fast=True)
        assert len(tiny_generator) == 1  # loaded from disk, not regenerated

    def test_clear_disk_invalidates_artifacts(self, tiny_generator, tmp_path):
        configure_corpus_cache(str(tmp_path))
        shared_corpus(seed=91, fast=True)
        clear_corpus_cache(disk=True)
        shared_corpus(seed=91, fast=True)
        assert len(tiny_generator) == 2

    def test_cached_corpus_equals_generated(self, tiny_generator, tmp_path):
        configure_corpus_cache(str(tmp_path))
        generated_corpus, generated_truth = shared_corpus(seed=91, fast=True)
        clear_corpus_cache()
        loaded_corpus, loaded_truth = shared_corpus(seed=91, fast=True)
        assert loaded_corpus.to_records() == generated_corpus.to_records()
        assert loaded_truth.human_methods == generated_truth.human_methods

    def test_configure_returns_previous(self, tmp_path):
        previous = configure_corpus_cache(str(tmp_path))
        assert corpus_cache_dir() == str(tmp_path)
        assert configure_corpus_cache(previous) == str(tmp_path)
