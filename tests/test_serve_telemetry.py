"""Tests for the request-telemetry layer of repro.serve.service.

The contract tests in test_serve_service.py pin the degradation
ladder; these pin the observability riding on it — request ids,
route-templated metrics, status-class counters, the JSONL access log,
and the /metrics content negotiation.  Most cases drive
``ResultService.respond`` directly with synthetic requests; the
round-trip cases go over a live ServerThread.
"""

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.io.jsonl import read_jsonl
from repro.obs import Tracer, use_tracer
from repro.obs.metrics import MetricsRegistry, labeled
from repro.serve.client import fetch
from repro.serve.http import Request
from repro.serve.service import (
    ResultService,
    ServeConfig,
    ServerThread,
    route_template,
)

HOST = "127.0.0.1"


def make_service(tmp_path, **overrides):
    defaults = dict(cache_dir=str(tmp_path / "cache"), deadline=60.0)
    defaults.update(overrides)
    return ResultService(ServeConfig(**defaults), metrics=MetricsRegistry())


def respond(service, path, headers=None, method="GET"):
    split = urlsplit(path)
    request = Request(
        method=method,
        target=path,
        path=split.path,
        query=parse_qs(split.query, keep_blank_values=True),
        headers={k.lower(): v for k, v in (headers or {}).items()},
    )
    return asyncio.run(service.respond(request))


class TestRouteTemplate:
    def test_parameterized_routes_collapse(self):
        assert route_template("/v1/result/E7") == "/v1/result/{id}"
        assert route_template("/v1/result/E7/abc123") == "/v1/result/{id}/{hash}"
        assert route_template("/v1/grid/E7") == "/v1/grid/{id}"

    def test_fixed_routes_map_to_themselves(self):
        for path in ("/v1/experiments", "/v1/corpus", "/metrics",
                     "/healthz", "/readyz"):
            assert route_template(path) == path

    def test_hostile_paths_share_one_bucket(self):
        for path in ("/", "/etc/passwd", "/v1/whatever/x/y/z", "/v1/result",
                     "/metricsss"):
            assert route_template(path) == "(unmatched)"


class TestRequestId:
    def test_generated_when_absent(self, tmp_path):
        service = make_service(tmp_path)
        response = respond(service, "/healthz")
        request_id = response.headers["X-Request-Id"]
        assert len(request_id) == 16
        int(request_id, 16)  # hex

    def test_sane_client_id_round_trips(self, tmp_path):
        service = make_service(tmp_path)
        response = respond(
            service, "/healthz", headers={"X-Request-Id": "proxy-hop.1"}
        )
        assert response.headers["X-Request-Id"] == "proxy-hop.1"

    def test_hostile_client_id_replaced(self, tmp_path):
        service = make_service(tmp_path)
        for bad in ("x" * 65, "id with spaces", 'inject="1"', ""):
            response = respond(
                service, "/healthz", headers={"X-Request-Id": bad}
            )
            assert response.headers["X-Request-Id"] != bad

    def test_every_response_carries_an_id(self, tmp_path):
        service = make_service(tmp_path)
        for path in ("/healthz", "/nope", "/v1/result/bogus"):
            assert respond(service, path).headers.get("X-Request-Id")


class TestRequestMetrics:
    def test_status_class_counters(self, tmp_path):
        service = make_service(tmp_path)
        respond(service, "/healthz")
        respond(service, "/healthz")
        respond(service, "/nope")
        stats = service.metrics.snapshot()["counters"]
        assert stats["serve.responses.2xx"] == 2
        assert stats["serve.responses.200"] == 2
        assert stats["serve.responses.4xx"] == 1
        assert stats["serve.responses.404"] == 1
        assert stats["serve.requests"] == 3

    def test_per_route_per_status_histogram(self, tmp_path):
        service = make_service(tmp_path)
        respond(service, "/v1/result/E7?seed=0")
        histograms = service.metrics.snapshot()["histograms"]
        key = labeled(
            "serve.request_seconds", route="/v1/result/{id}", status=200
        )
        assert histograms[key]["count"] == 1
        assert histograms["serve.request_seconds"]["count"] == 1

    def test_serve_request_span_attributes(self, tmp_path):
        service = make_service(tmp_path)
        tracer = Tracer()
        with use_tracer(tracer):
            service.tracer = tracer
            respond(service, "/v1/result/E7?seed=0")
        spans = [s for s in tracer.finished if s.name == "serve.request"]
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["route"] == "/v1/result/{id}"
        assert attrs["status"] == 200
        assert attrs["source"] == "computed"
        assert attrs["config_hash"]
        assert attrs["request_id"]

    def test_uptime_gauge_set_on_metrics_scrape(self, tmp_path):
        service = make_service(tmp_path)
        respond(service, "/metrics")
        gauges = service.metrics.snapshot()["gauges"]
        assert gauges["serve.uptime_seconds"] >= 0.0
        assert gauges["serve.inflight"] == 0


class TestAccessLog:
    def test_rows_match_requests(self, tmp_path):
        log = tmp_path / "access.jsonl"
        service = make_service(tmp_path, access_log=str(log))
        ok = respond(service, "/v1/result/E7?seed=0")
        respond(service, "/nope", headers={"X-Request-Id": "probe-2"})
        rows = list(read_jsonl(log))
        assert len(rows) == 2
        first, second = rows
        assert first["route"] == "/v1/result/{id}"
        assert first["status"] == 200
        assert first["source"] == "computed"
        assert first["config_hash"] == ok.headers["X-Config-Hash"]
        assert first["request_id"] == ok.headers["X-Request-Id"]
        assert first["duration_ms"] >= 0
        assert second["request_id"] == "probe-2"
        assert second["status"] == 404
        assert second["config_hash"] is None

    def test_disabled_by_default(self, tmp_path):
        service = make_service(tmp_path)
        respond(service, "/healthz")
        assert not (tmp_path / "access.jsonl").exists()


class TestMetricsNegotiation:
    def test_default_stays_json(self, tmp_path):
        service = make_service(tmp_path)
        respond(service, "/healthz")
        response = respond(service, "/metrics")
        assert response.content_type.startswith("application/json")
        snapshot = json.loads(response.body)
        assert snapshot["counters"]["serve.requests"] >= 1

    def test_text_plain_gets_exposition(self, tmp_path):
        service = make_service(tmp_path)
        respond(service, "/healthz")
        response = respond(
            service, "/metrics", headers={"Accept": "text/plain"}
        )
        assert response.content_type.startswith("text/plain")
        text = response.body.decode("utf-8")
        assert "# TYPE serve_requests counter" in text
        assert "serve_uptime_seconds" in text

    def test_openmetrics_accept_gets_exposition(self, tmp_path):
        service = make_service(tmp_path)
        response = respond(
            service, "/metrics",
            headers={"Accept": "application/openmetrics-text"},
        )
        assert response.content_type.startswith("text/plain")

    def test_negotiation_over_real_tcp(self, tmp_path):
        service = make_service(tmp_path)
        with ServerThread(service) as server:
            hot = fetch(HOST, server.port, "/v1/result/E7?seed=0", timeout=120)
            assert hot.status == 200
            text = fetch(
                HOST, server.port, "/metrics",
                headers={"Accept": "text/plain"},
            )
            json_body = fetch(HOST, server.port, "/metrics")
        assert text.headers["content-type"].startswith("text/plain")
        body = text.body.decode("utf-8")
        assert 'serve_request_seconds_bucket' in body
        assert 'route="/v1/result/{id}"' in body
        assert json.loads(json_body.body)["counters"]["serve.requests"] >= 1


class TestCacheSourceHeader:
    def test_cold_then_hot_sources(self, tmp_path):
        service = make_service(tmp_path)
        cold = respond(service, "/v1/result/E7?seed=0")
        hot = respond(service, "/v1/result/E7?seed=0")
        assert cold.headers["X-Cache"] == "computed"
        assert hot.headers["X-Cache"] == "cache"

    def test_304_carries_config_hash(self, tmp_path):
        service = make_service(tmp_path)
        cold = respond(service, "/v1/result/E7?seed=0")
        etag = cold.headers["ETag"]
        not_modified = respond(
            service, "/v1/result/E7?seed=0",
            headers={"If-None-Match": etag},
        )
        assert not_modified.status == 304
        assert (
            not_modified.headers["X-Config-Hash"]
            == cold.headers["X-Config-Hash"]
        )
