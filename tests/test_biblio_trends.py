"""Tests for repro.bibliometrics.trends."""

import pytest

from repro.bibliometrics.corpus import Author, Corpus, Paper, Venue
from repro.bibliometrics.trends import adoption_series, venue_adoption_table

HUMAN_ABSTRACT = "We conducted semi-structured interviews with operators."
TECH_ABSTRACT = "We measure the network from many vantage points."


@pytest.fixture
def corpus():
    c = Corpus()
    c.add_venue(Venue("net", "Net", kind="networking"))
    c.add_venue(Venue("hci", "HCI", kind="hci"))
    c.add_author(Author("a", "A"))
    pid = 0
    for year in (2019, 2020, 2021):
        for _ in range(4):
            c.add_paper(Paper(f"n{pid}", "t", TECH_ABSTRACT, "net", year, ("a",)))
            pid += 1
        c.add_paper(Paper(f"h{pid}", "t", HUMAN_ABSTRACT, "hci", year, ("a",)))
        pid += 1
    # One human-methods networking paper in the last year.
    c.add_paper(Paper("nx", "t", HUMAN_ABSTRACT, "net", 2021, ("a",)))
    return c


class TestSeries:
    def test_points_per_year(self, corpus):
        series = adoption_series(corpus, "net")
        assert [p.year for p in series] == [2019, 2020, 2021]

    def test_shares(self, corpus):
        series = adoption_series(corpus, "net")
        assert series[0].share == 0.0
        assert series[-1].share == pytest.approx(1 / 5)

    def test_hci_always_full(self, corpus):
        series = adoption_series(corpus, "hci")
        assert all(p.share == 1.0 for p in series)

    def test_empty_year_share(self):
        from repro.bibliometrics.trends import AdoptionPoint
        assert AdoptionPoint("v", 2020, 0, 0).share == 0.0


class TestVenueTable:
    def test_sorted_by_share(self, corpus):
        table = venue_adoption_table(corpus)
        assert table[0]["venue_id"] == "hci"

    def test_early_late_split(self, corpus):
        table = venue_adoption_table(corpus)
        net = next(r for r in table if r["venue_id"] == "net")
        assert net["late_share"] > net["early_share"]

    def test_empty_corpus(self):
        assert venue_adoption_table(Corpus()) == []
