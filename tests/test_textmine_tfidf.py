"""Tests for repro.textmine.tfidf."""

import numpy as np
import pytest

from repro.textmine.tfidf import TfidfVectorizer

DOCS = [
    "mesh community network community",
    "datacenter fabric congestion",
    "community network governance",
]


class TestBuildMatrix:
    def test_counts(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        assert matrix.term_frequency("community", 0) == 2
        assert matrix.term_frequency("community", 1) == 0

    def test_document_frequency(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        assert matrix.document_frequency("community") == 2
        assert matrix.document_frequency("datacenter") == 1
        assert matrix.document_frequency("unknown") == 0

    def test_shape_properties(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        assert matrix.n_docs == 3
        assert matrix.n_terms == len(matrix.vocabulary)

    def test_top_terms(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        top = matrix.top_terms(0, k=1)
        assert top == [("community", 2)]

    def test_min_df_filters_rare_terms(self):
        matrix = TfidfVectorizer(min_df=2).build_matrix(DOCS)
        assert "community" in matrix.vocabulary
        assert "datacenter" not in matrix.vocabulary

    def test_max_vocabulary_caps_terms(self):
        vectorizer = TfidfVectorizer(max_vocabulary=2)
        matrix = vectorizer.build_matrix(DOCS)
        assert matrix.n_terms == 2
        # Highest-df terms survive.
        assert "community" in matrix.vocabulary


class TestTfidf:
    def test_rows_l2_normalized(self):
        weights = TfidfVectorizer().fit_transform(DOCS)
        norms = np.linalg.norm(weights, axis=1)
        assert np.allclose(norms, 1.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(DOCS)

    def test_unseen_terms_ignored(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(DOCS)
        row = vectorizer.transform(["zebra quark"])
        assert np.allclose(row, 0.0)

    def test_rare_term_outweighs_common_term(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(DOCS)
        row = vectorizer.transform(["datacenter community"])[0]
        names = vectorizer.feature_names()
        dc = row[names.index("datacenter")]
        community = row[names.index("community")]
        assert dc > community

    def test_deterministic(self):
        a = TfidfVectorizer().fit_transform(DOCS)
        b = TfidfVectorizer().fit_transform(DOCS)
        assert np.array_equal(a, b)

    def test_feature_names_ordered_by_column(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(DOCS)
        names = vectorizer.feature_names()
        assert names == sorted(names)


def reference_build_matrix(vectorizer, documents):
    """The pre-vectorization per-token dict-loop implementation, kept as
    the semantic oracle for the np-assembly rewrite."""
    from collections import Counter

    tokenized = [vectorizer.tokenizer(doc) for doc in documents]
    df_counter = Counter()
    for doc_tokens in tokenized:
        df_counter.update(set(doc_tokens))
    terms = sorted(t for t, df in df_counter.items() if df >= vectorizer.min_df)
    if (vectorizer.max_vocabulary is not None
            and len(terms) > vectorizer.max_vocabulary):
        terms = sorted(
            terms, key=lambda t: (-df_counter[t], t)
        )[: vectorizer.max_vocabulary]
        terms.sort()
    vocabulary = {term: i for i, term in enumerate(terms)}
    counts = np.zeros((len(documents), len(terms)), dtype=np.int64)
    for row, doc_tokens in enumerate(tokenized):
        for term, count in Counter(doc_tokens).items():
            column = vocabulary.get(term)
            if column is not None:
                counts[row, column] = count
    return vocabulary, counts


class TestVectorizedEquivalence:
    """The np-assembly paths must match the dict-loop reference exactly."""

    CORPUS = DOCS + [
        "",
        "community community community mesh",
        "zebra apple apple datacenter",
        "apple zebra unique-token",
        "the of and or",  # stopwords only
    ]

    @pytest.mark.parametrize("kwargs", [
        {},
        {"min_df": 2},
        {"max_vocabulary": 3},
        {"min_df": 2, "max_vocabulary": 2},
        {"max_vocabulary": 1000},
    ])
    def test_build_matrix_matches_reference(self, kwargs):
        vectorizer = TfidfVectorizer(**kwargs)
        matrix = vectorizer.build_matrix(self.CORPUS)
        ref_vocab, ref_counts = reference_build_matrix(vectorizer, self.CORPUS)
        assert matrix.vocabulary == ref_vocab
        assert np.array_equal(matrix.counts, ref_counts)
        assert matrix.counts.dtype == np.int64

    @pytest.mark.parametrize("kwargs", [{}, {"min_df": 2}, {"max_vocabulary": 3}])
    def test_transform_matches_reference_weighting(self, kwargs):
        from collections import Counter

        vectorizer = TfidfVectorizer(**kwargs).fit(self.CORPUS)
        unseen = ["mesh zzz-unseen datacenter", "", "apple apple community"]
        rows = np.zeros((len(unseen), len(vectorizer.vocabulary_)))
        for row, doc in enumerate(unseen):
            for term, count in Counter(vectorizer.tokenizer(doc)).items():
                column = vectorizer.vocabulary_.get(term)
                if column is not None:
                    rows[row, column] = count
        weighted = rows * vectorizer.idf_
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        assert np.allclose(vectorizer.transform(unseen), weighted / norms)

    def test_fit_transform_single_pass_equals_two_pass(self):
        single = TfidfVectorizer().fit_transform(self.CORPUS)
        two_pass = TfidfVectorizer().fit(self.CORPUS).transform(self.CORPUS)
        assert np.allclose(single, two_pass)

    def test_empty_corpus(self):
        matrix = TfidfVectorizer().build_matrix([])
        assert matrix.counts.shape == (0, 0)
        assert matrix.vocabulary == {}

    def test_max_vocabulary_tie_break_is_alphabetical(self):
        docs = ["bb aa", "aa bb", "cc aa bb"]  # df: aa=3, bb=3, cc=1
        vectorizer = TfidfVectorizer(max_vocabulary=1)
        matrix = vectorizer.build_matrix(docs)
        assert list(matrix.vocabulary) == ["aa"]

    def test_transform_survives_shuffled_vocabulary(self):
        # vocabulary_ is public; transform must not assume sorted keys
        vectorizer = TfidfVectorizer().fit(DOCS)
        names = vectorizer.feature_names()
        shuffled = {name: i for i, name in enumerate(reversed(names))}
        vectorizer.vocabulary_ = shuffled
        row = vectorizer.transform(["community mesh"])[0]
        hit_terms = {
            name for name, column in shuffled.items() if row[column] > 0
        }
        assert "community" in hit_terms and "mesh" in hit_terms
