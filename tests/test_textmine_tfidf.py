"""Tests for repro.textmine.tfidf."""

import numpy as np
import pytest

from repro.textmine.tfidf import TfidfVectorizer

DOCS = [
    "mesh community network community",
    "datacenter fabric congestion",
    "community network governance",
]


class TestBuildMatrix:
    def test_counts(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        assert matrix.term_frequency("community", 0) == 2
        assert matrix.term_frequency("community", 1) == 0

    def test_document_frequency(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        assert matrix.document_frequency("community") == 2
        assert matrix.document_frequency("datacenter") == 1
        assert matrix.document_frequency("unknown") == 0

    def test_shape_properties(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        assert matrix.n_docs == 3
        assert matrix.n_terms == len(matrix.vocabulary)

    def test_top_terms(self):
        matrix = TfidfVectorizer().build_matrix(DOCS)
        top = matrix.top_terms(0, k=1)
        assert top == [("community", 2)]

    def test_min_df_filters_rare_terms(self):
        matrix = TfidfVectorizer(min_df=2).build_matrix(DOCS)
        assert "community" in matrix.vocabulary
        assert "datacenter" not in matrix.vocabulary

    def test_max_vocabulary_caps_terms(self):
        vectorizer = TfidfVectorizer(max_vocabulary=2)
        matrix = vectorizer.build_matrix(DOCS)
        assert matrix.n_terms == 2
        # Highest-df terms survive.
        assert "community" in matrix.vocabulary


class TestTfidf:
    def test_rows_l2_normalized(self):
        weights = TfidfVectorizer().fit_transform(DOCS)
        norms = np.linalg.norm(weights, axis=1)
        assert np.allclose(norms, 1.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(DOCS)

    def test_unseen_terms_ignored(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(DOCS)
        row = vectorizer.transform(["zebra quark"])
        assert np.allclose(row, 0.0)

    def test_rare_term_outweighs_common_term(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(DOCS)
        row = vectorizer.transform(["datacenter community"])[0]
        names = vectorizer.feature_names()
        dc = row[names.index("datacenter")]
        community = row[names.index("community")]
        assert dc > community

    def test_deterministic(self):
        a = TfidfVectorizer().fit_transform(DOCS)
        b = TfidfVectorizer().fit_transform(DOCS)
        assert np.array_equal(a, b)

    def test_feature_names_ordered_by_column(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit(DOCS)
        names = vectorizer.feature_names()
        assert names == sorted(names)
