"""Tests for repro.io.tables."""

import pytest

from repro.io.tables import Table, render_table


def test_row_length_validated():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_render_contains_all_cells():
    table = Table(["venue", "share"], title="Adoption")
    table.add_row(["sigcomm-like", 0.0415])
    text = table.render()
    assert "Adoption" in text
    assert "sigcomm-like" in text
    assert "0.042" in text  # default precision 3, rounded


def test_float_precision_configurable():
    table = Table(["x"], precision=1)
    table.add_row([0.25])
    assert "0.2" in table.render() or "0.3" in table.render()


def test_bool_rendering():
    text = render_table(["ok"], [[True], [False]])
    assert "yes" in text
    assert "no" in text


def test_columns_aligned():
    text = render_table(["col", "value"], [["longer-cell", 1], ["x", 22]])
    lines = text.splitlines()
    # Every row pads the first column to the same width, so the second
    # column starts at a fixed offset.
    first_width = len("longer-cell") + 2
    assert lines[1].startswith("-" * len("longer-cell"))
    assert lines[2][:first_width] == "longer-cell  "
    assert lines[3][:first_width] == "x" + " " * (first_width - 1)


def test_to_records():
    table = Table(["a", "b"])
    table.add_row([1, 2])
    assert table.to_records() == [{"a": 1, "b": 2}]


def test_empty_table_renders_header_only():
    text = render_table(["a"], [])
    assert "a" in text
