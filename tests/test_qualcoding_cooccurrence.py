"""Tests for repro.qualcoding.cooccurrence."""

import numpy as np
import pytest

from repro.qualcoding.codebook import Codebook
from repro.qualcoding.cooccurrence import cooccurrence_graph, cooccurrence_matrix
from repro.qualcoding.segments import CodingSession, Document


@pytest.fixture
def session():
    book = Codebook("s")
    for name in ("cost", "maintenance", "trust"):
        book.add(name)
    session = CodingSession(book)
    session.add_document(Document("d1", "x" * 100))
    session.add_document(Document("d2", "y" * 100))
    # d1: cost+maintenance (overlapping spans); d2: cost only.
    session.code("d1", "cost", 0, 50, rater="r1")
    session.code("d1", "maintenance", 25, 75, rater="r1")
    session.code("d2", "cost", 0, 10, rater="r1")
    return session


class TestMatrix:
    def test_document_level_counts(self, session):
        codes, matrix = cooccurrence_matrix(session)
        i = {c: k for k, c in enumerate(codes)}
        assert matrix[i["cost"], i["maintenance"]] == 1
        assert matrix[i["cost"], i["cost"]] == 2  # appears in 2 docs
        assert matrix[i["trust"], i["trust"]] == 0

    def test_symmetric(self, session):
        _, matrix = cooccurrence_matrix(session)
        assert np.array_equal(matrix, matrix.T)

    def test_span_level_requires_overlap(self, session):
        # Add a second, non-overlapping pair in d2.
        session.code("d2", "maintenance", 50, 60, rater="r1")
        codes, matrix = cooccurrence_matrix(session, level="span")
        i = {c: k for k, c in enumerate(codes)}
        # d1 spans overlap; d2 spans (0-10 vs 50-60) do not.
        assert matrix[i["cost"], i["maintenance"]] == 1

    def test_bad_level_rejected(self, session):
        with pytest.raises(ValueError):
            cooccurrence_matrix(session, level="paragraph")

    def test_rater_filter(self, session):
        session.code("d2", "trust", 0, 10, rater="r2")
        codes, matrix = cooccurrence_matrix(session, rater="r2")
        i = {c: k for k, c in enumerate(codes)}
        assert matrix[i["trust"], i["trust"]] == 1
        assert matrix[i["cost"], i["cost"]] == 0


class TestGraph:
    def test_nodes_carry_counts(self, session):
        graph = cooccurrence_graph(session)
        assert graph.nodes["cost"]["count"] == 2

    def test_edge_weight_and_jaccard(self, session):
        graph = cooccurrence_graph(session)
        edge = graph["cost"]["maintenance"]
        assert edge["weight"] == 1
        # union = 2 + 1 - 1 = 2 -> jaccard 0.5
        assert edge["jaccard"] == pytest.approx(0.5)

    def test_min_weight_prunes(self, session):
        graph = cooccurrence_graph(session, min_weight=2)
        assert graph.number_of_edges() == 0
