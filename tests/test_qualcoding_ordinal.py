"""Tests for repro.qualcoding.ordinal."""

import numpy as np
import pytest

from repro.qualcoding.ordinal import (
    confusion_matrix,
    disagreement_pairs,
    weighted_kappa,
)

CATS = [1, 2, 3, 4, 5]


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([1, 1, 2], [1, 2, 2], [1, 2])
        assert matrix.tolist() == [[1, 1], [0, 1]]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix([1], [1, 2], [1, 2])

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            confusion_matrix([9], [1], [1, 2])

    def test_duplicate_categories(self):
        with pytest.raises(ValueError):
            confusion_matrix([1], [1], [1, 1])


class TestWeightedKappa:
    def test_perfect_agreement(self):
        assert weighted_kappa([1, 3, 5], [1, 3, 5], CATS) == 1.0

    def test_near_misses_beat_far_misses(self):
        a = [1, 2, 3, 4, 5] * 10
        near = [2, 3, 4, 5, 4] * 10  # off by one
        far = [5, 5, 5, 1, 1] * 10   # off by a lot
        assert weighted_kappa(a, near, CATS) > weighted_kappa(a, far, CATS)

    def test_quadratic_more_forgiving_of_small_errors(self):
        a = [1, 2, 3, 4, 5] * 20
        near = [2, 3, 4, 5, 4] * 20
        quadratic = weighted_kappa(a, near, CATS, weights="quadratic")
        linear = weighted_kappa(a, near, CATS, weights="linear")
        assert quadratic > linear

    def test_nominal_equivalence_for_two_categories(self):
        # With two categories, linear weighted kappa equals Cohen's kappa.
        from repro.qualcoding.agreement import cohens_kappa
        a = ["x", "y", "x", "x", "y", "y", "x", "y"]
        b = ["x", "y", "y", "x", "y", "x", "x", "y"]
        weighted = weighted_kappa(a, b, ["x", "y"], weights="linear")
        assert weighted == pytest.approx(cohens_kappa(a, b))

    def test_single_category_degenerate(self):
        assert weighted_kappa(["a", "a"], ["a", "a"], ["a"]) == 1.0

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_kappa([1], [1], CATS, weights="cubic")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_kappa([], [], CATS)

    def test_chance_level_near_zero(self):
        import random
        rng = random.Random(0)
        a = [rng.choice(CATS) for _ in range(20000)]
        b = [rng.choice(CATS) for _ in range(20000)]
        assert abs(weighted_kappa(a, b, CATS)) < 0.05


class TestDisagreementPairs:
    def test_lists_only_disagreements(self):
        pairs = disagreement_pairs([1, 2, 3], [1, 5, 3], ["u0", "u1", "u2"])
        assert pairs == [("u1", 2, 5)]

    def test_default_ids(self):
        pairs = disagreement_pairs([1, 2], [2, 2])
        assert pairs == [("0", 1, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            disagreement_pairs([1], [1, 2])
        with pytest.raises(ValueError):
            disagreement_pairs([1], [1], unit_ids=["a", "b"])
