"""Tests for repro.bibliometrics.shardgen."""

import numpy as np
import pytest

from repro.bibliometrics.shardgen import (
    CorpusPlan,
    ShardedCorpusConfig,
    generate_columnar_corpus,
    generate_shard,
    topic_skeleton,
)
from repro.bibliometrics.synthgen import default_venue_profiles
from repro.runtime.faultinject import FaultInjector

CONFIG = ShardedCorpusConfig(
    start_year=2019, end_year=2025, seed=3, total_papers=1400, shard_size=400
)


@pytest.fixture(scope="module")
def baseline_fingerprint() -> str:
    return generate_columnar_corpus(CONFIG).fingerprint()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedCorpusConfig(start_year=2025, end_year=2020)
        with pytest.raises(ValueError):
            ShardedCorpusConfig(total_papers=0)
        with pytest.raises(ValueError):
            ShardedCorpusConfig(shard_size=0)

    def test_shard_size_is_part_of_identity(self, baseline_fingerprint):
        other = ShardedCorpusConfig(
            start_year=2019, end_year=2025, seed=3,
            total_papers=1400, shard_size=700,
        )
        assert generate_columnar_corpus(other).fingerprint() != baseline_fingerprint


class TestPlan:
    def test_exact_total(self):
        for total in (1, 17, 439, 1400, 12345):
            config = ShardedCorpusConfig(
                start_year=2019, end_year=2025, total_papers=total
            )
            plan = CorpusPlan(config, default_venue_profiles())
            assert int(plan.cell_counts.sum()) == total
            assert sum(plan.shard_sizes()) == total

    def test_year_major_ordering(self):
        plan = CorpusPlan(CONFIG, default_venue_profiles())
        shard = generate_shard(CONFIG, shard_index=0)
        assert int(shard.year[0]) == CONFIG.start_year
        # Years never decrease along the global order.
        previous_last = None
        for index in range(plan.n_shards):
            years = generate_shard(CONFIG, shard_index=index).year
            assert np.all(np.diff(years) >= 0)
            if previous_last is not None:
                assert years[0] >= previous_last
            previous_last = years[-1]

    def test_skeleton_matches_shard_topics(self):
        plan = CorpusPlan(CONFIG, default_venue_profiles())
        skeleton = topic_skeleton(CONFIG, default_venue_profiles(), plan)
        shard = generate_shard(CONFIG, shard_index=1)
        lo, hi = plan.shard_range(1)
        np.testing.assert_array_equal(shard.topic_idx, skeleton[lo:hi])


class TestShardContent:
    def test_shard_is_pure_function_of_config_and_index(self):
        a = generate_shard(CONFIG, shard_index=2)
        b = generate_shard(CONFIG, shard_index=2)
        assert a.fingerprint() == b.fingerprint()

    def test_different_shards_differ(self):
        assert (
            generate_shard(CONFIG, shard_index=0).fingerprint()
            != generate_shard(CONFIG, shard_index=1).fingerprint()
        )

    def test_refs_sorted_unique_and_earlier(self):
        plan = CorpusPlan(CONFIG, default_venue_profiles())
        shard = generate_shard(CONFIG, shard_index=plan.n_shards - 1)
        year_starts = plan.year_starts
        for local in range(shard.n_papers):
            refs = shard.refs_of(local)
            if refs.size == 0:
                continue
            assert np.all(np.diff(refs) > 0)  # sorted, deduplicated
            horizon = year_starts[int(shard.year[local]) - CONFIG.start_year]
            assert refs.max() < horizon

    def test_authors_sorted_unique_and_in_venue_pool(self):
        plan = CorpusPlan(CONFIG, default_venue_profiles())
        shard = generate_shard(CONFIG, shard_index=0)
        offsets = plan.author_offsets
        for local in range(min(50, shard.n_papers)):
            authors = shard.authors_of(local)
            assert authors.size >= 1
            assert np.all(np.diff(authors) > 0)
            venue = int(shard.venue_idx[local])
            assert authors.min() >= offsets[venue]
            assert authors.max() < offsets[venue + 1]

    def test_positionality_implies_human_methods(self):
        shard = generate_shard(CONFIG, shard_index=0)
        planted = shard.positionality.astype(bool)
        assert planted.any()
        assert np.all(shard.human_mask[planted] > 0)
        assert np.all(shard.body.offsets[:-1][~planted]
                      == shard.body.offsets[1:][~planted])


class TestWorkerInvariance:
    def test_fingerprint_equal_at_1_2_4_workers(self, baseline_fingerprint):
        for workers in (2, 4):
            corpus = generate_columnar_corpus(CONFIG, workers=workers)
            assert corpus.fingerprint() == baseline_fingerprint, workers

    def test_fingerprint_equal_under_kill_fault(self, baseline_fingerprint):
        injector = FaultInjector(seed=0)
        injector.register(
            "shardgen:shard", mode="kill", probability=1.0, times=1
        )
        corpus = generate_columnar_corpus(
            CONFIG, workers=2, fault_injector=injector
        )
        assert corpus.fingerprint() == baseline_fingerprint

    def test_degrades_to_sequential_past_rebuild_budget(
        self, baseline_fingerprint
    ):
        injector = FaultInjector(seed=0)
        # Kill every worker shard attempt, forever: the pool budget
        # exhausts and the degraded in-process path (where kill-mode
        # faults pass through) must still complete identically.
        injector.register(
            "shardgen:shard", mode="kill", probability=1.0, times=None
        )
        corpus = generate_columnar_corpus(
            CONFIG, workers=2, fault_injector=injector, max_pool_rebuilds=1
        )
        assert corpus.fingerprint() == baseline_fingerprint


class TestCacheStreaming:
    def test_cold_then_warm_fingerprints_equal(
        self, tmp_path, baseline_fingerprint
    ):
        cold = generate_columnar_corpus(CONFIG, cache_dir=str(tmp_path))
        assert cold.fingerprint() == baseline_fingerprint
        # Warm replay: shards decode from the cache, nothing regenerates.
        warm = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        assert warm.fingerprint() == baseline_fingerprint
        assert len(list(warm.iter_shards())) == warm.n_shards

    def test_stream_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            generate_columnar_corpus(CONFIG, stream=True)

    def test_evicted_cache_entry_regenerates(self, tmp_path, baseline_fingerprint):
        corpus = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        for path in tmp_path.rglob("*.jsonl"):
            path.unlink()
        assert corpus.fingerprint() == baseline_fingerprint

    def test_on_shard_callback_sees_every_shard(self):
        seen: list[int] = []
        corpus = generate_columnar_corpus(
            CONFIG, on_shard=lambda meta: seen.append(meta["shard"])
        )
        assert sorted(seen) == list(range(corpus.n_shards))
