"""Tests for repro.netsim.bgp.ixp."""

from repro.netsim.bgp.asys import AS, ASGraph, Relationship
from repro.netsim.bgp.ixp import IXP, connect_ixp_members


def make_graph(n=4):
    g = ASGraph()
    for asn in range(1, n + 1):
        g.add_as(AS(asn))
    return g


def test_open_members_fully_meshed():
    graph = make_graph(3)
    ixp = IXP("ix")
    for asn in (1, 2, 3):
        ixp.join(asn)
    created = connect_ixp_members(graph, ixp)
    assert created == 3
    assert graph.relationship(1, 2) is Relationship.PEER
    assert graph.link_ixp(1, 3) == "ix"


def test_selective_members_not_auto_peered():
    graph = make_graph(3)
    ixp = IXP("ix")
    ixp.join(1)
    ixp.join(2)
    ixp.join(3, open_policy=False)
    connect_ixp_members(graph, ixp)
    assert graph.relationship(1, 2) is Relationship.PEER
    assert graph.relationship(1, 3) is None
    assert graph.relationship(2, 3) is None


def test_existing_links_not_duplicated():
    graph = make_graph(2)
    graph.add_peering(1, 2)
    ixp = IXP("ix")
    ixp.join(1)
    ixp.join(2)
    assert connect_ixp_members(graph, ixp) == 0


def test_rejoining_flips_policy():
    ixp = IXP("ix")
    ixp.join(1, open_policy=False)
    assert 1 not in ixp.open_policy
    ixp.join(1, open_policy=True)
    assert 1 in ixp.open_policy


def test_leave_removes_membership():
    ixp = IXP("ix")
    ixp.join(1)
    ixp.leave(1)
    assert 1 not in ixp.members
    assert 1 not in ixp.open_policy


def test_name_defaults_to_id():
    assert IXP("ix-br-1").name == "ix-br-1"


def test_idempotent_connect():
    graph = make_graph(3)
    ixp = IXP("ix")
    for asn in (1, 2, 3):
        ixp.join(asn)
    connect_ixp_members(graph, ixp)
    assert connect_ixp_members(graph, ixp) == 0
