"""Tests for repro.bench — the ledger schema and the regression gate.

The gate is the enforcement arm of the perf story, so its failure
modes get tests of their own: a regression must fail, a missing bench
must fail, a first entry must pass, and one noisy run must not poison
the trailing-median baseline.
"""

import pytest

from repro.bench.gate import GateReport, evaluate_gate, render_trajectory
from repro.bench.hotpaths import hot_path_names, run_hot_path
from repro.bench.ledger import (
    SCHEMA_VERSION,
    append_entries,
    load_ledger,
    make_entry,
    validate_entry,
)
from repro.errors import DataFormatError


def entry(bench="scanner", value=1.0, **kwargs):
    return make_entry(bench, value, rev="deadbee", **kwargs)


class TestSchema:
    def test_make_entry_is_schema_complete(self):
        row = entry()
        validate_entry(row)
        assert row["schema"] == SCHEMA_VERSION
        assert row["git_rev"] == "deadbee"
        assert row["recorded"] > 0

    def test_missing_field_rejected(self):
        row = entry()
        del row["unit"]
        with pytest.raises(DataFormatError, match="unit"):
            validate_entry(row)

    def test_wrong_type_rejected(self):
        row = entry()
        row["value"] = "fast"
        with pytest.raises(DataFormatError, match="value"):
            validate_entry(row)

    def test_bool_is_not_a_number(self):
        row = entry()
        row["value"] = True
        with pytest.raises(DataFormatError, match="value"):
            validate_entry(row)

    def test_unknown_field_rejected(self):
        row = entry()
        row["speed"] = 9001
        with pytest.raises(DataFormatError, match="speed"):
            validate_entry(row)

    def test_better_must_be_lower_or_higher(self):
        with pytest.raises(DataFormatError, match="better"):
            entry(better="sideways")

    def test_non_dict_rejected(self):
        with pytest.raises(DataFormatError):
            validate_entry([1, 2, 3])


class TestLedgerIO:
    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.json"
        rows = [entry(value=0.1), entry(value=0.2)]
        assert append_entries(path, rows) == 2
        assert load_ledger(path) == rows

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "absent.json") == []

    def test_append_validates_before_writing(self, tmp_path):
        path = tmp_path / "ledger.json"
        bad = entry()
        del bad["bench"]
        with pytest.raises(DataFormatError):
            append_entries(path, [bad])
        assert not path.exists()

    def test_load_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "ledger.json"
        append_entries(path, [entry()])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "bench": "x"}\n')
        with pytest.raises(DataFormatError, match="row 1"):
            load_ledger(path)


class TestGate:
    def test_first_entry_passes_without_baseline(self):
        report = evaluate_gate([entry()], ["scanner"])
        assert report.ok
        assert report.checks[0].baseline is None
        assert "no baseline" in report.checks[0].note

    def test_steady_series_passes(self):
        rows = [entry(value=v) for v in (1.0, 1.02, 0.98, 1.01)]
        report = evaluate_gate(rows, ["scanner"])
        assert report.ok
        assert report.checks[-1].ratio == pytest.approx(1.01, rel=1e-6)

    def test_regression_over_threshold_fails(self):
        rows = [entry(value=1.0), entry(value=1.0), entry(value=1.3)]
        report = evaluate_gate(rows, ["scanner"])
        assert not report.ok
        assert "worse" in report.checks[0].note

    def test_missing_bench_fails(self):
        report = evaluate_gate([entry()], ["scanner", "ghost"])
        assert not report.ok
        ghost = next(c for c in report.checks if c.bench == "ghost")
        assert ghost.note == "no ledger entries"

    def test_one_noisy_run_does_not_poison_the_baseline(self):
        # spike at 3.0, then honest runs again: the median baseline
        # absorbs the outlier, so the next honest run still passes.
        rows = [entry(value=v) for v in (1.0, 1.0, 3.0, 1.0, 1.05)]
        report = evaluate_gate(rows, ["scanner"])
        assert report.ok, report.checks[0].note

    def test_window_bounds_the_baseline(self):
        # ancient fast history outside the window must not fail today's
        # honest run.
        rows = [entry(value=0.1)] * 10 + [entry(value=1.0)] * 6
        report = evaluate_gate(rows, ["scanner"], window=5)
        assert report.ok

    def test_higher_is_better_inverts_the_ratio(self):
        rows = [
            entry(metric="throughput", better="higher", value=v)
            for v in (100.0, 100.0, 70.0)
        ]
        report = evaluate_gate(rows, ["scanner"])
        assert not report.ok
        assert report.checks[0].ratio == pytest.approx(100.0 / 70.0)

    def test_threshold_is_tunable(self):
        rows = [entry(value=1.0), entry(value=1.1)]
        assert evaluate_gate(rows, ["scanner"], threshold=0.05).ok is False
        assert evaluate_gate(rows, ["scanner"], threshold=0.20).ok is True

    def test_summary_is_json_shaped(self):
        report = evaluate_gate([entry()], ["scanner"])
        summary = report.summary()
        assert summary["ok"] is True
        assert summary["checks"][0]["bench"] == "scanner"

    def test_render_marks_regressions(self):
        rows = [entry(value=1.0), entry(value=2.0)]
        text = evaluate_gate(rows, ["scanner"]).render()
        assert "REGRESSED" in text

    def test_empty_report_is_ok(self):
        assert GateReport(threshold=0.2, window=5).ok is True


class TestTrajectory:
    def test_empty_ledger(self):
        assert "no entries" in render_trajectory([])

    def test_lists_each_series_once(self):
        rows = [entry(value=1.0), entry(value=1.1),
                entry(bench="tfidf", value=0.5)]
        text = render_trajectory(rows)
        assert text.count("scanner") == 1
        assert text.count("tfidf") == 1
        assert "deadbee" in text

    def test_bench_filter(self):
        rows = [entry(), entry(bench="tfidf")]
        text = render_trajectory(rows, ["tfidf"])
        assert "tfidf" in text and "scanner" not in text


class TestHotPaths:
    def test_known_names(self):
        assert hot_path_names() == [
            "corpus_scan", "experiment_scan", "scanner", "scrub",
            "serve_p95", "suite", "synthgen", "tfidf",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown hot path"):
            run_hot_path("warp_drive")

    def test_scanner_runner_emits_valid_entries(self):
        entries = run_hot_path("scanner", repeats=1)
        assert len(entries) == 1
        validate_entry(entries[0])
        assert entries[0]["bench"] == "scanner"
        assert entries[0]["value"] > 0
