"""Focused tests for deployment internals: siting, re-siting, weather."""

import random

import pytest

from repro.netsim.community.deployment import (
    DeploymentConfig,
    _clustered_locations,
    _resite_worst_relay,
    _seasonal_weather,
    _site_nodes,
)
from repro.netsim.community.members import Member, MemberPool
from repro.netsim.topology import Location, distance_km


def member_locations(seed=0, n=40):
    return _clustered_locations(n, random.Random(seed))


class TestClusteredLocations:
    def test_count(self):
        assert len(member_locations(n=25)) == 25

    def test_clustered_not_uniform(self):
        locations = member_locations(n=60)
        # Mean nearest-neighbor distance in clusters is far below the
        # ~1.3 km expected for 60 uniform points on 10x10 km.
        nearest = []
        for i, a in enumerate(locations):
            nearest.append(
                min(
                    distance_km(a, b)
                    for j, b in enumerate(locations)
                    if i != j
                )
            )
        assert sum(nearest) / len(nearest) < 0.8


class TestSiting:
    def _connected_share(self, network):
        return len(network.connected_node_ids()) / max(
            1, len(network.nodes())
        )

    def test_both_policies_build_connected_meshes(self):
        locations = member_locations()
        for community in (True, False):
            config = DeploymentConfig(
                community_siting=community,
                local_maintenance=False,
                feedback_iteration=False,
            )
            network = _site_nodes(config, locations, random.Random(0))
            assert self._connected_share(network) == 1.0

    def test_relay_budget_respected(self):
        locations = member_locations()
        config = DeploymentConfig(
            community_siting=True, local_maintenance=False,
            feedback_iteration=False, n_relays=5,
        )
        network = _site_nodes(config, locations, random.Random(0))
        assert len(network.nodes(kind="relay")) <= 5
        assert len(network.nodes(kind="gateway")) == 1

    def test_community_siting_covers_more_members(self):
        shares = {}
        for community in (True, False):
            total = 0.0
            for seed in range(4):
                locations = member_locations(seed=seed)
                config = DeploymentConfig(
                    community_siting=community,
                    local_maintenance=False,
                    feedback_iteration=False,
                )
                network = _site_nodes(config, locations, random.Random(seed))
                total += network.coverage_share(locations)
            shares[community] = total / 4
        assert shares[True] >= shares[False]


class TestResite:
    def test_moves_relay_toward_uncovered(self):
        config = DeploymentConfig(
            community_siting=True, local_maintenance=True,
            feedback_iteration=True, n_relays=3,
        )
        locations = [Location(0, 0), Location(0.5, 0), Location(0.4, 0.3)]
        network = _site_nodes(config, locations, random.Random(0))
        # A new hamlet appears far away.
        members = MemberPool(
            [
                Member(f"m{i}", loc)
                for i, loc in enumerate(locations + [Location(3.0, 3.0)])
            ]
        )
        before = network.coverage_share([m.location for m in members])
        for _ in range(4):  # a few feedback iterations
            _resite_worst_relay(network, members, config.radio_range_km)
        after = network.coverage_share([m.location for m in members])
        assert after >= before

    def test_noop_when_everyone_covered(self):
        config = DeploymentConfig(
            community_siting=True, local_maintenance=True,
            feedback_iteration=True, n_relays=2,
        )
        locations = [Location(0, 0), Location(0.4, 0)]
        network = _site_nodes(config, locations, random.Random(0))
        members = MemberPool(
            [Member(f"m{i}", loc) for i, loc in enumerate(locations)]
        )
        positions_before = {
            n.node_id: (n.location.x, n.location.y) for n in network.nodes()
        }
        _resite_worst_relay(network, members, config.radio_range_km)
        positions_after = {
            n.node_id: (n.location.x, n.location.y) for n in network.nodes()
        }
        assert positions_before == positions_after


class TestWeather:
    def test_storm_season(self):
        assert _seasonal_weather(9) == 2.0
        assert _seasonal_weather(11) == 2.0

    def test_calm_season(self):
        assert _seasonal_weather(0) == 1.0
        assert _seasonal_weather(8) == 1.0

    def test_periodic(self):
        assert _seasonal_weather(21) == _seasonal_weather(9)
