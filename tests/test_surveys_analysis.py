"""Tests for repro.surveys.analysis."""

import pytest

from repro.surveys.analysis import (
    cronbach_alpha,
    crosstab,
    response_rate_by,
    summarize_numeric,
)
from repro.surveys.instrument import Instrument, Question, Response


def make_responses(rows, item_ids=("q1", "q2", "q3"), strata=None):
    inst = Instrument("s", [Question(qid, qid) for qid in item_ids])
    responses = []
    for i, row in enumerate(rows):
        answers = dict(zip(item_ids, row))
        metadata = {"stratum": strata[i]} if strata else {}
        responses.append(Response.create(f"r{i}", inst, answers, metadata))
    return responses


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize_numeric([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["n"] == 4

    def test_single_value_sd_zero(self):
        assert summarize_numeric([5.0])["sd"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_numeric([])


class TestCronbach:
    def test_perfectly_correlated_items_near_one(self):
        rows = [(1, 1, 1), (2, 2, 2), (3, 3, 3), (4, 4, 4), (5, 5, 5)]
        assert cronbach_alpha(make_responses(rows), ("q1", "q2", "q3")) == (
            pytest.approx(1.0)
        )

    def test_uncorrelated_items_low(self):
        import random
        rng = random.Random(0)
        rows = [
            (rng.randint(1, 5), rng.randint(1, 5), rng.randint(1, 5))
            for _ in range(200)
        ]
        alpha = cronbach_alpha(make_responses(rows), ("q1", "q2", "q3"))
        assert alpha < 0.3

    def test_needs_two_items(self):
        with pytest.raises(ValueError):
            cronbach_alpha(make_responses([(1, 2, 3)]), ("q1",))

    def test_needs_two_respondents(self):
        with pytest.raises(ValueError):
            cronbach_alpha(make_responses([(1, 2, 3)]), ("q1", "q2"))

    def test_zero_variance_rejected(self):
        rows = [(3, 3, 3), (3, 3, 3)]
        with pytest.raises(ValueError):
            cronbach_alpha(make_responses(rows), ("q1", "q2", "q3"))


class TestCrosstab:
    def test_counts(self):
        responses = make_responses(
            [(1, 1, 1), (5, 1, 1), (5, 1, 1)],
            strata=["rural", "urban", "urban"],
        )
        table = crosstab(responses, "stratum", "q1")
        assert table[("urban", 5)] == 2
        assert table[("rural", 1)] == 1

    def test_missing_metadata_skipped(self):
        responses = make_responses([(1, 1, 1)])
        assert crosstab(responses, "stratum", "q1") == {}


class TestResponseRate:
    def test_rates(self):
        responses = make_responses(
            [(1, 1, 1), (2, 2, 2)], strata=["a", "a"]
        )
        rates = response_rate_by(responses, {"a": 4, "b": 10})
        assert rates == {"a": 0.5, "b": 0.0}

    def test_zero_population_skipped(self):
        rates = response_rate_by([], {"a": 0})
        assert rates == {}
