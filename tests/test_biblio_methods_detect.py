"""Tests for repro.bibliometrics.methods_detect."""

import pytest

from repro.bibliometrics.corpus import Paper, Venue, Corpus
from repro.bibliometrics.methods_detect import (
    HUMAN_METHOD_FAMILIES,
    METHOD_FAMILIES,
    classify_paper,
    detect_methods,
    uses_human_methods,
)


def make_paper(abstract, body=""):
    return Paper("p", "Title", abstract, "v", 2020, body=body)


class TestDetect:
    def test_finds_participatory(self):
        mentions = detect_methods(
            "We conducted participatory action research with operators."
        )
        assert any(m.family == "participatory" for m in mentions)

    def test_stem_wildcards(self):
        mentions = detect_methods("Our ethnographic fieldwork spanned a year.")
        families = {m.family for m in mentions}
        assert "ethnography" in families

    def test_case_insensitive(self):
        assert detect_methods("SEMI-STRUCTURED INTERVIEWS with staff")

    def test_offsets_recorded(self):
        text = "xxxx testbed yyyy"
        mention = detect_methods(text, families=("testbed",))[0]
        assert text[mention.start:mention.start + len("testbed")] == "testbed"

    def test_family_filter(self):
        text = "We interviewed users on our testbed."
        only = detect_methods(text, families=("testbed",))
        assert {m.family for m in only} == {"testbed"}

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            detect_methods("x", families=("astrology",))

    def test_no_false_positive_on_plain_text(self):
        mentions = detect_methods(
            "We present a new congestion control algorithm with proofs."
        )
        human = [m for m in mentions if m.is_human_method]
        assert human == []

    def test_sorted_by_offset(self):
        text = "A focus group met. Then a diary study started."
        mentions = detect_methods(text)
        offsets = [m.start for m in mentions]
        assert offsets == sorted(offsets)


class TestClassify:
    def test_counts_per_family(self):
        paper = make_paper(
            "We interviewed operators. We interviewed users. A testbed ran."
        )
        counts = classify_paper(paper)
        assert counts["interviews"] == 2
        assert counts["testbed"] == 1

    def test_body_scanned_too(self):
        paper = make_paper("Plain abstract.", body="A diary study followed.")
        assert "diaries" in classify_paper(paper)

    def test_human_families_subset_of_all(self):
        assert HUMAN_METHOD_FAMILIES <= set(METHOD_FAMILIES)


class TestUsesHumanMethods:
    def test_true_for_interview_paper(self):
        paper = make_paper("Findings draw on in-depth interviews with engineers.")
        assert uses_human_methods(paper)

    def test_false_for_measurement_paper(self):
        paper = make_paper("We measure the system from 40 vantage points.")
        assert not uses_human_methods(paper)

    def test_min_mentions_threshold(self):
        paper = make_paper("One focus group met.")
        assert uses_human_methods(paper, min_mentions=1)
        assert not uses_human_methods(paper, min_mentions=2)
