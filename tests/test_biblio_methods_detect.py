"""Tests for repro.bibliometrics.methods_detect.

The single-pass :class:`LexiconScanner` must be *exactly* equivalent to
the per-family ``finditer`` reference (``detect_multipass``): same
mentions, same surfaces, same offsets — including on adversarial
lexicons with cross-family shared prefixes, overlapping matches, stem
collisions, and non-indexable phrases that force the fallback path.
"""

import pytest

from repro.bibliometrics.corpus import Paper, Venue, Corpus
from repro.bibliometrics.methods_detect import (
    HUMAN_METHOD_FAMILIES,
    METHOD_FAMILIES,
    LexiconScanner,
    classify_paper,
    detect_methods,
    uses_human_methods,
)


def make_paper(abstract, body=""):
    return Paper("p", "Title", abstract, "v", 2020, body=body)


class TestDetect:
    def test_finds_participatory(self):
        mentions = detect_methods(
            "We conducted participatory action research with operators."
        )
        assert any(m.family == "participatory" for m in mentions)

    def test_stem_wildcards(self):
        mentions = detect_methods("Our ethnographic fieldwork spanned a year.")
        families = {m.family for m in mentions}
        assert "ethnography" in families

    def test_case_insensitive(self):
        assert detect_methods("SEMI-STRUCTURED INTERVIEWS with staff")

    def test_offsets_recorded(self):
        text = "xxxx testbed yyyy"
        mention = detect_methods(text, families=("testbed",))[0]
        assert text[mention.start:mention.start + len("testbed")] == "testbed"

    def test_family_filter(self):
        text = "We interviewed users on our testbed."
        only = detect_methods(text, families=("testbed",))
        assert {m.family for m in only} == {"testbed"}

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            detect_methods("x", families=("astrology",))

    def test_no_false_positive_on_plain_text(self):
        mentions = detect_methods(
            "We present a new congestion control algorithm with proofs."
        )
        human = [m for m in mentions if m.is_human_method]
        assert human == []

    def test_sorted_by_offset(self):
        text = "A focus group met. Then a diary study started."
        mentions = detect_methods(text)
        offsets = [m.start for m in mentions]
        assert offsets == sorted(offsets)


#: Adversarial (lexicon, text) pairs stressing scanner edge cases.
EQUIVALENCE_CASES = [
    # cross-family matches at the same offset, alternation shadowing
    ({"a": ("foo bar", "foo"), "b": ("foo bar baz", "bar")},
     "foo bar baz foo bar foo"),
    # stem vs exact collision on the same token
    ({"a": ("ab*",), "b": ("abc",)}, "abc abd ab abcd ABC"),
    # shared common first word across families
    ({"x": ("we measure*", "we"), "y": ("we measured twice",)},
     "we measured twice and we measure often we"),
    # hyphenated first tokens (token index key is the leading word chunk)
    ({"p": ("co-design",), "q": ("co-located co-design",)},
     "co-located co-design and co-design again and co-author"),
    # overlapping phrases within and across families
    ({"m": ("case study", "case studies"), "n": ("study case",)},
     "case study case studies study case case study"),
    # stem family vs multi-word family starting with the stemmed word
    ({"s": ("ethnograph*",), "t": ("ethnography of networks",)},
     "ethnography of networks ethnographic ETHNOGRAPHY"),
    # one family's phrase starts inside another family's match
    ({"long": ("a b c d",), "short": ("b c",)}, "a b c d b c a b c d"),
    # non-word leading character: forces the exact fallback scan
    ({"u": ("-dash start",), "v": ("plain words",)},
     "a -dash start and plain words here -dash start"),
    # empty text and no-hit text
    ({"a": ("anything",)}, ""),
    ({"a": ("anything",)}, "nothing here matches at all"),
]


class TestSinglePassEquivalence:
    @pytest.mark.parametrize("lexicon,text", EQUIVALENCE_CASES)
    def test_adversarial_lexicons(self, lexicon, text):
        scanner = LexiconScanner(lexicon)
        assert scanner.detect(text) == scanner.detect_multipass(text)

    @pytest.mark.parametrize("lexicon,text", EQUIVALENCE_CASES)
    def test_adversarial_lexicons_single_family_selections(self, lexicon, text):
        scanner = LexiconScanner(lexicon)
        for family in lexicon:
            selection = (family,)
            assert scanner.detect(text, selection) == scanner.detect_multipass(
                text, selection
            )

    def test_default_lexicon_on_representative_texts(self):
        texts = [
            "We conducted participatory action research and a diary study; "
            "semi-structured interviews with operators complement passive "
            "measurements from 12 vantage points and an ns-3 simulation.",
            "Our ethnographic fieldwork (autoethnography included) informed "
            "the co-design of the testbed; we surveyed 200 respondents with "
            "a Likert questionnaire and reflected on our positionality.",
            "case study CASE STUDIES case study " * 10,
            "we we we interviewed we surveyed we measure we simulate",
        ]
        scanner = LexiconScanner(METHOD_FAMILIES)
        for text in texts:
            assert scanner.detect(text) == scanner.detect_multipass(text)

    def test_default_lexicon_on_synthetic_papers(self):
        from repro.bibliometrics.synthgen import (
            SyntheticCorpusConfig,
            generate_corpus,
        )

        corpus, _ = generate_corpus(
            SyntheticCorpusConfig(start_year=2022, end_year=2024, seed=3)
        )
        scanner = LexiconScanner(METHOD_FAMILIES)
        assert len(list(corpus)) > 0
        for paper in corpus:
            text = paper.full_text
            assert scanner.detect(text) == scanner.detect_multipass(text)

    def test_detect_methods_uses_the_default_scanner(self):
        text = "A focus group met; fieldwork followed."
        scanner = LexiconScanner(METHOD_FAMILIES)
        assert detect_methods(text) == scanner.detect_multipass(text)


class TestClassify:
    def test_counts_per_family(self):
        paper = make_paper(
            "We interviewed operators. We interviewed users. A testbed ran."
        )
        counts = classify_paper(paper)
        assert counts["interviews"] == 2
        assert counts["testbed"] == 1

    def test_body_scanned_too(self):
        paper = make_paper("Plain abstract.", body="A diary study followed.")
        assert "diaries" in classify_paper(paper)

    def test_human_families_subset_of_all(self):
        assert HUMAN_METHOD_FAMILIES <= set(METHOD_FAMILIES)


class TestUsesHumanMethods:
    def test_true_for_interview_paper(self):
        paper = make_paper("Findings draw on in-depth interviews with engineers.")
        assert uses_human_methods(paper)

    def test_false_for_measurement_paper(self):
        paper = make_paper("We measure the system from 40 vantage points.")
        assert not uses_human_methods(paper)

    def test_min_mentions_threshold(self):
        paper = make_paper("One focus group met.")
        assert uses_human_methods(paper, min_mentions=1)
        assert not uses_human_methods(paper, min_mentions=2)
