"""Tests for repro.surveys.sampling."""

import pytest

from repro.surveys.respondents import default_population
from repro.surveys.sampling import (
    chain_referral_sample,
    convenience_sample,
    coverage_report,
    quota_sample,
)


@pytest.fixture(scope="module")
def population():
    return default_population(size=600, seed=0)


class TestConvenience:
    def test_hits_target_when_possible(self, population):
        report = convenience_sample(population, 50, seed=1)
        assert report.n_sampled == 50

    def test_no_duplicate_recruits(self, population):
        report = convenience_sample(population, 80, seed=1)
        assert len(set(report.sampled_ids)) == len(report.sampled_ids)

    def test_deterministic(self, population):
        a = convenience_sample(population, 40, seed=9)
        b = convenience_sample(population, 40, seed=9)
        assert a.sampled_ids == b.sampled_ids

    def test_overrepresents_reachable_strata(self, population):
        report = convenience_sample(population, 120, seed=2)
        coverage = coverage_report(population, report)
        representation = coverage["stratum_representation"]
        assert representation["hyperscaler-engineer"] > representation["rural-user"]

    def test_attempt_cap_respected(self, population):
        report = convenience_sample(population, 50, seed=1, max_attempts=10)
        assert report.attempts <= 10

    def test_bad_target(self, population):
        with pytest.raises(ValueError):
            convenience_sample(population, 0)


class TestQuota:
    def test_fills_quotas(self, population):
        report = quota_sample(population, per_stratum=5, seed=3)
        assert all(v == 5 for v in report.stratum_counts.values())
        assert set(report.stratum_counts) == set(population.strata())

    def test_costs_more_attempts_than_convenience(self, population):
        quota = quota_sample(population, per_stratum=8, seed=3)
        convenience = convenience_sample(
            population, quota.n_sampled, seed=3
        )
        assert quota.attempts > convenience.attempts


class TestChainReferral:
    def test_reaches_low_reachability_strata(self, population):
        report = chain_referral_sample(population, 120, seed=4)
        assert report.stratum_counts.get("rural-user", 0) > 0

    def test_yield_beats_convenience_for_same_target(self, population):
        referral = chain_referral_sample(population, 100, seed=5)
        convenience = convenience_sample(population, 100, seed=5)
        assert referral.yield_rate > convenience.yield_rate * 0.8

    def test_deterministic(self, population):
        a = chain_referral_sample(population, 60, seed=6)
        b = chain_referral_sample(population, 60, seed=6)
        assert a.sampled_ids == b.sampled_ids


class TestCoverageReport:
    def test_full_sample_full_coverage(self, population):
        ids = tuple(m.stakeholder_id for m in population)
        from repro.surveys.sampling import SamplingReport
        report = SamplingReport("all", ids, len(ids), {})
        coverage = coverage_report(population, report)
        assert coverage["problem_coverage"] == 1.0
        assert coverage["missed_problems"] == []
        assert coverage["low_reach_problem_coverage"] == 1.0

    def test_empty_sample_zero_coverage(self, population):
        from repro.surveys.sampling import SamplingReport
        report = SamplingReport("none", (), 10, {})
        coverage = coverage_report(population, report)
        assert coverage["problem_coverage"] == 0.0
        assert len(coverage["missed_problems"]) > 0

    def test_low_reach_problems_subset(self, population):
        from repro.surveys.sampling import SamplingReport
        report = SamplingReport("none", (), 1, {})
        coverage = coverage_report(population, report)
        # With nothing sampled, low-reach coverage is also zero.
        assert coverage["low_reach_problem_coverage"] == 0.0
