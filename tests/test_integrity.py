"""Tests for repro.integrity — scrub/repair, snapshots, and the CLI.

The robustness contract under test:

- corrupt-then-repair round trip: damage K shards of a cached corpus,
  prove the repairer regenerates **exactly those K** byte-identically
  (intact entries untouched) and the merged corpus fingerprint is
  restored bit-for-bit — at generation workers 1 and 2;
- snapshots: export -> delete the originals -> import yields the same
  scan aggregates as the pre-export oracle, and tampering with any
  manifest field or any shard byte fails import with a one-line typed
  error;
- the damage taxonomy: each way bytes die on disk classifies to the
  right kind.
"""

import json
import shutil

import pytest

from repro.bibliometrics.shardgen import (
    ShardedCorpusConfig,
    generate_columnar_corpus,
)
from repro.bibliometrics.shardscan import scan_corpus
from repro.errors import IntegrityError
from repro.integrity import (
    classify_entry,
    export_snapshot,
    import_snapshot,
    iter_entries,
    load_manifest,
    repair_cache,
    scrub_cache,
    verify_entry,
)
from repro.io.artifacts import ArtifactCache

#: Small fixed corpus: 4 shards, seconds to generate, stable identity.
CONFIG = dict(
    start_year=2016, end_year=2025, seed=0,
    total_papers=400, shard_size=100,
)


def corpus_config() -> ShardedCorpusConfig:
    return ShardedCorpusConfig(**CONFIG)


def flip_byte(path, offset=None):
    """XOR one body byte; the smallest possible on-disk damage."""
    data = bytearray(path.read_bytes())
    index = len(data) // 2 if offset is None else offset
    data[index] ^= 0xFF
    path.write_bytes(bytes(data))


def shard_entries(cache_dir):
    return sorted((cache_dir / "corpus-shard").glob("*.jsonl"))


class TestCorruptThenRepairRoundTrip:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_only_damaged_shards_regenerate_and_fingerprint_restores(
        self, tmp_path, workers
    ):
        config = corpus_config()
        cache_dir = tmp_path / "cache"
        corpus = generate_columnar_corpus(
            config, workers=workers, cache_dir=str(cache_dir)
        )
        oracle = corpus.fingerprint()
        entries = shard_entries(cache_dir)
        assert len(entries) == 4

        damaged, intact = entries[:2], entries[2:]
        for path in damaged:
            flip_byte(path)
        damaged_before = {p: p.read_bytes() for p in damaged}
        intact_before = {p: p.read_bytes() for p in intact}

        report = scrub_cache(cache_dir)
        assert report.entries == 4
        assert report.damaged == 2
        assert {f.key for f in report.findings} == {p.stem for p in damaged}

        report = repair_cache(cache_dir, report)
        assert report.repair_counts() == {"regenerated": 2}

        # exactly the K damaged entries changed; nothing else was touched
        for path, before in intact_before.items():
            assert path.read_bytes() == before
        for path, before in damaged_before.items():
            assert path.read_bytes() != before

        assert scrub_cache(cache_dir).damaged == 0
        replay = generate_columnar_corpus(
            config, workers=1, cache_dir=str(cache_dir)
        )
        assert replay.fingerprint() == oracle

    def test_repaired_shard_is_byte_identical_to_the_original(self, tmp_path):
        cache_dir = tmp_path / "cache"
        generate_columnar_corpus(corpus_config(), cache_dir=str(cache_dir))
        target = shard_entries(cache_dir)[1]
        pristine = target.read_bytes()
        flip_byte(target)
        repair_cache(cache_dir)
        assert target.read_bytes() == pristine

    def test_unregenerable_kind_is_deleted_to_a_clean_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path, version=1, sweep=False)
        cache.put("sweep-result", {"point": 1}, [{"value": 42}])
        path = cache.path_for("sweep-result", {"point": 1})
        flip_byte(path)
        report = repair_cache(tmp_path)
        assert report.repair_counts() == {"deleted": 1}
        assert not path.exists()
        assert cache.get("sweep-result", {"point": 1}) is None

    def test_orphaned_tmp_files_are_reaped(self, tmp_path):
        cache = ArtifactCache(tmp_path, version=1, sweep=False)
        cache.put("kind", {"a": 1}, [{"x": 1}])
        orphan = tmp_path / "kind" / "deadbeef.jsonl.tmp"
        orphan.write_bytes(b"partial write")
        report = scrub_cache(tmp_path)
        assert report.damage_counts() == {"orphaned_tmp": 1}
        repair_cache(tmp_path, report)
        assert not orphan.exists()
        assert scrub_cache(tmp_path).damaged == 0

    def test_failing_regenerator_degrades_to_delete(self, tmp_path):
        cache_dir = tmp_path / "cache"
        generate_columnar_corpus(corpus_config(), cache_dir=str(cache_dir))
        target = shard_entries(cache_dir)[0]
        flip_byte(target)

        def broken(config):
            raise RuntimeError("generator changed under us")

        report = repair_cache(
            cache_dir, regenerators={"corpus-shard": broken}
        )
        assert report.repair_counts() == {"deleted": 1}
        assert not target.exists()


class TestDamageTaxonomy:
    def put_entry(self, tmp_path, records=None):
        cache = ArtifactCache(tmp_path, version=1, sweep=False)
        records = records or [{"value": "aaaa"}, {"value": "bbbb"}]
        cache.put("kind", {"k": 1}, records)
        return cache.path_for("kind", {"k": 1})

    def test_intact(self, tmp_path):
        path = self.put_entry(tmp_path)
        damage, detail, header = classify_entry(path)
        assert damage is None
        assert header["artifact"] == "kind"

    def test_empty_file_is_truncated(self, tmp_path):
        path = self.put_entry(tmp_path)
        path.write_bytes(b"")
        assert classify_entry(path)[0] == "truncated"

    def test_torn_header_is_truncated(self, tmp_path):
        path = self.put_entry(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: data.find(b"\n") // 2])
        assert classify_entry(path)[0] == "truncated"

    def test_unparsable_header_is_bad_header(self, tmp_path):
        path = self.put_entry(tmp_path)
        body = path.read_bytes().split(b"\n", 1)[1]
        path.write_bytes(b"not json at all\n" + body)
        assert classify_entry(path)[0] == "bad_header"

    def test_pre_digest_header_is_bad_header(self, tmp_path):
        path = self.put_entry(tmp_path)
        header, body = path.read_bytes().split(b"\n", 1)
        legacy = json.loads(header)
        del legacy["sha256"]
        path.write_bytes(json.dumps(legacy).encode() + b"\n" + body)
        damage, detail, _ = classify_entry(path)
        assert damage == "bad_header"
        assert "sha256" in detail

    def test_entry_in_the_wrong_kind_directory_is_bad_header(self, tmp_path):
        path = self.put_entry(tmp_path)
        stray_dir = tmp_path / "other-kind"
        stray_dir.mkdir()
        stray = stray_dir / path.name
        shutil.copy(path, stray)
        assert classify_entry(stray)[0] == "bad_header"

    def test_relabeled_entry_fails_its_content_address(self, tmp_path):
        path = self.put_entry(tmp_path)
        moved = path.with_name("0" * 64 + ".jsonl")
        path.rename(moved)
        assert classify_entry(moved)[0] == "bad_header"
        assert classify_entry(moved, expect_addressed=False)[0] is None

    def test_torn_final_line_is_truncated(self, tmp_path):
        path = self.put_entry(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        assert classify_entry(path)[0] == "truncated"

    def test_missing_record_is_truncated(self, tmp_path):
        path = self.put_entry(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]))
        assert classify_entry(path)[0] == "truncated"

    def test_extra_record_is_garbled(self, tmp_path):
        path = self.put_entry(tmp_path)
        with path.open("ab") as handle:
            handle.write(b'{"interleaved": true}\n')
        assert classify_entry(path)[0] == "garbled"

    def test_non_json_interior_line_is_garbled(self, tmp_path):
        path = self.put_entry(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"\x00\xff garbage \x00\n"
        path.write_bytes(b"".join(lines))
        assert classify_entry(path)[0] == "garbled"

    def test_parse_preserving_flip_is_bit_flipped(self, tmp_path):
        # The failure mode only an end-to-end digest catches: every
        # line still parses, the count matches, but the bytes changed.
        path = self.put_entry(tmp_path)
        data = path.read_bytes()
        assert b'"aaaa"' in data
        path.write_bytes(data.replace(b'"aaaa"', b'"aaab"'))
        damage, detail, _ = classify_entry(path)
        assert damage == "bit_flipped"
        assert "sha256" in detail

    def test_verify_entry_raises_one_line_typed_error(self, tmp_path):
        path = self.put_entry(tmp_path)
        flip_byte(path)
        with pytest.raises(IntegrityError) as excinfo:
            verify_entry(path)
        assert "\n" not in str(excinfo.value)
        assert excinfo.value.damage in (
            "truncated", "bit_flipped", "bad_header", "garbled"
        )
        assert excinfo.value.path == str(path)

    def test_verify_entry_returns_header_when_intact(self, tmp_path):
        path = self.put_entry(tmp_path)
        header = verify_entry(path)
        assert header["count"] == 2


class TestSnapshotRoundTrip:
    def test_export_delete_originals_import_matches_oracle(self, tmp_path):
        config = corpus_config()
        cache_dir = tmp_path / "cache"
        corpus = generate_columnar_corpus(config, cache_dir=str(cache_dir))
        oracle_fingerprint = corpus.fingerprint()
        oracle_aggregates = scan_corpus(corpus)

        snap = tmp_path / "snap"
        manifest = export_snapshot(
            snap, config, tag="oracle-test", cache_dir=str(cache_dir)
        )
        assert manifest["fingerprint"] == oracle_fingerprint
        assert manifest["n_papers"] == 400

        # the originals are gone; the snapshot must stand alone
        shutil.rmtree(cache_dir)
        del corpus

        imported = import_snapshot(snap)
        assert imported.fingerprint() == oracle_fingerprint
        assert scan_corpus(imported) == oracle_aggregates

    def test_import_hydrates_a_cache_for_warm_replay(self, tmp_path):
        config = corpus_config()
        snap = tmp_path / "snap"
        manifest = export_snapshot(snap, config, tag="hydrate-test")

        warm = tmp_path / "warm"
        import_snapshot(snap, cache_dir=str(warm))
        assert len(shard_entries(warm)) == 4
        assert scrub_cache(warm).damaged == 0
        replay = generate_columnar_corpus(config, cache_dir=str(warm))
        assert replay.fingerprint() == manifest["fingerprint"]

    def test_export_refuses_to_overwrite_without_force(self, tmp_path):
        snap = tmp_path / "snap"
        export_snapshot(snap, corpus_config(), tag="first")
        with pytest.raises(IntegrityError):
            export_snapshot(snap, corpus_config(), tag="second")
        export_snapshot(snap, corpus_config(), tag="second", force=True)
        assert load_manifest(snap)["tag"] == "second"


class TestSnapshotTamperDetection:
    @pytest.fixture()
    def snap(self, tmp_path):
        snap = tmp_path / "snap"
        export_snapshot(snap, corpus_config(), tag="tamper-test")
        return snap

    def assert_import_fails_one_line(self, snap):
        with pytest.raises(IntegrityError) as excinfo:
            import_snapshot(snap)
        assert "\n" not in str(excinfo.value)
        return excinfo.value

    @pytest.mark.parametrize(
        "field, value",
        [
            ("tag", "evil"),
            ("n_papers", 399),
            ("fingerprint", "0" * 64),
            ("generator_version", "9.9.9"),
            ("schema_version", 99),
        ],
    )
    def test_any_manifest_field_edit_fails_import(self, snap, field, value):
        manifest_path = snap / "snapshot.json"
        manifest = json.loads(manifest_path.read_text())
        manifest[field] = value
        manifest_path.write_text(json.dumps(manifest))
        self.assert_import_fails_one_line(snap)

    def test_shard_list_edit_fails_import(self, snap):
        manifest_path = snap / "snapshot.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["shards"][0], manifest["shards"][1] = (
            manifest["shards"][1], manifest["shards"][0],
        )
        manifest_path.write_text(json.dumps(manifest))
        self.assert_import_fails_one_line(snap)

    def test_config_edit_fails_import(self, snap):
        manifest_path = snap / "snapshot.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["config"]["seed"] = 1
        manifest_path.write_text(json.dumps(manifest))
        self.assert_import_fails_one_line(snap)

    def test_shard_byte_flip_fails_import(self, snap):
        target = sorted((snap / "objects").glob("*.jsonl"))[0]
        flip_byte(target)
        error = self.assert_import_fails_one_line(snap)
        assert error.damage == "bit_flipped"

    def test_missing_object_fails_import(self, snap):
        sorted((snap / "objects").glob("*.jsonl"))[0].unlink()
        self.assert_import_fails_one_line(snap)

    def test_missing_manifest_fails_import(self, tmp_path):
        with pytest.raises(IntegrityError):
            import_snapshot(tmp_path / "nowhere")


class TestIterEntries:
    def test_lists_kind_key_size_age(self, tmp_path):
        cache = ArtifactCache(tmp_path, version=1, sweep=False)
        cache.put("alpha", {"a": 1}, [{"x": 1}])
        cache.put("beta", {"b": 2}, [{"y": 2}, {"y": 3}])
        entries = list(iter_entries(tmp_path))
        assert {e.kind for e in entries} == {"alpha", "beta"}
        for entry in entries:
            assert len(entry.key) == 64
            assert entry.size > 0
            assert entry.age_seconds >= 0.0

    def test_skips_tmp_and_lock_litter(self, tmp_path):
        cache = ArtifactCache(tmp_path, version=1, sweep=False)
        cache.put("alpha", {"a": 1}, [{"x": 1}])
        (tmp_path / "alpha" / "orphan.jsonl.tmp").write_bytes(b"x")
        entries = list(iter_entries(tmp_path))
        assert len(entries) == 1
        assert entries[0].kind == "alpha"

    def test_missing_root_yields_nothing(self, tmp_path):
        assert list(iter_entries(tmp_path / "absent")) == []


class TestCli:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    @pytest.fixture()
    def warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        generate_columnar_corpus(corpus_config(), cache_dir=str(cache_dir))
        return cache_dir

    def test_scrub_clean_exits_zero(self, capsys, warm_cache):
        code, out, _ = self.run_cli(
            capsys, "integrity", "scrub", str(warm_cache)
        )
        assert code == 0
        assert "4 intact, 0 damaged" in out

    def test_scrub_damage_exits_one_then_repair_heals(
        self, capsys, warm_cache
    ):
        flip_byte(shard_entries(warm_cache)[0])
        code, out, err = self.run_cli(
            capsys, "integrity", "scrub", str(warm_cache)
        )
        assert code == 1
        assert "1 damaged" in out
        assert "--repair" in err

        code, out, _ = self.run_cli(
            capsys, "integrity", "scrub", str(warm_cache), "--repair"
        )
        assert code == 0
        assert "[regenerated]" in out

        code, out, _ = self.run_cli(
            capsys, "integrity", "scrub", str(warm_cache), "--json"
        )
        assert code == 0
        assert json.loads(out)["damaged"] == 0

    def test_cache_ls_and_stats(self, capsys, warm_cache):
        (warm_cache / "corpus-shard" / "orphan.jsonl.tmp").write_bytes(b"x")
        code, out, err = self.run_cli(capsys, "cache", "ls", str(warm_cache))
        assert code == 0
        assert "corpus-shard" in out
        assert "1 orphaned temp file" in err

        code, out, _ = self.run_cli(
            capsys, "cache", "stats", str(warm_cache), "--json"
        )
        assert code == 0
        stats = json.loads(out)
        assert stats["entries"] == 4
        assert stats["orphaned_tmp"] == 1
        assert stats["kinds"]["corpus-shard"]["entries"] == 4

    def test_corpus_export_import_round_trip(self, capsys, tmp_path):
        snap = tmp_path / "snap"
        code, out, _ = self.run_cli(
            capsys, "corpus", "export", str(snap), "--tag", "cli-test",
            "--papers", "400", "--shard-size", "100",
            "--start-year", "2016", "--end-year", "2025",
        )
        assert code == 0
        assert "'cli-test'" in out

        code, out, _ = self.run_cli(capsys, "corpus", "import", str(snap))
        assert code == 0
        assert "verified snapshot 'cli-test'" in out
        assert "400 papers" in out

    def test_tampered_import_is_a_one_line_typed_error(
        self, capsys, tmp_path
    ):
        snap = tmp_path / "snap"
        export_snapshot(
            snap,
            ShardedCorpusConfig(**{**CONFIG, "total_papers": 100}),
            tag="t",
        )
        manifest_path = snap / "snapshot.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["tag"] = "evil"
        manifest_path.write_text(json.dumps(manifest))
        code, _, err = self.run_cli(capsys, "corpus", "import", str(snap))
        assert code == 1
        assert err.startswith("integrity error:")
        assert len(err.strip().splitlines()) == 1

    def test_legacy_corpus_spelling_still_generates(self, capsys, tmp_path):
        out_dir = tmp_path / "legacy"
        code, out, _ = self.run_cli(capsys, "corpus", str(out_dir))
        assert code == 0
        assert (out_dir / "papers.jsonl").exists()
