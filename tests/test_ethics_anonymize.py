"""Tests for repro.ethics.anonymize."""

import pytest

from repro.ethics.anonymize import Pseudonymizer, scrub_quasi_identifiers


class TestPseudonymizer:
    def test_stable_within_study(self):
        p = Pseudonymizer("study-a")
        assert p.pseudonym("Esther") == p.pseudonym("Esther")

    def test_unlinkable_across_studies(self):
        a = Pseudonymizer("study-a").pseudonym("Esther")
        b = Pseudonymizer("study-b").pseudonym("Esther")
        assert a != b

    def test_different_names_differ(self):
        p = Pseudonymizer("s")
        names = {p.pseudonym(f"Person {i}") for i in range(50)}
        assert len(names) == 50

    def test_apply_replaces_longest_first(self):
        p = Pseudonymizer("s")
        text = "Esther Jang led; Jang also coded."
        result = p.apply(text, ["Jang", "Esther Jang"])
        assert "Jang" not in result
        assert "Esther" not in result

    def test_apply_leaves_other_text(self):
        p = Pseudonymizer("s")
        assert p.apply("the mesh stayed up", ["Nobody"]) == "the mesh stayed up"

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            Pseudonymizer("")

    def test_mapping_returned_copy(self):
        p = Pseudonymizer("s")
        p.pseudonym("A")
        mapping = p.mapping()
        mapping["B"] = "X"
        assert "B" not in p.mapping()


class TestScrub:
    def test_email(self):
        assert scrub_quasi_identifiers("mail op@example.net now") == (
            "mail [EMAIL] now"
        )

    def test_ipv4(self):
        assert "[IP]" in scrub_quasi_identifiers("peer at 203.0.113.7 port 179")

    def test_phone(self):
        assert "[PHONE]" in scrub_quasi_identifiers("call +52 55 1234 5678 today")

    def test_asn(self):
        assert scrub_quasi_identifiers("AS64500 split off") == "[ASN] split off"

    def test_asn_preserved_when_disabled(self):
        result = scrub_quasi_identifiers("AS64500 split", scrub_asns=False)
        assert "AS64500" in result

    def test_blank_style(self):
        result = scrub_quasi_identifiers(
            "mail op@example.net", placeholder_style="blank"
        )
        assert result == "mail "

    def test_bad_style_rejected(self):
        with pytest.raises(ValueError):
            scrub_quasi_identifiers("x", placeholder_style="emoji")

    def test_plain_text_untouched(self):
        text = "the operators met at the exchange"
        assert scrub_quasi_identifiers(text) == text
