"""Tests for repro.textmine.stopwords."""

from repro.textmine.stopwords import STOPWORDS, is_stopword, remove_stopwords


def test_common_words_are_stopwords():
    for word in ("the", "and", "of", "with"):
        assert is_stopword(word)


def test_domain_words_are_not_stopwords():
    for word in ("network", "community", "measurement", "peering"):
        assert not is_stopword(word)


def test_case_insensitive():
    assert is_stopword("The")
    assert is_stopword("AND")


def test_remove_stopwords_preserves_order():
    assert remove_stopwords(["the", "community", "ran", "the", "network"]) == [
        "community", "ran", "network",
    ]


def test_remove_stopwords_empty():
    assert remove_stopwords([]) == []


def test_stopword_set_is_frozen():
    assert isinstance(STOPWORDS, frozenset)
