"""Tests for repro.core.focusgroup."""

import pytest

from repro.core.focusgroup import FocusGroup, Turn


@pytest.fixture
def group():
    g = FocusGroup("fg-1", participant_ids=["ana", "ben", "chi"])
    g.add_turn(Turn("mod", "What breaks most often?", is_facilitator=True))
    g.add_turn(Turn("ana", "The backhaul link, every storm, without fail."))
    g.add_turn(Turn("ben", "Power at the tower."))
    g.add_turn(Turn("mod", "Say more?", is_facilitator=True))
    g.add_turn(Turn("ana", "We lose the radio when the grid browns out, "
                           "and the spare batteries are dead."))
    return g


class TestConstruction:
    def test_unknown_speaker_rejected(self, group):
        with pytest.raises(KeyError):
            group.add_turn(Turn("ghost", "hi"))

    def test_facilitator_needs_no_registration(self, group):
        group.add_turn(Turn("another-mod", "ok", is_facilitator=True))

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            FocusGroup("x", [])

    def test_duplicate_participants_rejected(self):
        with pytest.raises(ValueError):
            FocusGroup("x", ["a", "a"])


class TestBalance:
    def test_speaking_shares_sum_to_one(self, group):
        shares = group.speaking_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["chi"] == 0.0

    def test_silent_participants(self, group):
        assert group.silent_participants() == ["chi"]

    def test_dominance_gini_positive_when_unbalanced(self, group):
        assert group.dominance_gini() > 0.3

    def test_balanced_group_low_gini(self):
        g = FocusGroup("fg", ["a", "b"])
        g.add_turn(Turn("a", "same length here now"))
        g.add_turn(Turn("b", "same length here too"))
        assert g.dominance_gini() == pytest.approx(0.0)

    def test_facilitator_share(self, group):
        share = group.facilitator_share()
        assert 0.0 < share < 0.5

    def test_empty_session(self):
        g = FocusGroup("fg", ["a"])
        assert g.facilitator_share() == 0.0
        assert g.speaking_shares() == {"a": 0.0}

    def test_balance_report_keys(self, group):
        report = group.balance_report()
        assert set(report) == {
            "speaking_shares", "dominance_gini", "silent_participants",
            "facilitator_share", "n_turns",
        }


class TestTranscript:
    def test_as_document(self, group):
        doc = group.as_document()
        assert doc.kind == "focus-group"
        assert "ana:" in doc.text
        assert "[facilitator]" in doc.text
        assert doc.metadata["participants"] == ["ana", "ben", "chi"]

    def test_turns_filter(self, group):
        assert len(group.turns()) == 5
        assert len(group.turns(include_facilitator=False)) == 3
