"""Tests for repro.io.jsonl."""

import json

import pytest

from repro.io.jsonl import append_jsonl, read_jsonl, write_jsonl


def test_roundtrip(tmp_path):
    path = tmp_path / "data.jsonl"
    records = [{"a": 1}, {"b": [1, 2]}, {"c": "unicode ✓"}]
    assert write_jsonl(path, records) == 3
    assert list(read_jsonl(path)) == records


def test_write_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "data.jsonl"
    write_jsonl(path, [{"x": 1}])
    assert path.exists()


def test_write_overwrites(tmp_path):
    path = tmp_path / "data.jsonl"
    write_jsonl(path, [{"a": 1}, {"a": 2}])
    write_jsonl(path, [{"b": 3}])
    assert list(read_jsonl(path)) == [{"b": 3}]


def test_append_accumulates(tmp_path):
    path = tmp_path / "data.jsonl"
    append_jsonl(path, [{"a": 1}])
    append_jsonl(path, [{"a": 2}])
    assert [r["a"] for r in read_jsonl(path)] == [1, 2]


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "data.jsonl"
    path.write_text('{"a": 1}\n\n{"a": 2}\n')
    assert len(list(read_jsonl(path))) == 2


def test_malformed_line_raises_with_location(tmp_path):
    path = tmp_path / "data.jsonl"
    path.write_text('{"a": 1}\nnot json\n')
    with pytest.raises(json.JSONDecodeError) as excinfo:
        list(read_jsonl(path))
    assert ":2:" in str(excinfo.value)


def test_keys_sorted_for_stable_diffs(tmp_path):
    path = tmp_path / "data.jsonl"
    write_jsonl(path, [{"z": 1, "a": 2}])
    assert path.read_text().startswith('{"a": 2')


class TestHardenedReads:
    def test_utf8_bom_tolerated(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_bytes(b'\xef\xbb\xbf{"a": 1}\n{"b": 2}\n')
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_truncated_final_line_reported_distinctly(self, tmp_path):
        from repro.errors import JsonlDecodeError, TruncatedFileError

        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n{"b": ')  # writer killed mid-record
        with pytest.raises(TruncatedFileError) as excinfo:
            list(read_jsonl(path))
        assert "truncated" in str(excinfo.value)
        assert excinfo.value.line_number == 2

        # Interior corruption is NOT a truncation.
        path.write_text('not json\n{"a": 1}\n')
        with pytest.raises(JsonlDecodeError) as excinfo:
            list(read_jsonl(path))
        assert not isinstance(excinfo.value, TruncatedFileError)

    def test_errors_are_json_decode_errors_for_old_callers(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('garbage\n')
        with pytest.raises(json.JSONDecodeError):
            list(read_jsonl(path))

    def test_on_error_skip_salvages_good_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\ngarbage\n{"b": 2}\n{"c": ')
        assert list(read_jsonl(path, on_error="skip")) == [{"a": 1}, {"b": 2}]

    def test_on_error_collect_reports_each_bad_line(self, tmp_path):
        from repro.errors import TruncatedFileError

        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\ngarbage\n{"b": ')
        errors = []
        records = list(read_jsonl(path, on_error="collect", errors=errors))
        assert records == [{"a": 1}]
        assert [e.line_number for e in errors] == [2, 3]
        assert isinstance(errors[1], TruncatedFileError)

    def test_on_error_validation(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n')
        with pytest.raises(ValueError, match="on_error"):
            list(read_jsonl(path, on_error="ignore"))
        with pytest.raises(ValueError, match="errors list"):
            list(read_jsonl(path, on_error="collect"))


class TestAtomicWrites:
    def test_crash_mid_write_keeps_old_file_intact(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"old": 1}, {"old": 2}])

        def torn_records():
            yield {"new": 1}
            raise RuntimeError("simulated kill -9 mid-write")

        with pytest.raises(RuntimeError):
            write_jsonl(path, torn_records())
        # Old file untouched, no temp debris: never a torn dataset.
        assert list(read_jsonl(path)) == [{"old": 1}, {"old": 2}]
        assert list(tmp_path.iterdir()) == [path]

    def test_crash_on_first_write_leaves_nothing(self, tmp_path):
        path = tmp_path / "data.jsonl"

        def bad():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            write_jsonl(path, bad())
        assert list(tmp_path.iterdir()) == []

    def test_successful_write_leaves_no_temp(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"a": 1}])
        assert list(tmp_path.iterdir()) == [path]

    def test_append_preserves_existing_on_crash(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"old": 1}])

        def torn_records():
            yield {"new": 1}
            raise RuntimeError("killed")

        with pytest.raises(RuntimeError):
            append_jsonl(path, torn_records())
        # Appends can tear only the tail; salvage mode recovers the rest.
        salvaged = list(read_jsonl(path, on_error="skip"))
        assert salvaged[0] == {"old": 1}


class TestSalvageTail:
    """salvage_jsonl_tail edge cases: the resume path must repair any
    torn tail a killed writer can leave, and append safely afterwards."""

    def _salvage(self, path):
        from repro.io.jsonl import salvage_jsonl_tail

        return salvage_jsonl_tail(path)

    def test_missing_file_is_a_noop(self, tmp_path):
        assert self._salvage(tmp_path / "absent.jsonl") is None

    def test_empty_file_is_a_noop(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_bytes(b"")
        assert self._salvage(path) is None
        assert path.read_bytes() == b""

    def test_clean_file_is_a_noop(self, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(path, [{"a": 1}])
        before = path.read_bytes()
        assert self._salvage(path) is None
        assert path.read_bytes() == before

    def test_file_that_is_only_a_torn_record(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_bytes(b'{"half": tru')  # writer died mid-first-record
        assert self._salvage(path) == "truncated"
        assert path.read_bytes() == b""
        # resume: appending to the emptied file works normally
        append_jsonl(path, [{"fresh": 1}])
        assert list(read_jsonl(path)) == [{"fresh": 1}]

    def test_torn_tail_spanning_multiple_partial_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        # two good records, then a tail that glued two partial writes
        # together without a newline between them
        path.write_bytes(
            b'{"a": 1}\n{"b": 2}\n{"c": 3}{"d": '
        )
        assert self._salvage(path) == "truncated"
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]
        append_jsonl(path, [{"e": 5}])
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}, {"e": 5}]

    def test_final_record_missing_its_newline_is_closed(self, tmp_path):
        path = tmp_path / "data.jsonl"
        # the writer died between the record bytes and the newline: the
        # record is complete JSON and must survive, not be truncated
        path.write_bytes(b'{"a": 1}\n{"b": 2}')
        assert self._salvage(path) == "closed"
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]
        append_jsonl(path, [{"c": 3}])
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_salvage_without_repair_corrupts_the_next_append(self, tmp_path):
        """Why salvage exists: a torn tail silently eats the next append."""
        path = tmp_path / "data.jsonl"
        path.write_bytes(b'{"a": 1}\n{"torn": ')
        append_jsonl(path, [{"b": 2}])  # concatenates onto the torn tail
        with pytest.raises(json.JSONDecodeError):
            list(read_jsonl(path))

    def test_salvage_is_idempotent(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_bytes(b'{"a": 1}\n{"torn": ')
        assert self._salvage(path) == "truncated"
        assert self._salvage(path) is None
        path2 = tmp_path / "closed.jsonl"
        path2.write_bytes(b'{"a": 1}')
        assert self._salvage(path2) == "closed"
        assert self._salvage(path2) is None

    def test_torn_tail_mid_utf8_multibyte_sequence(self, tmp_path):
        """A writer killed partway through a multibyte character.

        The torn tail is not just invalid JSON — it is invalid UTF-8
        (the record was cut between the bytes of a single codepoint),
        so the decode itself fails before json.loads gets a say.  The
        salvage must treat that exactly like any other torn record:
        truncate back to the last complete line.
        """
        path = tmp_path / "data.jsonl"
        full = '{"name": "café"}'.encode("utf-8")
        # cut inside the 2-byte UTF-8 sequence for é (0xC3 0xA9)
        torn = full[: full.index(b"\xc3") + 1]
        path.write_bytes(b'{"a": 1}\n' + torn)
        assert self._salvage(path) == "truncated"
        assert list(read_jsonl(path)) == [{"a": 1}]
        append_jsonl(path, [{"b": 2}])
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_file_that_is_exactly_an_unterminated_header_line(self, tmp_path):
        """A file whose whole content is one valid-JSON header, no newline.

        This is what a cache writer killed between writing its header
        line and the newline leaves behind: complete JSON that must be
        closed, not truncated away — losing the header would turn a
        recoverable entry into an empty file.
        """
        path = tmp_path / "entry.jsonl"
        header = {"artifact": "kind", "version": 1, "config": {}, "count": 0}
        path.write_bytes(json.dumps(header).encode("utf-8"))
        assert self._salvage(path) == "closed"
        assert list(read_jsonl(path)) == [header]

    def test_salvage_events_are_counted(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry, use_metrics

        metrics = MetricsRegistry()
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(b'{"x": ')
        unterminated = tmp_path / "unterminated.jsonl"
        unterminated.write_bytes(b'{"x": 1}')
        with use_metrics(metrics):
            assert self._salvage(torn) == "truncated"
            assert self._salvage(unterminated) == "closed"
        counts = metrics.snapshot()["counters"]
        assert counts["io.jsonl.tails_truncated"] == 1
        assert counts["io.jsonl.tails_closed"] == 1
