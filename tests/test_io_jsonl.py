"""Tests for repro.io.jsonl."""

import json

import pytest

from repro.io.jsonl import append_jsonl, read_jsonl, write_jsonl


def test_roundtrip(tmp_path):
    path = tmp_path / "data.jsonl"
    records = [{"a": 1}, {"b": [1, 2]}, {"c": "unicode ✓"}]
    assert write_jsonl(path, records) == 3
    assert list(read_jsonl(path)) == records


def test_write_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "data.jsonl"
    write_jsonl(path, [{"x": 1}])
    assert path.exists()


def test_write_overwrites(tmp_path):
    path = tmp_path / "data.jsonl"
    write_jsonl(path, [{"a": 1}, {"a": 2}])
    write_jsonl(path, [{"b": 3}])
    assert list(read_jsonl(path)) == [{"b": 3}]


def test_append_accumulates(tmp_path):
    path = tmp_path / "data.jsonl"
    append_jsonl(path, [{"a": 1}])
    append_jsonl(path, [{"a": 2}])
    assert [r["a"] for r in read_jsonl(path)] == [1, 2]


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "data.jsonl"
    path.write_text('{"a": 1}\n\n{"a": 2}\n')
    assert len(list(read_jsonl(path))) == 2


def test_malformed_line_raises_with_location(tmp_path):
    path = tmp_path / "data.jsonl"
    path.write_text('{"a": 1}\nnot json\n')
    with pytest.raises(json.JSONDecodeError) as excinfo:
        list(read_jsonl(path))
    assert ":2:" in str(excinfo.value)


def test_keys_sorted_for_stable_diffs(tmp_path):
    path = tmp_path / "data.jsonl"
    write_jsonl(path, [{"z": 1, "a": 2}])
    assert path.read_text().startswith('{"a": 2')
