"""Tests for repro.textmine.tokenize."""

import pytest

from repro.textmine.tokenize import (
    Token,
    ngrams,
    normalize,
    sentences,
    tokens,
    word_tokens,
)


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize("a  b\t c\n d") == "a b c d"

    def test_unifies_curly_quotes(self):
        assert normalize("‘a’ “b”") == "'a' \"b\""

    def test_unifies_dashes(self):
        assert normalize("a–b—c") == "a-b-c"

    def test_strips_edges(self):
        assert normalize("  hello  ") == "hello"

    def test_empty_string(self):
        assert normalize("") == ""


class TestSentences:
    def test_basic_split(self):
        assert sentences("We met operators. They ran IXPs.") == [
            "We met operators.",
            "They ran IXPs.",
        ]

    def test_keeps_abbreviations_together(self):
        result = sentences("See Rosa et al. 2021 for details. It is good.")
        assert len(result) == 2
        assert "et al." in result[0]

    def test_question_and_exclamation(self):
        result = sentences("Why peer? Because it is cheaper! Indeed.")
        assert len(result) == 3

    def test_single_sentence_no_terminal(self):
        assert sentences("no terminal punctuation") == [
            "no terminal punctuation"
        ]

    def test_empty_text(self):
        assert sentences("") == []

    def test_numbers_can_start_sentences(self):
        result = sentences("We saw growth. 40 ISPs joined.")
        assert result[1].startswith("40")


class TestTokens:
    def test_spans_recover_surface(self):
        text = "peering, at IXPs!"
        for token in tokens(text):
            assert text[token.start:token.end] == token.text

    def test_word_flag(self):
        token_list = list(tokens("hi!"))
        assert token_list[0].is_word
        assert not token_list[1].is_word

    def test_token_lower(self):
        assert Token("BGP", 0, 3).lower() == "bgp"


class TestWordTokens:
    def test_drops_punctuation(self):
        assert word_tokens("Mesh networks, community-run!") == [
            "mesh", "networks", "community-run",
        ]

    def test_case_preserved_when_requested(self):
        assert word_tokens("BGP table", lowercase=False) == ["BGP", "table"]

    def test_apostrophes_stay_joined(self):
        assert word_tokens("don't stop") == ["don't", "stop"]

    def test_numbers_included(self):
        assert word_tokens("AS64500 announced 3 prefixes") == [
            "as64500", "announced", "3", "prefixes",
        ]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert ngrams(["x", "y"], 1) == [("x",), ("y",)]

    def test_n_longer_than_sequence(self):
        assert ngrams(["a"], 3) == []

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)
