"""Tests for repro.bibliometrics.synthgen."""

import pytest

from repro.bibliometrics.methods_detect import uses_human_methods
from repro.bibliometrics.synthgen import (
    SyntheticCorpusConfig,
    default_venue_profiles,
    generate_corpus,
)

CONFIG = SyntheticCorpusConfig(
    start_year=2020, end_year=2022, seed=42, authors_per_venue_pool=30
)


@pytest.fixture(scope="module")
def generated():
    return generate_corpus(CONFIG)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a, _ = generate_corpus(CONFIG)
        b, _ = generate_corpus(CONFIG)
        assert a.to_records() == b.to_records()

    def test_different_seed_differs(self):
        a, _ = generate_corpus(CONFIG)
        other = SyntheticCorpusConfig(
            start_year=2020, end_year=2022, seed=43,
            authors_per_venue_pool=30,
        )
        b, _ = generate_corpus(other)
        assert a.to_records() != b.to_records()


class TestStructure:
    def test_paper_volume_matches_profiles(self, generated):
        corpus, _ = generated
        profiles = {p.venue_id: p for p in default_venue_profiles()}
        years = 3
        for venue in corpus.venues():
            expected = profiles[venue.venue_id].papers_per_year * years
            assert len(corpus.papers(venue_id=venue.venue_id)) == expected

    def test_references_point_backwards(self, generated):
        corpus, _ = generated
        for paper in corpus:
            for ref in paper.references:
                assert corpus.paper(ref).year <= paper.year

    def test_authors_publish_at_their_venue_pool(self, generated):
        corpus, _ = generated
        for paper in corpus.papers(venue_id="chi-like")[:20]:
            assert all(a.startswith("chi-like-") for a in paper.author_ids)

    def test_bad_year_range_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(
                SyntheticCorpusConfig(start_year=2022, end_year=2020)
            )


class TestCalibration:
    def test_ground_truth_matches_detection_direction(self, generated):
        corpus, truth = generated
        # Every ground-truth human-methods paper is detectable (the
        # generator plants real lexicon phrases).
        for paper_id in list(truth.human_methods)[:50]:
            assert uses_human_methods(corpus.paper(paper_id))

    def test_networking_vs_hci_adoption_gap(self, generated):
        corpus, truth = generated
        def truth_share(venue_id):
            papers = corpus.papers(venue_id=venue_id)
            flagged = sum(1 for p in papers if p.paper_id in truth.human_methods)
            return flagged / len(papers)
        assert truth_share("cscw-like") > 5 * max(truth_share("sigcomm-like"), 0.001)

    def test_positionality_only_in_human_method_papers(self, generated):
        _, truth = generated
        assert truth.positionality <= set(truth.human_methods)

    def test_positionality_statements_in_body(self, generated):
        corpus, truth = generated
        for paper_id in list(truth.positionality)[:10]:
            assert "positionality" in corpus.paper(paper_id).body.lower()

    def test_networking_topics_skew_technical(self, generated):
        corpus, _ = generated
        topics = corpus.topic_counts(venue_id="sigcomm-like")
        technical = topics.get("datacenter", 0) + topics.get("transport", 0)
        community = topics.get("community-networks", 0)
        assert technical > 3 * max(community, 1)
