"""Tests for repro.textmine.similarity."""

import numpy as np
import pytest

from repro.textmine.similarity import (
    cosine_similarity,
    jaccard_similarity,
    most_similar,
)


class TestCosine:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vector_yields_zero(self):
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity([1, 2], [1, 2, 3])

    def test_opposite_vectors(self):
        assert cosine_similarity([1, 1], [-1, -1]) == pytest.approx(-1.0)


class TestJaccard:
    def test_disjoint_sets(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_identical_sets(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_partial_overlap(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_accepts_sequences(self):
        assert jaccard_similarity(["a", "a", "b"], ["b"]) == pytest.approx(0.5)


class TestMostSimilar:
    def test_ranks_by_similarity(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0], [0.7, 0.7]])
        result = most_similar(np.array([1.0, 0.0]), matrix, k=3)
        assert result[0][0] == 0
        assert result[1][0] == 2
        assert result[2][0] == 1

    def test_k_limits_results(self):
        matrix = np.eye(5)
        assert len(most_similar(np.ones(5), matrix, k=2)) == 2

    def test_zero_rows_score_zero(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        result = dict(most_similar(np.array([1.0, 0.0]), matrix, k=2))
        assert result[0] == 0.0

    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError):
            most_similar(np.ones(3), np.eye(2), k=1)
