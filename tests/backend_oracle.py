"""Classic-vs-columnar comparison helpers shared by the backend tests.

``tests/test_experiments_columnar.py`` and ``scripts/columnar_smoke.py``
compare the two corpus backends the same way: run the experiment once
per backend and require byte-identical result fingerprints.  The
helpers live here exactly once instead of being pasted into each file.
"""

import hashlib
import json

from repro.experiments.registry import get_experiment, make_spec

#: Experiments that consume the shared corpus — the ones the backend
#: routing can affect at all, and therefore the equality surface.
CORPUS_EXPERIMENTS = ("E1", "E2", "E3", "E12")


def result_fingerprint(result) -> str:
    """sha256 over the result's cache payload (carries no wall-clock)."""
    blob = json.dumps(result.to_payload(), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def run_on_backend(
    experiment_id: str,
    backend: str,
    *,
    preset: str = "fast",
    seed: int = 0,
    shard_size: int | None = None,
    overrides: dict | None = None,
):
    """Run one experiment with the corpus backend forced to ``backend``."""
    merged: dict = {"corpus.backend": backend}
    if shard_size is not None:
        merged["corpus.shard_size"] = shard_size
    if overrides:
        merged.update(overrides)
    spec = make_spec(experiment_id, preset, seed=seed, overrides=merged)
    return get_experiment(experiment_id)(spec)


def assert_backends_agree(
    experiment_id: str,
    *,
    preset: str = "fast",
    seed: int = 0,
    shard_size: int = 1500,
) -> str:
    """Run classic then columnar; require equal fingerprints.

    Returns the (shared) fingerprint so callers can report or compare
    it further.  An awkward ``shard_size`` default is deliberate: the
    equality must hold at shard boundaries that split the corpus
    unevenly, not just at the tidy preset geometry.
    """
    classic = result_fingerprint(
        run_on_backend(experiment_id, "classic", preset=preset, seed=seed)
    )
    columnar = result_fingerprint(
        run_on_backend(
            experiment_id, "columnar",
            preset=preset, seed=seed, shard_size=shard_size,
        )
    )
    assert classic == columnar, (
        f"{experiment_id} {preset} seed={seed}: "
        f"classic {classic} != columnar {columnar}"
    )
    return classic
