"""Tests for repro.runtime.runner.

Synthetic experiments (via a patched ``get_experiment``) cover timing
and failure paths on a fake clock; the real E1–E13 suite covers the
acceptance scenario: crash E6 twice, retry, checkpoint, replay without
re-execution.
"""

import pytest

from repro.errors import CheckFailure
from repro.experiments import registry
from repro.experiments.registry import ExperimentResult
from repro.runtime.faultinject import FaultInjector, InjectedFault
from repro.runtime.runner import (
    RetryPolicy,
    RunRecord,
    SuiteReport,
    SuiteRunner,
)


class FakeClock:
    """A manually-advanced monotonic clock with a matching sleep."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def ok_result(experiment_id="EX", checks=None):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="synthetic",
        claim="synthetic",
        checks={"always": True} if checks is None else checks,
    )


def patch_experiment(monkeypatch, fn):
    """Route the runner's registry lookup to a synthetic experiment."""
    monkeypatch.setattr("repro.runtime.runner.get_experiment", lambda eid: fn)


class TestRetryTiming:
    def test_backoff_sequence_without_jitter(self, monkeypatch):
        clock = FakeClock()
        failures = iter([True, True, False])

        def flaky(seed=0, fast=True):
            if next(failures):
                raise RuntimeError("transient")
            return ok_result()

        patch_experiment(monkeypatch, flaky)
        runner = SuiteRunner(
            policy=RetryPolicy(
                retries=3, backoff_base=1.0, backoff_factor=2.0, jitter=0.0
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        record = runner.run_one("E1")
        assert record.status == "ok"
        assert record.attempts == 3
        assert clock.sleeps == [1.0, 2.0]

    def test_backoff_respects_max(self, monkeypatch):
        clock = FakeClock()
        patch_experiment(
            monkeypatch, lambda seed=0, fast=True: (_ for _ in ()).throw(OSError())
        )
        runner = SuiteRunner(
            policy=RetryPolicy(
                retries=4, backoff_base=1.0, backoff_factor=10.0,
                max_backoff=5.0, jitter=0.0,
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        record = runner.run_one("E1")
        assert record.status == "error"
        assert record.attempts == 5
        assert clock.sleeps == [1.0, 5.0, 5.0, 5.0]

    def test_jitter_is_seed_deterministic(self, monkeypatch):
        def boom(seed=0, fast=True):
            raise RuntimeError("always")

        def sleeps_for(seed):
            clock = FakeClock()
            patch_experiment(monkeypatch, boom)
            runner = SuiteRunner(
                policy=RetryPolicy(retries=3, backoff_base=1.0, jitter=0.5),
                seed=seed,
                clock=clock,
                sleep=clock.sleep,
            )
            runner.run_one("E1")
            return clock.sleeps

        assert sleeps_for(0) == sleeps_for(0)
        assert sleeps_for(0) != sleeps_for(1)

    def test_no_sleep_on_success(self, monkeypatch):
        clock = FakeClock()
        patch_experiment(monkeypatch, lambda seed=0, fast=True: ok_result())
        runner = SuiteRunner(retries=3, clock=clock, sleep=clock.sleep)
        record = runner.run_one("E1")
        assert record.attempts == 1
        assert clock.sleeps == []


class TestIsolation:
    def test_crash_recorded_and_suite_continues(self):
        injector = FaultInjector()
        injector.register("experiment:E4", times=1)
        runner = SuiteRunner(fault_injector=injector)
        report = runner.run_all(["E4", "E11"])
        assert [r.status for r in report] == ["error", "ok"]
        assert report.errors[0].error_type == "InjectedFault"
        assert not report.ok

    def test_keep_going_false_reraises(self):
        injector = FaultInjector()
        injector.register("experiment:E4", times=1)
        runner = SuiteRunner(keep_going=False, fault_injector=injector)
        with pytest.raises(InjectedFault):
            runner.run_all(["E4"])

    def test_unknown_id_recorded_with_keep_going(self):
        record = SuiteRunner().run_one("E99")
        assert record.status == "error"
        assert record.error_type == "UnknownExperimentError"
        assert record.attempts == 0

    def test_unknown_id_raises_without_keep_going(self):
        with pytest.raises(KeyError):
            SuiteRunner(keep_going=False).run_one("E99")

    def test_corrupted_result_is_an_error(self):
        injector = FaultInjector()
        injector.register("experiment:E4", mode="corrupt", times=1)
        record = SuiteRunner(fault_injector=injector).run_one("E4")
        assert record.status == "error"
        assert record.error_type == "ExperimentError"
        assert "NoneType" in record.error

    def test_strict_checks_turns_shape_failure_into_error(self, monkeypatch):
        patch_experiment(
            monkeypatch,
            lambda seed=0, fast=True: ok_result(checks={"bad": False}),
        )
        record = SuiteRunner(strict_checks=True).run_one("E1")
        assert record.status == "error"
        assert record.error_type == "CheckFailure"
        assert "bad" in record.error


class TestDeadline:
    def test_hang_hits_deadline(self):
        injector = FaultInjector()
        injector.register(
            "experiment:E11", mode="hang", hang_seconds=0.5, times=1
        )
        runner = SuiteRunner(timeout=0.05, fault_injector=injector)
        record = runner.run_one("E11")
        assert record.status == "timeout"
        assert record.error_type == "BudgetExceeded"
        assert record.attempts == 1  # the budget spans attempts: no retry

    def test_timeout_does_not_retry(self):
        injector = FaultInjector()
        injector.register(
            "experiment:E11", mode="hang", hang_seconds=0.5, times=5
        )
        runner = SuiteRunner(
            retries=3, timeout=0.05, fault_injector=injector,
        )
        record = runner.run_one("E11")
        assert record.status == "timeout"
        assert record.attempts == 1

    def test_fast_experiment_beats_deadline(self):
        record = SuiteRunner(timeout=60.0).run_one("E11")
        assert record.status == "ok"


class TestCheckpoint:
    def test_resume_skips_completed(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        first = SuiteRunner(checkpoint=path).run_all(["E4", "E11"])
        assert first.ok

        probe = FaultInjector()
        probe.register("experiment:E4", times=0)
        probe.register("experiment:E11", times=0)
        probe.register("experiment:E12", times=0)
        second = SuiteRunner(checkpoint=path, fault_injector=probe).run_all(
            ["E4", "E11", "E12"]
        )
        assert [r.from_checkpoint for r in second] == [True, True, False]
        stats = probe.stats()
        assert stats["experiment:E4"]["calls"] == 0
        assert stats["experiment:E11"]["calls"] == 0
        assert stats["experiment:E12"]["calls"] == 1

    def test_checkpoint_keyed_by_seed_and_fast(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        SuiteRunner(checkpoint=path).run_all(["E11"], seed=0)
        probe = FaultInjector()
        probe.register("experiment:E11", times=0)
        report = SuiteRunner(checkpoint=path, fault_injector=probe).run_all(
            ["E11"], seed=1
        )
        assert not report.records[0].from_checkpoint
        assert probe.stats()["experiment:E11"]["calls"] == 1

    def test_failed_runs_are_retried_on_resume(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        injector = FaultInjector()
        injector.register("experiment:E11", times=1)
        first = SuiteRunner(checkpoint=path, fault_injector=injector).run_all(
            ["E11"]
        )
        assert first.records[0].status == "error"
        second = SuiteRunner(checkpoint=path).run_all(["E11"])
        assert second.records[0].status == "ok"
        assert not second.records[0].from_checkpoint

    def test_missing_checkpoint_file_is_fine(self, tmp_path):
        runner = SuiteRunner(checkpoint=str(tmp_path / "absent.jsonl"))
        assert runner.run_all(["E11"]).ok


class TestAcceptance:
    def test_crash_e6_twice_then_succeed_with_replay(self, tmp_path):
        """The ISSUE acceptance scenario, execution-count probe included."""
        path = str(tmp_path / "ckpt.jsonl")
        calls = {}
        real_get = registry.get_experiment

        def counting_get(experiment_id):
            run_fn = real_get(experiment_id)

            def counted(seed=0, fast=True):
                calls[experiment_id] = calls.get(experiment_id, 0) + 1
                return run_fn(seed=seed, fast=fast)

            return counted

        import repro.runtime.runner as runner_module

        original = runner_module.get_experiment
        runner_module.get_experiment = counting_get
        try:
            injector = FaultInjector()
            injector.register("experiment:E6", times=2)
            runner = SuiteRunner(
                retries=2,
                checkpoint=path,
                fault_injector=injector,
                sleep=lambda seconds: None,
            )
            report = runner.run_all(seed=0, fast=True)
            assert len(report) == len(registry.all_experiments())
            assert all(r.shape_holds for r in report)
            e6 = next(r for r in report if r.experiment_id == "E6")
            assert e6.attempts == 3
            # Injection point saw 3 attempts, injected 2 crashes; the
            # real experiment body therefore executed exactly once.
            assert injector.stats()["experiment:E6"] == {"calls": 3, "fired": 2}
            assert calls["E6"] == 1
            assert all(calls[r.experiment_id] == 1
                       for r in report if r.experiment_id != "E6")

            calls.clear()
            replay = SuiteRunner(checkpoint=path).run_all(seed=0, fast=True)
            assert calls == {}  # nothing re-executed
            assert all(r.from_checkpoint for r in replay)
            assert replay.summary()["records"] == report.summary()["records"]
        finally:
            runner_module.get_experiment = original


class TestRecordsAndReport:
    def test_run_record_roundtrip(self):
        record = RunRecord(
            experiment_id="E2",
            status="error",
            seed=4,
            fast=False,
            attempts=2,
            duration=1.25,
            error="boom",
            error_type="RuntimeError",
        )
        replayed = RunRecord.from_record(record.to_record())
        assert replayed.from_checkpoint
        assert replayed.to_record() == record.to_record()

    def test_shape_holds_only_when_ok(self):
        bad = RunRecord("E1", "error", 0, True, checks={})
        assert not bad.shape_holds
        good = RunRecord("E1", "ok", 0, True, checks={"c": True})
        assert good.shape_holds

    def test_report_summary_counts(self):
        report = SuiteReport(
            records=[
                RunRecord("E1", "ok", 0, True, checks={"c": True}),
                RunRecord("E2", "error", 0, True, error="x", error_type="X"),
                RunRecord("E3", "timeout", 0, True),
            ]
        )
        summary = report.summary()
        assert summary["total"] == 3
        assert summary["ok"] == 1
        assert summary["error"] == 1
        assert summary["timeout"] == 1
        assert not summary["all_ok"]
        assert len(report) == 3
        assert [r.experiment_id for r in report] == ["E1", "E2", "E3"]


def test_registry_run_all_still_returns_results():
    results = registry.run_all(seed=0, fast=True)
    assert len(results) == len(registry.all_experiments())
    assert all(isinstance(r, ExperimentResult) for r in results)
    assert all(r.shape_holds for r in results)


def test_experiment_result_require_raises_check_failure():
    result = ExperimentResult(
        experiment_id="E1", title="t", claim="c", checks={"x": False, "y": True}
    )
    with pytest.raises(CheckFailure) as excinfo:
        result.require()
    assert excinfo.value.failed_checks == ("x",)
    ok = ExperimentResult(experiment_id="E1", title="t", claim="c")
    ok.require()  # no checks -> no failure


class TestObservability:
    def test_span_tree_per_experiment_and_attempt(self, monkeypatch):
        from repro.obs.tracing import Tracer

        failures = iter([True, False])

        def flaky(seed=0, fast=True):
            if next(failures):
                raise RuntimeError("transient")
            return ok_result()

        patch_experiment(monkeypatch, flaky)
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        runner = SuiteRunner(
            retries=1, tracer=tracer, clock=clock, sleep=clock.sleep
        )
        report = runner.run_all(["E1"])
        assert report.ok

        by_name = {}
        for span in tracer.finished:
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["suite"]) == 1
        assert len(by_name["experiment"]) == 1
        assert len(by_name["attempt"]) == 2
        experiment = by_name["experiment"][0]
        assert experiment.parent_id == by_name["suite"][0].span_id
        assert all(
            a.parent_id == experiment.span_id for a in by_name["attempt"]
        )
        assert by_name["attempt"][0].status == "error"
        assert by_name["attempt"][1].status == "ok"
        assert experiment.attributes["status"] == "ok"
        assert experiment.attributes["attempts"] == 2

    def test_registry_stage_span_nests_under_attempt(self):
        """The one-decorator stage span wraps the real experiment body."""
        from repro.obs.tracing import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            report = SuiteRunner(tracer=tracer).run_all(["E11"])
        assert report.ok
        stage = next(s for s in tracer.finished if s.name == "e11.run")
        attempt = next(s for s in tracer.finished if s.name == "attempt")
        assert stage.parent_id == attempt.span_id
        assert stage.attributes["experiment_id"] == "E11"
        assert stage.attributes["stage"] == "run"

    def test_retry_and_status_counters(self, monkeypatch):
        from repro.obs.metrics import MetricsRegistry

        failures = iter([True, True, False])

        def flaky(seed=0, fast=True):
            if next(failures):
                raise RuntimeError("transient")
            return ok_result()

        patch_experiment(monkeypatch, flaky)
        clock = FakeClock()
        metrics = MetricsRegistry()
        runner = SuiteRunner(
            retries=3, metrics=metrics, clock=clock, sleep=clock.sleep
        )
        assert runner.run_one("E1").status == "ok"
        counters = metrics.snapshot()["counters"]
        assert counters["runner.retries"] == 2
        assert counters["runner.status.ok"] == 1

    def test_checkpoint_hit_counter(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        path = str(tmp_path / "ckpt.jsonl")
        SuiteRunner(checkpoint=path).run_all(["E11"])
        metrics = MetricsRegistry()
        SuiteRunner(checkpoint=path, metrics=metrics).run_all(["E11"])
        assert metrics.snapshot()["counters"]["runner.checkpoint_hits"] == 1

    def test_timeout_marks_leak_and_worker_is_daemon(self):
        import threading

        from repro.obs.metrics import MetricsRegistry

        injector = FaultInjector()
        injector.register(
            "experiment:E11", mode="hang", hang_seconds=0.5, times=1
        )
        metrics = MetricsRegistry()
        runner = SuiteRunner(
            timeout=0.05, fault_injector=injector, metrics=metrics
        )
        record = runner.run_one("E11")
        assert record.status == "timeout"
        counters = metrics.snapshot()["counters"]
        assert counters["runner.leaked_threads"] == 1
        assert counters["runner.timeouts"] == 1
        # The abandoned worker must not keep the interpreter alive.
        workers = [
            t for t in threading.enumerate() if t.name == "repro-E11"
        ]
        assert all(t.daemon for t in workers)

    def test_profile_out_dumps_pstats(self, tmp_path):
        import pstats

        runner = SuiteRunner(profile_dir=str(tmp_path))
        assert runner.run_one("E11").status == "ok"
        dump = tmp_path / "E11.pstats"
        assert dump.exists()
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0

    def test_untraced_run_allocates_no_spans(self):
        """Default runner (null tracer/metrics) must record nothing."""
        from repro.obs.metrics import NullMetrics
        from repro.obs.tracing import NullTracer

        runner = SuiteRunner()
        assert isinstance(runner.tracer, NullTracer)
        assert isinstance(runner.metrics, NullMetrics)
        assert runner.run_one("E11").status == "ok"
        assert not hasattr(runner.tracer, "finished")


def test_negative_retries_treated_as_zero(monkeypatch):
    monkeypatch.setattr(
        "repro.runtime.runner.get_experiment",
        lambda eid: (lambda seed=0, fast=True: ok_result()),
    )
    record = SuiteRunner(retries=-1).run_one("E1")
    assert record.status == "ok"
    assert record.attempts == 1
