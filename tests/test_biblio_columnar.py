"""Tests for repro.bibliometrics.columnar."""

import numpy as np
import pytest

from repro.bibliometrics.columnar import (
    HUMAN_FAMILY_ORDER,
    ColumnarCorpus,
    TextColumn,
    decode_shard,
    encode_shard,
    merge_fingerprints,
    paper_id_for,
)
from repro.bibliometrics.corpus import Paper
from repro.bibliometrics.shardgen import (
    ShardedCorpusConfig,
    generate_columnar_corpus,
    generate_shard,
)

CONFIG = ShardedCorpusConfig(
    start_year=2018, end_year=2025, seed=7, total_papers=1500, shard_size=400
)


@pytest.fixture(scope="module")
def corpus() -> ColumnarCorpus:
    return generate_columnar_corpus(CONFIG)


class TestTextColumn:
    def test_roundtrip(self):
        strings = ["alpha", "", "gamma delta", "é-accented"]
        column = TextColumn.from_strings(strings)
        assert len(column) == 4
        assert list(column) == strings
        assert column[2] == "gamma delta"

    def test_empty(self):
        column = TextColumn.from_strings([])
        assert len(column) == 0
        assert list(column) == []


class TestShardCodec:
    def test_encode_decode_identity(self, corpus):
        shard = corpus.shard(1)
        clone = decode_shard(encode_shard(shard))
        assert clone.index == shard.index
        assert clone.paper_offset == shard.paper_offset
        assert clone.n_papers == shard.n_papers
        np.testing.assert_array_equal(clone.year, shard.year)
        np.testing.assert_array_equal(clone.author_values, shard.author_values)
        np.testing.assert_array_equal(clone.ref_indptr, shard.ref_indptr)
        assert clone.title.blob == shard.title.blob
        assert clone.body.blob == shard.body.blob

    def test_decoded_shard_fingerprints_identically(self, corpus):
        # The cold/warm-cache invariance hinges on exactly this.
        shard = corpus.shard(2)
        assert decode_shard(encode_shard(shard)).fingerprint() == shard.fingerprint()

    def test_records_are_json_safe(self, corpus):
        import json

        records = encode_shard(corpus.shard(0))
        for record in records:
            json.dumps(record)

    def test_decode_rejects_missing_columns(self, corpus):
        records = encode_shard(corpus.shard(0))
        with pytest.raises(ValueError, match="missing columns"):
            decode_shard(records[:-1])

    def test_decode_rejects_headerless_stream(self):
        with pytest.raises(ValueError, match="missing header"):
            decode_shard([{"column": "year", "dtype": "int32", "data": ""}])


class TestFingerprints:
    def test_merge_is_order_sensitive_and_deterministic(self):
        a = merge_fingerprints(["aa", "bb"])
        assert a == merge_fingerprints(["aa", "bb"])
        assert a != merge_fingerprints(["bb", "aa"])

    def test_shard_fingerprint_changes_with_content(self, corpus):
        shard = corpus.shard(0)
        fingerprint = shard.fingerprint()
        original = shard.year[0]
        shard.year[0] = original + 1
        try:
            assert shard.fingerprint() != fingerprint
        finally:
            shard.year[0] = original

    def test_corpus_fingerprint_streams_when_unrecorded(self, corpus):
        rebuilt = ColumnarCorpus(
            corpus.vocab,
            corpus.shard_sizes(),
            lambda i: generate_shard(CONFIG, None, i),
        )
        assert rebuilt.fingerprint() == corpus.fingerprint()


class TestCorpusAPI:
    def test_len_and_iteration(self, corpus):
        assert len(corpus) == CONFIG.total_papers
        papers = list(corpus)
        assert len(papers) == CONFIG.total_papers
        assert all(isinstance(p, Paper) for p in papers[:5])
        assert papers[0].paper_id == paper_id_for(0)

    def test_paper_lookup(self, corpus):
        paper = corpus.paper(paper_id_for(7))
        assert paper.paper_id == "p00000007"
        assert CONFIG.start_year <= paper.year <= CONFIG.end_year
        with pytest.raises(KeyError):
            corpus.paper(paper_id_for(CONFIG.total_papers))
        with pytest.raises(KeyError):
            corpus.paper("bogus")

    def test_author_and_venue_lookup(self, corpus):
        author = corpus.authors()[0]
        assert corpus.author(author.author_id) == author
        with pytest.raises(KeyError):
            corpus.author("no-such-a999999")
        venue = corpus.venues()[0]
        assert corpus.venue(venue.venue_id) == venue
        with pytest.raises(KeyError):
            corpus.venue("no-such-venue")

    def test_references_resolve_to_earlier_years(self, corpus):
        checked = 0
        for paper in corpus.papers(year=CONFIG.end_year):
            for ref in paper.references[:3]:
                cited = corpus.paper(ref)
                assert cited.year < paper.year
                checked += 1
            if checked > 30:
                break
        assert checked > 0

    def test_papers_filters_match_manual_scan(self, corpus):
        venue_id = corpus.venues()[0].venue_id
        year = CONFIG.start_year + 1
        filtered = corpus.papers(venue_id=venue_id, year=year)
        manual = [
            p for p in corpus if p.venue_id == venue_id and p.year == year
        ]
        assert [p.paper_id for p in filtered] == [p.paper_id for p in manual]
        assert corpus.papers(venue_id="nope") == []

    def test_predicate_filter(self, corpus):
        humans = corpus.papers(
            year=CONFIG.end_year, predicate=lambda p: bool(p.body)
        )
        assert all(p.body for p in humans)

    def test_years(self, corpus):
        years = corpus.years()
        assert years[0] == CONFIG.start_year
        assert years[-1] == CONFIG.end_year

    def test_full_text_matches_paper_property(self, corpus):
        shard = corpus.shard(0)
        paper = corpus.paper(paper_id_for(shard.paper_offset))
        assert shard.full_text(0) == paper.full_text


class TestAggregates:
    def test_counters_match_dataclass_corpus(self, corpus):
        legacy = corpus.to_corpus()
        assert corpus.papers_per_author() == legacy.papers_per_author()
        assert corpus.citation_counts() == legacy.citation_counts()
        assert corpus.topic_counts() == legacy.topic_counts()
        venue_id = corpus.venues()[3].venue_id
        assert corpus.topic_counts(venue_id) == legacy.topic_counts(venue_id)

    def test_truth_masks_roundtrip(self, corpus):
        truth = corpus.truth()
        shard = corpus.shard(0)
        for local in range(shard.n_papers):
            families = shard.human_families(local)
            paper_id = paper_id_for(shard.paper_offset + local)
            if families:
                assert truth.human_methods[paper_id] == families
                assert families == tuple(sorted(families))
                assert set(families) <= set(HUMAN_FAMILY_ORDER)
            else:
                assert paper_id not in truth.human_methods


class TestResidency:
    def test_streaming_holds_at_most_one_shard(self, tmp_path):
        corpus = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        assert corpus.max_resident == 1
        for _ in corpus.iter_shards():
            assert corpus.resident_shards() <= 1
        # Random access across shard boundaries keeps the bound too.
        corpus.paper(paper_id_for(0))
        corpus.paper(paper_id_for(CONFIG.total_papers - 1))
        assert corpus.resident_shards() <= 1

    def test_materialized_keeps_shards(self):
        corpus = generate_columnar_corpus(CONFIG)
        list(corpus.iter_shards())
        assert corpus.resident_shards() == corpus.n_shards

    def test_loader_size_mismatch_rejected(self, corpus):
        bad = ColumnarCorpus(
            corpus.vocab,
            [1] * corpus.n_shards,
            lambda i: generate_shard(CONFIG, None, i),
        )
        with pytest.raises(ValueError, match="expected"):
            bad.shard(0)
