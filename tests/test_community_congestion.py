"""Tests for repro.netsim.community.congestion."""

import pytest

from repro.netsim.community.congestion import (
    CprAllocator,
    allocate_fifo,
    allocate_maxmin,
    allocate_static_cap,
    jain_fairness,
    run_congestion_study,
)


class TestJain:
    def test_equal_is_one(self):
        assert jain_fairness([2, 2, 2]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_fair(self):
        assert jain_fairness([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])


class TestFifo:
    def test_early_arrivals_take_all(self):
        result = allocate_fifo([6, 6, 6], 10, arrival_order=[0, 1, 2])
        assert result.allocations == (6, 4, 0)

    def test_arrival_order_matters(self):
        result = allocate_fifo([6, 6, 6], 10, arrival_order=[2, 1, 0])
        assert result.allocations == (0, 4, 6)

    def test_under_capacity_everyone_satisfied(self):
        result = allocate_fifo([2, 3], 10)
        assert result.allocations == (2, 3)
        assert result.mean_satisfaction == 1.0

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            allocate_fifo([1, 2], 10, arrival_order=[0, 0])

    def test_starved_count(self):
        result = allocate_fifo([10, 10], 10, arrival_order=[0, 1])
        assert result.starved_count == 1


class TestStaticCap:
    def test_caps_at_equal_share(self):
        result = allocate_static_cap([10, 1], 10)
        assert result.allocations == (5, 1)

    def test_wastes_unused_headroom(self):
        result = allocate_static_cap([10, 1], 10)
        assert result.utilization < 1.0

    def test_empty_members(self):
        result = allocate_static_cap([], 10)
        assert result.allocations == ()


class TestMaxMin:
    def test_waterfilling_redistributes(self):
        result = allocate_maxmin([2, 10, 10], 12)
        assert result.allocations == pytest.approx((2, 5, 5))

    def test_under_capacity_full_satisfaction(self):
        result = allocate_maxmin([1, 2, 3], 100)
        assert result.allocations == pytest.approx((1, 2, 3))

    def test_weights_shift_shares(self):
        result = allocate_maxmin([10, 10], 10, weights=[3, 1])
        assert result.allocations == pytest.approx((7.5, 2.5))

    def test_full_capacity_used_under_overload(self):
        result = allocate_maxmin([10, 10, 10], 15)
        assert result.utilization == pytest.approx(1.0)

    def test_zero_weight_gets_nothing(self):
        result = allocate_maxmin([5, 5], 10, weights=[1, 0])
        assert result.allocations[1] == 0.0

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            allocate_maxmin([1], 10, weights=[1, 2])
        with pytest.raises(ValueError):
            allocate_maxmin([1], 10, weights=[-1])

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            allocate_maxmin([1], -1)


class TestCpr:
    def test_overuser_sanctioned(self):
        cpr = CprAllocator(overuse_factor=2.0)
        demands = [20.0, 1.0, 1.0, 1.0]  # equal share 2.5; 20 > 5
        cpr.allocate(demands, 10.0)
        assert cpr.sanction_level(0) == 1
        assert cpr.sanction_level(1) == 0

    def test_sanction_reduces_allocation(self):
        cpr = CprAllocator(sanction_factor=0.5)
        demands = [20.0, 20.0]
        first = cpr.allocate(demands, 10.0)
        # After round 1 member 0 and 1 are both sanctioned equally.
        assert first.allocations[0] == pytest.approx(first.allocations[1])
        # Sanction one member harder by feeding asymmetric demands.
        cpr2 = CprAllocator(sanction_factor=0.5)
        cpr2.allocate([20.0, 1.0], 10.0)
        second = cpr2.allocate([20.0, 20.0], 10.0)
        assert second.allocations[0] < second.allocations[1]

    def test_sanctions_cap_at_max_level(self):
        cpr = CprAllocator(max_level=2)
        for _ in range(10):
            cpr.allocate([100.0, 1.0], 10.0)
        assert cpr.sanction_level(0) == 2

    def test_forgiveness_decays_sanctions(self):
        cpr = CprAllocator(forgiveness_rounds=2)
        cpr.allocate([100.0, 1.0], 10.0)
        assert cpr.sanction_level(0) == 1
        for _ in range(4):
            cpr.allocate([1.0, 1.0], 10.0)
        assert cpr.sanction_level(0) == 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CprAllocator(sanction_factor=1.5)
        with pytest.raises(ValueError):
            CprAllocator(overuse_factor=0.5)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_congestion_study(n_rounds=80, seed=0)

    def test_all_policies_reported(self, study):
        assert set(study) == {"fifo", "static_cap", "maxmin", "cpr"}

    def test_cpr_fairer_than_fifo(self, study):
        assert study["cpr"]["mean_jain"] > study["fifo"]["mean_jain"]

    def test_fifo_starves_most(self, study):
        assert (
            study["fifo"]["starved_rounds_share"]
            > study["cpr"]["starved_rounds_share"]
        )

    def test_static_cap_wastes_capacity(self, study):
        assert (
            study["static_cap"]["mean_utilization"]
            < study["maxmin"]["mean_utilization"]
        )

    def test_deterministic(self):
        a = run_congestion_study(n_rounds=30, seed=5)
        b = run_congestion_study(n_rounds=30, seed=5)
        assert a == b
