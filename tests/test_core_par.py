"""Tests for repro.core.par and repro.core.stages."""

import pytest

from repro.core.par import (
    PARTICIPATION_LADDER,
    EngagementEvent,
    EngagementKind,
    EngagementLedger,
)
from repro.core.stages import STAGE_ORDER, ResearchStage


def event(stage, kind, month=0, partner="p", fed_back=False):
    return EngagementEvent(month, stage, partner, kind,
                           fed_back_into_design=fed_back)


class TestLadder:
    def test_monotone(self):
        rungs = [
            PARTICIPATION_LADDER[k]
            for k in (
                EngagementKind.INFORMED, EngagementKind.CONSULTED,
                EngagementKind.INVOLVED, EngagementKind.COLLABORATED,
                EngagementKind.LED,
            )
        ]
        assert rungs == sorted(rungs)
        assert len(set(rungs)) == 5


class TestEvents:
    def test_negative_month_rejected(self):
        with pytest.raises(ValueError):
            event(ResearchStage.DESIGN, EngagementKind.INFORMED, month=-1)

    def test_stage_order_complete(self):
        assert len(STAGE_ORDER) == len(ResearchStage)


class TestLedger:
    def test_stage_coverage(self):
        ledger = EngagementLedger()
        assert ledger.stage_coverage() == 0.0
        ledger.record(event(ResearchStage.DESIGN, EngagementKind.CONSULTED))
        assert ledger.stage_coverage() == pytest.approx(0.2)
        for stage in STAGE_ORDER:
            ledger.record(event(stage, EngagementKind.INFORMED))
        assert ledger.stage_coverage() == 1.0

    def test_problem_formation_rung(self):
        ledger = EngagementLedger()
        assert ledger.problem_formation_rung() == 0
        ledger.record(
            event(ResearchStage.PROBLEM_FORMATION, EngagementKind.CONSULTED)
        )
        ledger.record(
            event(ResearchStage.PROBLEM_FORMATION, EngagementKind.LED)
        )
        assert ledger.problem_formation_rung() == 5

    def test_mean_rung(self):
        ledger = EngagementLedger(
            [
                event(ResearchStage.DESIGN, EngagementKind.INFORMED),
                event(ResearchStage.DESIGN, EngagementKind.LED),
            ]
        )
        assert ledger.mean_rung() == pytest.approx(3.0)

    def test_iteration_count(self):
        ledger = EngagementLedger(
            [
                event(ResearchStage.DESIGN, EngagementKind.CONSULTED, fed_back=True),
                event(ResearchStage.EVALUATION, EngagementKind.CONSULTED),
            ]
        )
        assert ledger.iteration_count() == 1

    def test_filters(self):
        ledger = EngagementLedger(
            [
                event(ResearchStage.DESIGN, EngagementKind.CONSULTED, partner="a"),
                event(ResearchStage.DESIGN, EngagementKind.CONSULTED, partner="b"),
                event(ResearchStage.EVALUATION, EngagementKind.INVOLVED, partner="a"),
            ]
        )
        assert len(ledger.events(stage=ResearchStage.DESIGN)) == 2
        assert len(ledger.events(partner_id="a")) == 2
        assert ledger.partners_engaged() == ["a", "b"]

    def test_participation_score_bounds(self):
        empty = EngagementLedger()
        assert empty.participation_score() == 0.0
        full = EngagementLedger(
            [
                event(stage, EngagementKind.LED, fed_back=True)
                for stage in STAGE_ORDER
            ]
        )
        assert full.participation_score() == pytest.approx(1.0)

    def test_score_monotone_in_engagement(self):
        weak = EngagementLedger(
            [event(ResearchStage.EVALUATION, EngagementKind.INFORMED)]
        )
        strong = EngagementLedger(
            [
                event(ResearchStage.PROBLEM_FORMATION, EngagementKind.LED),
                event(ResearchStage.EVALUATION, EngagementKind.LED, fed_back=True),
            ]
        )
        assert strong.participation_score() > weak.participation_score()
