"""Tests for repro.netsim.community.economics."""

import pytest

from repro.netsim.community.economics import (
    CostModel,
    FeePolicy,
    fee_sweep,
    simulate_finances,
)


class TestCostModel:
    def test_monthly_cost_components(self):
        model = CostModel(
            backhaul_fixed=100, backhaul_per_mbps=2,
            power_per_node=5, parts_per_failure=50,
        )
        assert model.monthly_cost(10, 4, 2) == 100 + 20 + 20 + 100

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            CostModel().monthly_cost(-1, 0, 0)


class TestFeePolicy:
    def test_flat_fee_ignores_income(self):
        policy = FeePolicy(base_fee=10, income_scaled=False)
        assert policy.fee_for(0.5) == 10
        assert policy.fee_for(3.0) == 10

    def test_scaled_fee_tracks_income(self):
        policy = FeePolicy(base_fee=10, income_scaled=True)
        assert policy.fee_for(0.5) == 5.0
        assert policy.fee_for(2.0) == 20.0

    def test_bad_income_rejected(self):
        with pytest.raises(ValueError):
            FeePolicy().fee_for(0)


class TestSimulation:
    def test_deterministic(self):
        a = simulate_finances(FeePolicy(base_fee=12), seed=5)
        b = simulate_finances(FeePolicy(base_fee=12), seed=5)
        assert a == b

    def test_too_low_fee_insolvent(self):
        outcome = simulate_finances(FeePolicy(base_fee=2), seed=0)
        assert not outcome.solvent
        assert outcome.months_survived < 36

    def test_moderate_fee_solvent(self):
        outcome = simulate_finances(FeePolicy(base_fee=12), seed=0)
        assert outcome.solvent
        assert outcome.months_survived == 36
        assert outcome.final_reserve > 0

    def test_extortionate_fee_empties_membership(self):
        outcome = simulate_finances(FeePolicy(base_fee=100), seed=0, months=24)
        assert not outcome.solvent
        assert outcome.final_members <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_finances(FeePolicy(), months=0)
        with pytest.raises(ValueError):
            simulate_finances(FeePolicy(), n_members=0)


class TestFeeSweep:
    def test_inverted_u_flat(self):
        records = fee_sweep(income_scaled=False, seed=1)
        solvency = [r["solvent"] for r in records]
        # Insolvent at the cheap end, solvent in the middle, insolvent
        # at the expensive end.
        assert solvency[0] is False
        assert any(solvency[1:4])
        assert solvency[-1] is False

    def test_income_scaling_retains_members_in_window(self):
        flat = {r["fee"]: r for r in fee_sweep(income_scaled=False, seed=1)}
        scaled = {r["fee"]: r for r in fee_sweep(income_scaled=True, seed=1)}
        # Inside the shared solvent window, scaling prices nobody out.
        assert scaled[12.0]["solvent"] and flat[12.0]["solvent"]
        assert scaled[12.0]["final_members"] > flat[12.0]["final_members"]

    def test_scaled_fee_above_willingness_cap_collapses(self):
        records = {r["fee"]: r for r in fee_sweep(income_scaled=True, seed=1)}
        assert not records[16.0]["solvent"]
