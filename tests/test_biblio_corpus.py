"""Tests for repro.bibliometrics.corpus."""

import pytest

from repro.bibliometrics.corpus import Author, Corpus, Paper, Venue


@pytest.fixture
def corpus():
    c = Corpus()
    c.add_venue(Venue("v1", "SIGCOMM-like", kind="networking"))
    c.add_venue(Venue("v2", "CHI-like", kind="hci"))
    c.add_author(Author("a1", "A One", sector="hyperscaler"))
    c.add_author(Author("a2", "A Two", sector="university"))
    c.add_paper(Paper("p1", "BGP at scale", "We measure.", "v1", 2020,
                      ("a1", "a2"), topic="routing"))
    c.add_paper(Paper("p2", "Mesh design", "We co-design.", "v2", 2021,
                      ("a2",), topic="community-networks",
                      references=("p1",)))
    return c


class TestValidation:
    def test_duplicate_paper_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.add_paper(Paper("p1", "t", "a", "v1", 2020))

    def test_unknown_venue_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.add_paper(Paper("p9", "t", "a", "ghost", 2020))

    def test_unknown_author_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.add_paper(Paper("p9", "t", "a", "v1", 2020, ("ghost",)))

    def test_duplicate_author_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.add_author(Author("a1", "X"))

    def test_duplicate_venue_rejected(self, corpus):
        with pytest.raises(ValueError):
            corpus.add_venue(Venue("v1", "X"))


class TestQueries:
    def test_filters(self, corpus):
        assert len(corpus.papers(venue_id="v1")) == 1
        assert len(corpus.papers(year=2021)) == 1
        assert len(corpus.papers(topic="routing")) == 1
        assert len(corpus.papers(predicate=lambda p: "BGP" in p.title)) == 1

    def test_years(self, corpus):
        assert corpus.years() == [2020, 2021]

    def test_full_text_combines_fields(self, corpus):
        paper = corpus.paper("p1")
        assert "BGP at scale" in paper.full_text
        assert "We measure." in paper.full_text

    def test_papers_per_author(self, corpus):
        counts = corpus.papers_per_author()
        assert counts["a2"] == 2
        assert counts["a1"] == 1

    def test_citation_counts(self, corpus):
        assert corpus.citation_counts() == {"p1": 1}

    def test_topic_counts(self, corpus):
        assert corpus.topic_counts()["routing"] == 1
        assert corpus.topic_counts(venue_id="v2") == {"community-networks": 1}


class TestSerialization:
    def test_roundtrip(self, corpus):
        clone = Corpus.from_records(corpus.to_records())
        assert len(clone) == len(corpus)
        assert clone.paper("p2").references == ("p1",)
        assert clone.author("a1").sector == "hyperscaler"
        assert clone.venue("v2").kind == "hci"
