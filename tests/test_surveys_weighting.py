"""Tests for repro.surveys.weighting."""

import pytest

from repro.surveys.instrument import Instrument, Question, Response
from repro.surveys.weighting import (
    coverage_deficit,
    post_stratification_weights,
    weighted_likert_mean,
    weighted_mean,
)

SHARES = {"hyperscaler": 0.2, "rural": 0.5, "regulator": 0.3}


class TestWeights:
    def test_balanced_sample_unit_weights(self):
        sample = ["hyperscaler"] * 2 + ["rural"] * 5 + ["regulator"] * 3
        weights = post_stratification_weights(sample, SHARES)
        assert all(w == pytest.approx(1.0) for w in weights)

    def test_overrepresented_stratum_downweighted(self):
        sample = ["hyperscaler"] * 8 + ["rural"] * 2
        weights = post_stratification_weights(
            sample, {"hyperscaler": 0.2, "rural": 0.8}
        )
        assert weights[0] == pytest.approx(0.25)
        assert weights[-1] == pytest.approx(4.0)

    def test_missing_share_rejected(self):
        with pytest.raises(ValueError):
            post_stratification_weights(["ghost"], SHARES)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            post_stratification_weights([], SHARES)


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])


def make_responses(stratum_answers):
    inst = Instrument("s", [Question("q", "prompt")])
    return [
        Response.create(f"r{i}", inst, {"q": answer}, {"stratum": stratum})
        for i, (stratum, answer) in enumerate(stratum_answers)
    ]


class TestWeightedLikert:
    def test_reweighting_corrects_bias(self):
        # Rural members answer 5, hyperscalers 1; sample is hyperscaler-
        # heavy while the population is rural-heavy.
        responses = make_responses(
            [("hyperscaler", 1)] * 8 + [("rural", 5)] * 2
        )
        result = weighted_likert_mean(
            responses, "q", {"hyperscaler": 0.2, "rural": 0.8}
        )
        assert result["raw_mean"] == pytest.approx(1.8)
        assert result["weighted_mean"] == pytest.approx(0.2 * 1 + 0.8 * 5)
        assert result["covered_population_share"] == pytest.approx(1.0)

    def test_unseen_stratum_reduces_coverage(self):
        responses = make_responses([("hyperscaler", 1)] * 5)
        result = weighted_likert_mean(
            responses, "q", {"hyperscaler": 0.3, "rural": 0.7}
        )
        # Weighting "succeeds" numerically but only speaks for 30%.
        assert result["covered_population_share"] == pytest.approx(0.3)

    def test_no_answers_rejected(self):
        with pytest.raises(ValueError):
            weighted_likert_mean([], "q", SHARES)


class TestCoverageDeficit:
    def test_unseen_strata_reported(self):
        deficit = coverage_deficit(["hyperscaler"], SHARES)
        assert deficit["unseen_strata"] == ["regulator", "rural"]
        assert deficit["unrepresentable_share"] == pytest.approx(0.8)

    def test_full_coverage(self):
        deficit = coverage_deficit(
            ["hyperscaler", "rural", "regulator"], SHARES
        )
        assert deficit["unseen_strata"] == []
        assert deficit["unrepresentable_share"] == 0.0
