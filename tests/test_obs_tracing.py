"""Tests for repro.obs.tracing.

Span timing and nesting run on a fake clock so durations are exact;
the no-op path is checked for its zero-allocation contract.
"""

import threading

import pytest

from repro.io.jsonl import read_jsonl
from repro.obs.tracing import (
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSpanTiming:
    def test_duration_from_fake_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            clock.advance(2.5)
        (span,) = tracer.finished
        assert span.duration == pytest.approx(2.5)
        assert span.start == pytest.approx(0.0)
        assert span.end == pytest.approx(2.5)

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id

    def test_span_ids_sequential_and_deterministic(self):
        def structure():
            tracer = Tracer(clock=FakeClock())
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return [(s.span_id, s.parent_id, s.name) for s in tracer.finished]

        assert structure() == structure()
        ids = [record[0] for record in structure()]
        assert sorted(ids) == [1, 2, 3]

    def test_finished_in_completion_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_attributes_and_set_attribute(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", experiment_id="E7") as span:
            span.set_attribute("rows", 42)
        record = tracer.finished[0].to_record()
        assert record["attributes"] == {"experiment_id": "E7", "rows": 42}


class TestErrorCapture:
    def test_exception_recorded_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.status == "error"
        assert span.error == "boom"
        assert span.error_type == "ValueError"

    def test_success_status_ok(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("good"):
            pass
        assert tracer.finished[0].status == "ok"


class TestCrossThreadParentage:
    def test_worker_span_nests_under_coordinator_span(self):
        """The deadline worker's spans keep the coordinator as parent."""
        tracer = Tracer(clock=FakeClock())
        with tracer.span("experiment") as outer:
            def work():
                with tracer.span("stage"):
                    pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        stage = next(s for s in tracer.finished if s.name == "stage")
        assert stage.parent_id == outer.span_id

    def test_abandoned_child_does_not_parent_later_spans(self):
        """A span left open by a hung worker must not adopt later spans."""
        tracer = Tracer(clock=FakeClock())
        with tracer.span("experiment"):
            abandoned = tracer.span("hung")
            abandoned.__enter__()  # never exited, as if its thread hung
        with tracer.span("next") as later:
            pass
        assert later.parent_id is None  # not a child of the hung span


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", seed=3):
            clock.advance(1.0)
        path = tmp_path / "trace.jsonl"
        assert tracer.export(path) == 1
        (record,) = list(read_jsonl(path))
        assert record["name"] == "outer"
        assert record["duration"] == pytest.approx(1.0)
        assert record["attributes"] == {"seed": 3}


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert isinstance(current_tracer(), NullTracer)
        assert current_tracer().enabled is False

    def test_null_span_is_shared_singleton(self):
        """The no-op path allocates no span objects."""
        tracer = NullTracer()
        span = tracer.span("a", key="value")
        assert tracer.span("b") is span  # one shared inert object
        with span as entered:
            entered.set_attribute("ignored", 1)
        assert not hasattr(span, "attributes")

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NullTracer().span("x"):
                raise RuntimeError("boom")


class TestInstallation:
    def test_use_tracer_restores_previous(self):
        tracer = Tracer(clock=FakeClock())
        before = current_tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_use_tracer_restores_on_exception(self):
        before = current_tracer()
        with pytest.raises(ValueError):
            with use_tracer(Tracer(clock=FakeClock())):
                raise ValueError("boom")
        assert current_tracer() is before

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer(clock=FakeClock()))
        try:
            set_tracer(None)
            assert isinstance(current_tracer(), NullTracer)
        finally:
            set_tracer(previous)
