"""Tests for repro.netsim.bgp.traffic."""

import pytest

from repro.netsim.bgp.asys import AS, ASGraph
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.bgp.traffic import (
    FlowResult,
    TrafficDemand,
    gravity_demands,
    locality_report,
    resolve_flows,
)
from repro.netsim.topology import Location


@pytest.fixture
def world():
    """MX stubs 3,4 under MX incumbent 1; US tier-1 100 above; US stub 5."""
    g = ASGraph()
    mx = Location(0, 0, country="MX")
    us = Location(1000, 0, country="US")
    g.add_as(AS(100, location=us, size=5))
    g.add_as(AS(1, location=mx, size=10))
    g.add_as(AS(3, location=mx, size=2))
    g.add_as(AS(4, location=mx, size=2))
    g.add_as(AS(5, location=us, size=3))
    g.add_customer(provider=100, customer=1)
    g.add_customer(provider=1, customer=3)
    g.add_customer(provider=1, customer=4)
    g.add_customer(provider=100, customer=5)
    return g


class TestDemands:
    def test_volume_normalized(self, world):
        demands = gravity_demands(world, total_volume=500.0)
        assert sum(d.volume for d in demands) == pytest.approx(500.0)

    def test_no_self_demand(self, world):
        demands = gravity_demands(world)
        assert all(d.src != d.dst for d in demands)

    def test_bigger_pairs_get_more(self, world):
        demands = {(d.src, d.dst): d.volume for d in gravity_demands(world, decay=0.0)}
        assert demands[(1, 100)] > demands[(3, 4)]

    def test_source_destination_filters(self, world):
        demands = gravity_demands(world, sources=[3], destinations=[4, 5])
        assert {(d.src, d.dst) for d in demands} == {(3, 4), (3, 5)}

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            TrafficDemand(1, 2, -5.0)


class TestResolve:
    def test_paths_follow_routing(self, world):
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 4, 10.0)])
        assert flows[0].path == (3, 1, 4)
        assert flows[0].countries == ("MX", "MX", "MX")

    def test_unroutable_flow_keeps_endpoint_countries(self, world):
        world.add_as(AS(99, location=Location(0, 0, country="MX")))
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 99, 1.0)])
        assert not flows[0].delivered
        assert flows[0].countries == ("MX", "MX")

    def test_ixps_crossed_recorded(self, world):
        world.add_peering(3, 4, ixp_id="ix-mx")
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 4, 1.0)])
        assert flows[0].ixps_crossed == ("ix-mx",)


class TestTromboning:
    def test_domestic_via_foreign_as_trombones(self, world):
        # Remove 4's link to incumbent; rehome under the US tier-1.
        world.remove_link(1, 4)
        world.add_customer(provider=100, customer=4)
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 4, 1.0)])
        assert flows[0].trombones()

    def test_all_domestic_path_does_not_trombone(self, world):
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 4, 1.0)])
        assert not flows[0].trombones()

    def test_foreign_ixp_counts_with_ixp_countries(self, world):
        world.add_peering(3, 4, ixp_id="ix-de")
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 4, 1.0)])
        assert not flows[0].trombones()
        assert flows[0].trombones({"ix-de": "DE"})
        assert not flows[0].trombones({"ix-de": "MX"})

    def test_international_flow_never_trombones(self, world):
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 5, 1.0)])
        assert not flows[0].trombones()


class TestLocalityReport:
    def test_shares_sum_sensibly(self, world):
        table = propagate_routes(world)
        demands = gravity_demands(world)
        flows = resolve_flows(world, table, demands)
        report = locality_report(flows, "MX")
        assert report["delivered_share"] == pytest.approx(1.0)
        assert report["local_share"] + report["tromboned_share"] == (
            pytest.approx(1.0)
        )

    def test_ixp_volumes_accumulated(self, world):
        world.add_peering(3, 4, ixp_id="ix-mx")
        table = propagate_routes(world)
        flows = resolve_flows(
            world, table, [TrafficDemand(3, 4, 7.0), TrafficDemand(4, 3, 5.0)]
        )
        report = locality_report(flows, "MX")
        assert report["ixp_volumes"]["ix-mx"] == pytest.approx(12.0)

    def test_undelivered_lowers_delivered_share(self, world):
        world.add_as(AS(99, location=Location(0, 0, country="MX")))
        table = propagate_routes(world)
        flows = resolve_flows(
            world, table,
            [TrafficDemand(3, 4, 5.0), TrafficDemand(3, 99, 5.0)],
        )
        report = locality_report(flows, "MX")
        assert report["delivered_share"] == pytest.approx(0.5)

    def test_foreign_ixp_shifts_local_to_tromboned(self, world):
        world.add_peering(3, 4, ixp_id="ix-de")
        table = propagate_routes(world)
        flows = resolve_flows(world, table, [TrafficDemand(3, 4, 1.0)])
        domestic_report = locality_report(flows, "MX")
        foreign_report = locality_report(flows, "MX", {"ix-de": "DE"})
        assert domestic_report["local_share"] == 1.0
        assert foreign_report["local_share"] == 0.0
        assert foreign_report["tromboned_share"] == 1.0
