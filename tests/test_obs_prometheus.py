"""Tests for the Prometheus text exposition in repro.obs.metrics.

Every emitted line is linted against the exposition grammar — a
scraper that chokes on one malformed line drops the whole page, so the
format is the contract, not the vibe.
"""

import re

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    labeled,
    parse_metric_key,
    percentile,
    render_prometheus,
    sanitize_metric_name,
)

#: `# TYPE <name> <kind>` comment lines.
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
)
#: `name{label="value",...} <number>` sample lines.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})?'
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"
)


def lint(text):
    """Assert every line fits the exposition grammar; returns the lines."""
    assert text == "" or text.endswith("\n"), "exposition must end in newline"
    lines = text.splitlines()
    for line in lines:
        pattern = _TYPE_LINE if line.startswith("#") else _SAMPLE_LINE
        assert pattern.match(line), f"grammar violation: {line!r}"
    return lines


class TestSanitization:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.request") == "serve_request"

    def test_leading_digit_gets_underscore(self):
        assert sanitize_metric_name("2xx.responses") == "_2xx_responses"

    def test_hostile_characters_flattened(self):
        assert sanitize_metric_name("a-b c/d") == "a_b_c_d"
        assert sanitize_metric_name("") == "_"


class TestLabeledKeys:
    def test_roundtrip(self):
        key = labeled("serve.request_seconds", route="/v1/corpus", status=200)
        base, pairs = parse_metric_key(key)
        assert base == "serve.request_seconds"
        assert pairs == [("route", "/v1/corpus"), ("status", "200")]

    def test_labels_sorted_for_stable_keys(self):
        assert labeled("m", b="2", a="1") == labeled("m", a="1", b="2")

    def test_quotes_and_backslashes_escaped(self):
        key = labeled("m", path='a"b\\c')
        base, pairs = parse_metric_key(key)
        assert base == "m"
        assert pairs == [("path", 'a\\"b\\\\c')]

    def test_unlabeled_key_passes_through(self):
        assert parse_metric_key("plain.name") == ("plain.name", [])


class TestExposition:
    def test_every_line_fits_the_grammar(self):
        registry = MetricsRegistry()
        registry.count("serve.requests", 3)
        registry.count(labeled("serve.responses", status=200), 2)
        registry.set_gauge("serve.inflight", 1)
        registry.observe("serve.request_seconds", 0.004)
        registry.observe(
            labeled("serve.request_seconds", route="/v1/result/{id}",
                    status=200),
            0.004,
        )
        lint(render_prometheus(registry.snapshot()))

    def test_type_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.observe("serve.request_seconds", 0.01)
        registry.observe(labeled("serve.request_seconds", route="/x"), 0.01)
        lines = lint(render_prometheus(registry.snapshot()))
        type_lines = [line for line in lines if line.startswith("# TYPE")]
        assert type_lines == ["# TYPE serve_request_seconds histogram"]

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 1.5, 10.0):
            registry.observe("h", value, buckets=(1.0, 2.0, 5.0))
        lines = lint(render_prometheus(registry.snapshot()))
        buckets = [line for line in lines if line.startswith("h_bucket")]
        assert buckets == [
            'h_bucket{le="1"} 1',
            'h_bucket{le="2"} 3',
            'h_bucket{le="5"} 3',
            'h_bucket{le="+Inf"} 4',
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket series must be monotonic"

    def test_histogram_count_and_sum_rows(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, buckets=(2.0,))
        registry.observe("h", 3.0, buckets=(2.0,))
        lines = lint(render_prometheus(registry.snapshot()))
        assert "h_count 2" in lines
        assert "h_sum 4" in lines

    def test_final_bucket_equals_count(self):
        registry = MetricsRegistry()
        for value in (0.1, 5.0, 500.0):
            registry.observe("h", value)
        lines = lint(render_prometheus(registry.snapshot()))
        inf = next(line for line in lines if 'le="+Inf"' in line)
        count = next(line for line in lines if line.startswith("h_count"))
        assert inf.rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1] == "3"

    def test_unset_gauge_omitted(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert render_prometheus(registry.snapshot()) == ""

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_labels_survive_into_exposition(self):
        registry = MetricsRegistry()
        registry.count(
            labeled("serve.responses", route="/v1/result/{id}", status=503)
        )
        lines = lint(render_prometheus(registry.snapshot()))
        assert (
            'serve_responses{route="/v1/result/{id}",status="503"} 1' in lines
        )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_unsorted_input(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.99) == 5.0

    def test_median_of_ten(self):
        values = [float(i) for i in range(1, 11)]
        assert percentile(values, 0.5) == 6.0
        assert percentile(values, 0.9) == 10.0


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert Histogram("h", buckets=(1.0, 2.0)).quantile(0.5) == 0.0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0,)).quantile(1.5)

    def test_interpolates_within_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            histogram.observe(1.5)
        estimate = histogram.quantile(0.5)
        assert 1.0 <= estimate <= 2.0

    def test_overflow_bucket_clamps_to_last_edge(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.99) == 2.0

    def test_quantiles_are_monotone(self):
        histogram = Histogram("h", buckets=(0.01, 0.1, 1.0, 10.0))
        for value in (0.005, 0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(f / 10) for f in range(11)]
        assert quantiles == sorted(quantiles)
