"""Tests for repro.serve.jobs — coalescing, breaker, drain.

The job manager is the robustness core of the service: N submits for
one key must run one compute, failures must trip the per-key breaker
(and only that key's), and drain must bound how long stragglers can
hold up shutdown.
"""

import asyncio
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import (
    CircuitBreaker,
    CircuitOpen,
    ComputeFailed,
    ComputeJobManager,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_closed_by_default(self):
        breaker = CircuitBreaker(clock=FakeClock())
        assert breaker.seconds_until_half_open("k") is None

    def test_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        assert breaker.record_failure("k") is False
        assert breaker.record_failure("k") is False
        assert breaker.seconds_until_half_open("k") is None

    def test_threshold_trips_and_counts_down(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure("k")
        assert breaker.record_failure("k") is True
        assert breaker.seconds_until_half_open("k") == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.seconds_until_half_open("k") == pytest.approx(6.0)
        assert breaker.open_keys() == ["k"]

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure("k")
        breaker.record_failure("k")
        clock.advance(11.0)
        assert breaker.seconds_until_half_open("k") is None  # probe allowed
        breaker.record_success("k")
        assert breaker.record_failure("k") is False  # count fully reset

    def test_half_open_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance(11.0)
        assert breaker.seconds_until_half_open("k") is None
        assert breaker.record_failure("k") is True  # one strike re-opens
        assert breaker.seconds_until_half_open("k") == pytest.approx(10.0)

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure("bad")
        assert breaker.seconds_until_half_open("bad") is not None
        assert breaker.seconds_until_half_open("good") is None

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


def _counters(metrics):
    return metrics.snapshot()["counters"]


class TestCoalescing:
    def test_concurrent_submits_share_one_compute(self):
        metrics = MetricsRegistry()
        calls = []
        release = threading.Event()

        def compute():
            calls.append(1)
            release.wait(timeout=5)
            return [{"v": 42}]

        async def run():
            manager = ComputeJobManager(metrics=metrics)
            first = manager.submit("k", compute)
            # second/third submits while the first is still computing
            assert manager.submit("k", compute) is first
            assert manager.submit("k", compute) is first
            assert manager.inflight == 1
            release.set()
            results = await asyncio.gather(first, manager.submit("k", compute))
            return results

        results = run_with_loop(run)
        assert all(r == [{"v": 42}] for r in results)
        assert len(calls) == 1
        counters = _counters(metrics)
        assert counters["serve.compute_jobs"] == 1
        assert counters["serve.coalesced"] == 3
        assert counters["serve.compute_ok"] == 1

    def test_distinct_keys_run_distinct_jobs(self):
        metrics = MetricsRegistry()

        async def run():
            manager = ComputeJobManager(metrics=metrics)
            a = manager.submit("a", lambda: [{"k": "a"}])
            b = manager.submit("b", lambda: [{"k": "b"}])
            assert a is not b
            return await asyncio.gather(a, b)

        results = run_with_loop(run)
        assert [r[0]["k"] for r in results] == ["a", "b"]
        assert _counters(metrics)["serve.compute_jobs"] == 2

    def test_finished_key_recomputes_on_next_submit(self):
        calls = []

        async def run():
            manager = ComputeJobManager()

            def compute():
                calls.append(1)
                return [{"n": len(calls)}]

            first = await manager.submit("k", compute)
            second = await manager.submit("k", compute)
            return first, second

        first, second = run_with_loop(run)
        assert first == [{"n": 1}] and second == [{"n": 2}]
        assert len(calls) == 2


class TestFailures:
    def test_failure_propagates_to_every_awaiter(self):
        metrics = MetricsRegistry()

        def compute():
            raise ComputeFailed("boom", detail="synthetic")

        async def run():
            manager = ComputeJobManager(metrics=metrics)
            job = manager.submit("k", compute)
            shared = manager.submit("k", compute)
            with pytest.raises(ComputeFailed):
                await job
            with pytest.raises(ComputeFailed):
                await shared

        run_with_loop(run)
        counters = _counters(metrics)
        assert counters["serve.compute_failed"] == 1
        assert counters.get("serve.compute_ok", 0) == 0

    def test_repeated_failures_trip_the_breaker(self):
        metrics = MetricsRegistry()

        def compute():
            raise RuntimeError("always down")

        async def run():
            manager = ComputeJobManager(
                breaker=CircuitBreaker(threshold=2, cooldown=60.0),
                metrics=metrics,
            )
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    await manager.submit("k", compute)
            with pytest.raises(CircuitOpen) as excinfo:
                manager.submit("k", compute)
            assert excinfo.value.retry_after > 0
            # other keys still dispatch
            assert await manager.submit("other", lambda: [{}]) == [{}]

        run_with_loop(run)
        counters = _counters(metrics)
        assert counters["serve.breaker_trips"] == 1
        assert counters["serve.breaker_rejects"] == 1
        assert counters["serve.compute_jobs"] == 3  # the reject dispatched none


class TestDrain:
    def test_drain_waits_for_quick_jobs(self):
        async def run():
            manager = ComputeJobManager()
            job = manager.submit("k", lambda: [{"ok": True}])
            abandoned = await manager.drain(timeout=5.0)
            assert abandoned == 0
            assert job.done()

        run_with_loop(run)

    def test_drain_abandons_stragglers_within_timeout(self):
        metrics = MetricsRegistry()
        release = threading.Event()

        def compute():
            release.wait(timeout=10)
            return [{}]

        async def run():
            manager = ComputeJobManager(metrics=metrics)
            manager.submit("slow", compute)
            started = time.monotonic()
            abandoned = await manager.drain(timeout=0.2)
            elapsed = time.monotonic() - started
            release.set()
            assert abandoned == 1
            assert elapsed < 5.0

        run_with_loop(run)
        assert _counters(metrics)["serve.jobs_abandoned"] == 1


def run_with_loop(coro_factory):
    """asyncio.run with a fresh loop (the manager binds to the running loop)."""
    return asyncio.run(coro_factory())
