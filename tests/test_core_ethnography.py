"""Tests for repro.core.ethnography."""

import pytest

from repro.core.ethnography import (
    FieldNote,
    FieldSite,
    FieldworkPlan,
    fieldwork_depth,
    patchwork_schedule,
)


@pytest.fixture
def plan():
    p = FieldworkPlan("ixp-study")
    p.add_site(FieldSite("ix-1", "the exchange", "access via operator intro"))
    p.add_site(FieldSite("noc", "the operator NOC"))
    p.schedule_visit("ix-1", 0, 9)
    p.schedule_visit("noc", 30, 34)
    return p


class TestPlan:
    def test_duplicate_site_rejected(self, plan):
        with pytest.raises(ValueError):
            plan.add_site(FieldSite("ix-1"))

    def test_visit_to_unknown_site_rejected(self, plan):
        with pytest.raises(KeyError):
            plan.schedule_visit("ghost", 0, 1)

    def test_bad_window_rejected(self, plan):
        with pytest.raises(ValueError):
            plan.schedule_visit("ix-1", 5, 3)

    def test_note_must_fall_in_visit(self, plan):
        plan.record_note(FieldNote("n1", "ix-1", 3, "observed peering talks"))
        with pytest.raises(ValueError):
            plan.record_note(FieldNote("n2", "ix-1", 20, "outside window"))

    def test_field_days_deduplicated(self, plan):
        plan.schedule_visit("ix-1", 5, 12)  # overlaps 5..9
        assert plan.field_days() == 13 + 5  # ix-1 days 0..12, noc 30..34

    def test_notes_become_documents(self, plan):
        plan.record_note(FieldNote("n1", "ix-1", 0, "text", reflexive=True))
        docs = plan.documents()
        assert docs[0].kind == "fieldnote"
        assert docs[0].metadata["reflexive"] is True


class TestPatchwork:
    def test_budget_conserved(self):
        windows = patchwork_schedule(["a", "b"], 20, 4, gap_days=10)
        total = sum(end - start + 1 for _, start, end in windows)
        assert total == 20

    def test_gaps_inserted(self):
        windows = patchwork_schedule(["a"], 10, 2, gap_days=5)
        assert windows == [("a", 0, 4), ("a", 10, 14)]

    def test_sites_cycled(self):
        windows = patchwork_schedule(["a", "b"], 9, 3)
        assert [w[0] for w in windows] == ["a", "b", "a"]

    def test_remainder_distributed(self):
        windows = patchwork_schedule(["a"], 7, 3, gap_days=0)
        lengths = [end - start + 1 for _, start, end in windows]
        assert sorted(lengths, reverse=True) == [3, 2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            patchwork_schedule(["a"], 0, 1)
        with pytest.raises(ValueError):
            patchwork_schedule(["a"], 2, 5)
        with pytest.raises(ValueError):
            patchwork_schedule([], 5, 2)


class TestDepth:
    def test_metrics(self, plan):
        plan.record_note(FieldNote("n1", "ix-1", 0, "x"))
        plan.record_note(FieldNote("n2", "ix-1", 1, "y", reflexive=True))
        depth = fieldwork_depth(plan)
        assert depth["field_days"] == 15
        assert depth["n_sites_visited"] == 2
        assert depth["n_notes"] == 2
        assert depth["reflexive_share"] == 0.5
        assert depth["elapsed_days"] == 35

    def test_empty_plan(self):
        depth = fieldwork_depth(FieldworkPlan("empty"))
        assert depth["field_days"] == 0
        assert depth["elapsed_days"] == 0
