"""Tests for the repro.errors taxonomy."""

import json

import pytest

from repro.errors import (
    BudgetExceeded,
    CheckFailure,
    DataFormatError,
    ExperimentError,
    JsonlDecodeError,
    ReproError,
    TruncatedFileError,
    UnknownExperimentError,
)


def test_hierarchy():
    assert issubclass(ExperimentError, ReproError)
    assert issubclass(UnknownExperimentError, ExperimentError)
    assert issubclass(CheckFailure, ReproError)
    assert issubclass(DataFormatError, ReproError)
    assert issubclass(JsonlDecodeError, DataFormatError)
    assert issubclass(TruncatedFileError, JsonlDecodeError)
    assert issubclass(BudgetExceeded, ReproError)


def test_backward_compatible_bases():
    # Pre-taxonomy callers catch these stdlib types; they must keep working.
    assert issubclass(UnknownExperimentError, KeyError)
    assert issubclass(DataFormatError, ValueError)
    assert issubclass(JsonlDecodeError, json.JSONDecodeError)


def test_context_carried_and_rendered():
    exc = ExperimentError("boom", experiment_id="E6", seed=3, stage="run")
    assert exc.context() == {"experiment_id": "E6", "seed": 3, "stage": "run"}
    text = str(exc)
    assert "boom" in text
    assert "experiment_id=E6" in text
    assert "seed=3" in text


def test_context_omitted_when_absent():
    exc = ReproError("plain")
    assert exc.context() == {}
    assert str(exc) == "plain"


def test_unknown_experiment_str_is_not_keyerror_repr():
    exc = UnknownExperimentError("unknown experiment 'E99'")
    assert str(exc) == "unknown experiment 'E99'"  # no KeyError quoting


def test_check_failure_lists_checks():
    exc = CheckFailure(
        "shape checks failed", failed_checks=("a", "b"), experiment_id="E1"
    )
    assert exc.failed_checks == ("a", "b")
    assert exc.experiment_id == "E1"


def test_jsonl_decode_error_location():
    exc = JsonlDecodeError("x.jsonl:3: bad", "bad", 0, path="x.jsonl", line_number=3)
    assert exc.path == "x.jsonl"
    assert exc.line_number == 3
    assert exc.stage == "read"
    with pytest.raises(json.JSONDecodeError):
        raise exc


def test_budget_exceeded_carries_amounts():
    exc = BudgetExceeded("too slow", budget=5.0, spent=7.2, experiment_id="E13")
    assert exc.budget == 5.0
    assert exc.spent == 7.2
    assert isinstance(exc, ReproError)
