"""Tests for repro.core.project and repro.core.recommendations."""

import pytest

from repro.core.par import EngagementEvent, EngagementKind, EngagementLedger
from repro.core.positionality import PositionalityStatement
from repro.core.project import ConversationRecord, Partner, ResearchProject
from repro.core.recommendations import audit_project
from repro.core.stages import ResearchStage
from repro.experiments.e11_recommendations_audit import build_reference_project


class TestProject:
    def test_duplicate_partner_rejected(self):
        project = ResearchProject("x")
        project.add_partner(Partner("p", "P"))
        with pytest.raises(ValueError):
            project.add_partner(Partner("p", "P2"))

    def test_conversation_requires_known_partner(self):
        project = ResearchProject("x")
        with pytest.raises(KeyError):
            project.record_conversation(
                ConversationRecord("c1", "ghost", 0)
            )

    def test_documented_origin_filter(self):
        project = ResearchProject("x")
        project.add_partner(Partner("a", "A", relationship_origin="met at IETF"))
        project.add_partner(Partner("b", "B"))
        assert [p.partner_id for p in project.partners_with_documented_origin()] == ["a"]

    def test_conversations_with(self):
        project = build_reference_project()
        assert len(project.conversations_with("coop")) == 2


class TestAudit:
    def test_reference_project_near_perfect(self):
        audit = audit_project(build_reference_project())
        assert audit.overall >= 0.95
        assert audit.all_findings() == ()

    def test_empty_project_scores_zero(self):
        audit = audit_project(ResearchProject("empty"))
        assert audit.partnerships.score == 0.0
        assert audit.conversations.score == 0.0
        assert audit.positionality.score == 0.0
        assert len(audit.all_findings()) >= 3

    def test_partial_conversation_documentation(self):
        project = build_reference_project()
        project.conversations.append(
            ConversationRecord("c3", "coop", 7, summary="undocumented chat")
        )
        audit = audit_project(project)
        assert 0.0 < audit.conversations.score < 1.0
        assert any("how it informed" in f for f in audit.conversations.findings)

    def test_positionality_half_credit_for_thin_statement(self):
        project = build_reference_project()
        project.positionality = [PositionalityStatement(identity="engineers")]
        audit = audit_project(project)
        assert 0.5 < audit.positionality.score < 1.0
        assert audit.positionality.findings  # coverage warning

    def test_missing_evaluation_engagement_flagged(self):
        project = build_reference_project()
        project.ledger = EngagementLedger(
            [
                EngagementEvent(
                    0, ResearchStage.PROBLEM_FORMATION, "coop",
                    EngagementKind.LED,
                )
            ]
        )
        audit = audit_project(project)
        assert any("evaluation" in f for f in audit.partnerships.findings)

    def test_informed_only_problem_formation_insufficient(self):
        project = build_reference_project()
        project.ledger = EngagementLedger(
            [
                EngagementEvent(
                    0, ResearchStage.PROBLEM_FORMATION, "coop",
                    EngagementKind.INFORMED,
                ),
                EngagementEvent(
                    9, ResearchStage.EVALUATION, "coop",
                    EngagementKind.COLLABORATED,
                ),
            ]
        )
        audit = audit_project(project)
        assert any("problem formation" in f for f in audit.partnerships.findings)
