"""Tests for repro.netsim.community.mesh."""

import pytest

from repro.netsim.community.mesh import MeshNetwork, MeshNode
from repro.netsim.topology import Location


@pytest.fixture
def network():
    net = MeshNetwork(radio_range_km=1.0)
    net.add_node(MeshNode("gw", Location(0, 0), kind="gateway"))
    net.add_node(MeshNode("r1", Location(0.8, 0), kind="relay"))
    net.add_node(MeshNode("r2", Location(1.6, 0), kind="relay"))
    net.add_node(MeshNode("far", Location(9, 9), kind="relay"))
    return net


class TestConstruction:
    def test_duplicate_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_node(MeshNode("gw", Location(0, 0)))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            MeshNode("x", Location(0, 0), kind="satellite")

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            MeshNetwork(radio_range_km=0)


class TestConnectivity:
    def test_chain_connects_to_gateway(self, network):
        assert network.has_service("r2")  # via r1

    def test_isolated_node_unserved(self, network):
        assert not network.has_service("far")

    def test_down_intermediate_breaks_chain(self, network):
        network.node("r1").up = False
        assert not network.has_service("r2")

    def test_down_gateway_kills_everything(self, network):
        network.node("gw").up = False
        assert network.connected_node_ids() == set()

    def test_service_share(self, network):
        assert network.service_share() == pytest.approx(3 / 4)

    def test_neighbors_respect_up_flag(self, network):
        network.node("r1").up = False
        assert "r1" not in network.neighbors("gw")
        assert "r1" in network.neighbors("gw", up_only=False)


class TestCoverage:
    def test_covers_location_near_serving_node(self, network):
        assert network.covers(Location(0.5, 0.5))

    def test_does_not_cover_near_disconnected_node(self, network):
        assert not network.covers(Location(9, 8.5))

    def test_coverage_share(self, network):
        locations = [Location(0.1, 0), Location(9, 9), Location(1.5, 0.2)]
        assert network.coverage_share(locations) == pytest.approx(2 / 3)

    def test_empty_locations_full_coverage(self, network):
        assert network.coverage_share([]) == 1.0


class TestArticulation:
    def test_chain_midpoint_is_critical(self, network):
        critical = network.articulation_nodes()
        assert "r1" in critical

    def test_leaf_not_critical(self, network):
        assert "r2" not in network.articulation_nodes()

    def test_articulation_restores_state(self, network):
        network.articulation_nodes()
        assert all(n.up for n in network.nodes() if n.node_id != "far")
