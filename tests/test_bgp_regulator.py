"""Tests for repro.netsim.bgp.regulator."""

import pytest

from repro.netsim.bgp.asys import AS, ASGraph
from repro.netsim.bgp.ixp import IXP, connect_ixp_members
from repro.netsim.bgp.regulator import (
    PeeringMandate,
    apply_asn_split_evasion,
    compliance_report,
    obligated_orgs,
)
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.topology import Location

MX = Location(0, 0, country="MX")


@pytest.fixture
def market():
    g = ASGraph()
    g.add_as(AS(1, "Incumbent", org="big", location=MX, size=50))
    g.add_as(AS(2, "Small", org="small", location=MX, size=2))
    ixp = IXP("ix", location=MX)
    ixp.join(2)
    return g, ixp


def mandate(enforcement="asn"):
    return PeeringMandate("MX", "ix", enforcement=enforcement, min_size=10)


class TestMandate:
    def test_bad_enforcement_rejected(self):
        with pytest.raises(ValueError):
            PeeringMandate("MX", "ix", enforcement="vibes")

    def test_obligated_orgs_by_size(self, market):
        graph, _ = market
        assert obligated_orgs(graph, mandate()) == ["big"]

    def test_mismatched_ixp_rejected(self, market):
        graph, ixp = market
        with pytest.raises(ValueError):
            compliance_report(graph, ixp, PeeringMandate("MX", "other-ix"))


class TestCompliance:
    def test_absent_incumbent_noncompliant(self, market):
        graph, ixp = market
        report = compliance_report(graph, ixp, mandate())
        assert not report["big"]["compliant_asn_level"]
        assert not report["big"]["compliant_org_level"]

    def test_honest_join_compliant_both_ways(self, market):
        graph, ixp = market
        ixp.join(1)
        report = compliance_report(graph, ixp, mandate())
        assert report["big"]["compliant_asn_level"]
        assert report["big"]["compliant_org_level"]
        assert report["big"]["covered_size_share"] == pytest.approx(1.0)

    def test_selective_membership_not_compliant(self, market):
        # Present but refusing to peer openly does not satisfy the rule.
        graph, ixp = market
        ixp.join(1, open_policy=False)
        report = compliance_report(graph, ixp, mandate())
        assert not report["big"]["compliant_asn_level"]


class TestEvasion:
    def test_shell_created_under_same_org(self, market):
        graph, ixp = market
        shell = apply_asn_split_evasion(graph, ixp, "big", 1, 64500)
        assert shell.org == "big"
        assert shell.country == "MX"
        assert graph.relationship(1, 64500).value == "customer"
        assert 64500 in ixp.open_policy

    def test_evasion_compliant_at_asn_level_only(self, market):
        graph, ixp = market
        apply_asn_split_evasion(graph, ixp, "big", 1, 64500)
        report = compliance_report(graph, ixp, mandate("asn"))
        assert report["big"]["compliant_asn_level"]
        report_org = compliance_report(graph, ixp, mandate("org"))
        assert not report_org["big"]["compliant_org_level"]
        assert report_org["big"]["covered_size_share"] < 0.01

    def test_shell_leaks_no_incumbent_routes(self, market):
        graph, ixp = market
        apply_asn_split_evasion(graph, ixp, "big", 1, 64500)
        connect_ixp_members(graph, ixp)
        table = propagate_routes(graph)
        # AS2 peers with the shell at the IXP but must NOT learn the
        # incumbent's prefix through it (valley-free export).
        route = table.route(2, 1)
        assert route is None

    def test_shell_own_prefix_does_leak(self, market):
        graph, ixp = market
        apply_asn_split_evasion(graph, ixp, "big", 1, 64500)
        connect_ixp_members(graph, ixp)
        table = propagate_routes(graph)
        assert table.full_path(2, 64500) == (2, 64500)

    def test_wrong_org_rejected(self, market):
        graph, ixp = market
        with pytest.raises(ValueError):
            apply_asn_split_evasion(graph, ixp, "small", 1, 64500)

    def test_existing_shell_asn_rejected(self, market):
        graph, ixp = market
        with pytest.raises(ValueError):
            apply_asn_split_evasion(graph, ixp, "big", 1, 2)
