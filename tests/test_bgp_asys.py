"""Tests for repro.netsim.bgp.asys."""

import pytest

from repro.netsim.bgp.asys import AS, ASGraph, Relationship
from repro.netsim.topology import Location


@pytest.fixture
def graph():
    g = ASGraph()
    g.add_as(AS(1, "T1", org="t1", kind="transit"))
    g.add_as(AS(2, "Mid", org="mid", kind="transit"))
    g.add_as(AS(3, "Stub", org="stub"))
    g.add_as(AS(4, "Peer", org="peer"))
    g.add_customer(provider=1, customer=2)
    g.add_customer(provider=2, customer=3)
    g.add_peering(2, 4, ixp_id="ix-1")
    return g


class TestRelationship:
    def test_inverse(self):
        assert Relationship.CUSTOMER.inverse() is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER


class TestConstruction:
    def test_duplicate_asn_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_as(AS(1))

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            AS(-5)

    def test_self_link_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_peering(1, 1)

    def test_duplicate_link_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_customer(provider=1, customer=2)

    def test_unknown_asn_rejected(self, graph):
        with pytest.raises(KeyError):
            graph.add_peering(1, 99)

    def test_defaults(self):
        autonomous_system = AS(7)
        assert autonomous_system.org == "org-7"
        assert autonomous_system.name == "AS7"


class TestQueries:
    def test_relationship_perspective(self, graph):
        assert graph.relationship(1, 2) is Relationship.CUSTOMER
        assert graph.relationship(2, 1) is Relationship.PROVIDER
        assert graph.relationship(2, 4) is Relationship.PEER
        assert graph.relationship(1, 3) is None

    def test_customers_providers_peers(self, graph):
        assert graph.customers(1) == [2]
        assert graph.providers(3) == [2]
        assert graph.peers(2) == [4]

    def test_link_ixp_tag(self, graph):
        assert graph.link_ixp(2, 4) == "ix-1"
        assert graph.link_ixp(4, 2) == "ix-1"
        assert graph.link_ixp(1, 2) is None

    def test_remove_link(self, graph):
        graph.remove_link(2, 4)
        assert graph.relationship(2, 4) is None
        assert graph.link_ixp(2, 4) is None

    def test_customer_cone(self, graph):
        assert graph.customer_cone(1) == {1, 2, 3}
        assert graph.customer_cone(3) == {3}

    def test_ases_of_org(self, graph):
        graph.add_as(AS(5, org="t1"))
        assert [a.asn for a in graph.ases_of_org("t1")] == [1, 5]

    def test_ases_in_country(self):
        g = ASGraph()
        g.add_as(AS(1, location=Location(0, 0, country="MX")))
        g.add_as(AS(2, location=Location(0, 0, country="US")))
        assert [a.asn for a in g.ases_in_country("MX")] == [1]


class TestHierarchyValidation:
    def test_valid_dag(self, graph):
        assert graph.validate_hierarchy() == []

    def test_cycle_detected(self):
        g = ASGraph()
        g.add_as(AS(1))
        g.add_as(AS(2))
        g.add_as(AS(3))
        g.add_customer(provider=1, customer=2)
        g.add_customer(provider=2, customer=3)
        g.add_customer(provider=3, customer=1)
        problems = g.validate_hierarchy()
        assert problems
        assert "cycle" in problems[0]
