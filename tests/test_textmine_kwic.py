"""Tests for repro.textmine.kwic."""

import pytest

from repro.textmine.kwic import kwic

DOCS = [
    "We discussed peering at the exchange. Peering was contentious.",
    "No relevant terms here.",
    "Mandatory peering by law.",
]


def test_finds_all_occurrences():
    hits = kwic(DOCS, "peering")
    assert len(hits) == 3


def test_case_insensitive_by_default():
    hits = kwic(DOCS, "peering")
    assert {h.keyword for h in hits} == {"peering", "Peering"}


def test_case_sensitive_mode():
    hits = kwic(DOCS, "Peering", case_sensitive=True)
    assert len(hits) == 1


def test_doc_ids_recorded():
    hits = kwic(DOCS, "peering")
    assert [h.doc_id for h in hits] == [0, 0, 2]


def test_context_windows():
    hits = kwic(["abc peering xyz"], "peering", window=4)
    assert hits[0].left == "abc "
    assert hits[0].right == " xyz"


def test_whole_word_excludes_substrings():
    assert kwic(["unpeering networks"], "peering") == []
    assert len(kwic(["unpeering networks"], "peering", whole_word=False)) == 1


def test_line_rendering_fixed_width():
    hits = kwic(DOCS, "peering")
    line = hits[0].line(width=10)
    assert "[peering]" in line
    # left(10) + " [" + keyword + "] " + right(10)
    assert len(line) == 10 + 2 + len(hits[0].keyword) + 2 + 10


def test_empty_keyword_rejected():
    with pytest.raises(ValueError):
        kwic(DOCS, "")
