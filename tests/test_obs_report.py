"""Tests for repro.obs.report (the ``repro obs report`` backend)."""

import pytest

from repro.errors import DataFormatError
from repro.io.jsonl import write_jsonl
from repro.obs.report import build_report, load_trace, render_report
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def synthetic_suite_trace(tmp_path):
    """A trace shaped like the runner's: suite > experiment > attempt > stage.

    E1 succeeds on attempt 1 (2s of stage time); E2 fails once and
    succeeds on its second attempt.
    """
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("suite", seed=0, fast=True, experiments=2):
        with tracer.span("experiment", experiment_id="E1") as e1:
            with tracer.span("attempt", experiment_id="E1", attempt=1):
                with tracer.span(
                    "e01.run", experiment_id="E1", stage="run"
                ):
                    clock.advance(2.0)
            e1.set_attribute("status", "ok")
            e1.set_attribute("attempts", 1)
        with tracer.span("experiment", experiment_id="E2") as e2:
            with pytest.raises(RuntimeError):
                with tracer.span("attempt", experiment_id="E2", attempt=1):
                    with tracer.span(
                        "e02.run", experiment_id="E2", stage="run"
                    ):
                        clock.advance(1.0)
                        raise RuntimeError("flaky")
            clock.advance(0.5)  # backoff
            with tracer.span("attempt", experiment_id="E2", attempt=2):
                with tracer.span(
                    "e02.run", experiment_id="E2", stage="run"
                ):
                    clock.advance(1.0)
            e2.set_attribute("status", "ok")
            e2.set_attribute("attempts", 2)
    path = tmp_path / "trace.jsonl"
    tracer.export(path)
    return path


class TestLoadTrace:
    def test_roundtrip(self, tmp_path):
        path = synthetic_suite_trace(tmp_path)
        spans = load_trace(path)
        assert len(spans) == 9  # 1 suite + 2 experiments + 3 attempts + 3 runs

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DataFormatError):
            load_trace(path)

    def test_non_trace_records_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        write_jsonl(path, [{"some": "record"}])
        with pytest.raises(DataFormatError):
            load_trace(path)


class TestBuildReport:
    def test_suite_duration_and_experiments(self, tmp_path):
        report = build_report(load_trace(synthetic_suite_trace(tmp_path)))
        assert report["suite_duration"] == pytest.approx(4.5)
        assert len(report["experiments"]) == 2
        by_id = {e["experiment_id"]: e for e in report["experiments"]}
        # E2: two 1s attempts + 0.5s backoff.
        assert by_id["E2"]["duration"] == pytest.approx(2.5)
        assert by_id["E2"]["run_time"] == pytest.approx(2.0)
        assert by_id["E2"]["overhead"] == pytest.approx(0.5)
        assert by_id["E2"]["attempts"] == 2
        assert by_id["E1"]["share"] == pytest.approx(2.0 / 4.5)

    def test_experiment_durations_sum_to_suite(self, tmp_path):
        """The acceptance identity: experiment spans tile the suite span."""
        report = build_report(load_trace(synthetic_suite_trace(tmp_path)))
        total = sum(e["duration"] for e in report["experiments"])
        assert total == pytest.approx(report["suite_duration"], rel=0.05)

    def test_retry_histogram(self, tmp_path):
        report = build_report(load_trace(synthetic_suite_trace(tmp_path)))
        assert report["retry_histogram"] == {1: 1, 2: 1}

    def test_critical_path_descends_longest_chain(self, tmp_path):
        report = build_report(load_trace(synthetic_suite_trace(tmp_path)))
        names = [step["name"] for step in report["critical_path"]]
        assert names == ["suite", "experiment", "attempt", "e02.run"]
        assert report["critical_path"][1]["experiment_id"] == "E2"

    def test_slowest_stages_sorted_and_capped(self, tmp_path):
        report = build_report(
            load_trace(synthetic_suite_trace(tmp_path)), top=2
        )
        durations = [s["duration"] for s in report["slowest_stages"]]
        assert len(durations) == 2
        assert durations == sorted(durations, reverse=True)


def synthetic_serve_trace(tmp_path):
    """A trace shaped like the result service's ``serve.request`` spans.

    Five requests: three hot hits on the result route (one coalesced),
    one deadline 503, and one 404 probe.
    """
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    durations = (0.01, 0.02, 0.03)
    for index, duration in enumerate(durations):
        with tracer.span(
            "serve.request", method="GET", path=f"/v1/result/E{index}",
            route="/v1/result/{id}", request_id=f"id-{index}",
        ) as span:
            clock.advance(duration)
            span.set_attribute("status", 200)
            span.set_attribute("source", "cache")
            if index == 0:
                span.set_attribute("coalesced", True)
    with tracer.span(
        "serve.request", method="GET", path="/v1/result/E9",
        route="/v1/result/{id}", request_id="id-d",
    ) as span:
        clock.advance(1.0)
        span.set_attribute("status", 503)
        span.set_attribute("outcome", "deadline")
    with tracer.span(
        "serve.request", method="GET", path="/etc/passwd",
        route="(unmatched)", request_id="id-x",
    ) as span:
        clock.advance(0.001)
        span.set_attribute("status", 404)
    path = tmp_path / "serve-trace.jsonl"
    tracer.export(path)
    return path


class TestServeSection:
    def test_routes_statuses_and_quantiles(self, tmp_path):
        report = build_report(load_trace(synthetic_serve_trace(tmp_path)))
        serve = report["serve"]
        assert serve["requests"] == 5
        assert serve["coalesced"] == 1
        assert serve["statuses"] == {"200": 3, "404": 1, "503": 1}
        assert serve["outcomes"] == {"deadline": 1}
        assert serve["sources"] == {"cache": 3}
        top = serve["routes"][0]
        assert top["route"] == "/v1/result/{id}"
        assert top["requests"] == 4
        assert top["statuses"] == {"200": 3, "503": 1}
        assert top["p50"] == pytest.approx(0.03)
        assert top["p99"] == pytest.approx(1.0)

    def test_routes_sorted_by_traffic_and_capped(self, tmp_path):
        report = build_report(
            load_trace(synthetic_serve_trace(tmp_path)), top=1
        )
        routes = report["serve"]["routes"]
        assert [r["route"] for r in routes] == ["/v1/result/{id}"]

    def test_absent_without_serve_spans(self, tmp_path):
        report = build_report(load_trace(synthetic_suite_trace(tmp_path)))
        assert report["serve"]["requests"] == 0
        assert report["serve"]["routes"] == []


class TestRenderReport:
    def test_renders_all_sections(self, tmp_path):
        text = render_report(load_trace(synthetic_suite_trace(tmp_path)))
        assert "trace summary" in text
        assert "per-experiment stage-time breakdown" in text
        assert "critical path" in text
        assert "slowest stages" in text
        assert "retry histogram" in text
        assert "E1" in text
        assert "E2" in text

    def test_renders_serve_section(self, tmp_path):
        text = render_report(load_trace(synthetic_serve_trace(tmp_path)))
        assert "serve: top routes (5 requests, 1 coalesced)" in text
        assert "/v1/result/{id}" in text
        assert "serve: status mix" in text
        assert "outcome deadline" in text

    def test_suite_report_omits_serve_section(self, tmp_path):
        text = render_report(load_trace(synthetic_suite_trace(tmp_path)))
        assert "serve:" not in text
