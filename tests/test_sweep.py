"""Tests for the parameter-sweep engine and its CLI.

The sweep engine rides on the parallel supervised runtime, so the
guarantees under test are the runtime's, extended to grids: expansion
is deterministic, results are memoized by ``config_hash`` (equal specs
share one cache entry, any field change misses), and a parallel sweep
— including under injected raise/kill faults — fingerprints
identically to a sequential one.
"""

import json

import pytest

from repro.cli import main
from repro.errors import SpecError
from repro.experiments.registry import make_spec, spec_class
from repro.experiments.sweep import (
    SWEEP_RESULT_KIND,
    expand_grid,
    load_grid_file,
    parse_grid_args,
    run_sweep,
)
from repro.io.artifacts import ArtifactCache
from repro.runtime.faultinject import FaultInjector

E10Spec = spec_class("E10")


# ---------------------------------------------------------------------------
# Grid parsing and expansion


class TestGridParsing:
    def test_parse_grid_args_coerces_and_keeps_order(self):
        grid = parse_grid_args(
            E10Spec, ["seed=0,1,2", "population_size=300,400"]
        )
        assert grid == {"seed": [0, 1, 2], "population_size": [300, 400]}
        assert list(grid) == ["seed", "population_size"]

    def test_parse_grid_args_rejects_unknown_key(self):
        with pytest.raises(SpecError, match="E10Spec"):
            parse_grid_args(E10Spec, ["bogus=1,2"])

    def test_parse_grid_args_rejects_bad_value(self):
        with pytest.raises(SpecError, match="seed"):
            parse_grid_args(E10Spec, ["seed=0,banana"])

    def test_parse_grid_args_rejects_duplicate_axis(self):
        with pytest.raises(SpecError, match="twice"):
            parse_grid_args(E10Spec, ["seed=0", "seed=1"])

    def test_parse_grid_args_rejects_empty_values(self):
        with pytest.raises(SpecError, match="no values"):
            parse_grid_args(E10Spec, ["seed="])

    def test_expand_grid_is_the_ordered_cross_product(self):
        base = E10Spec.preset("fast")
        specs = expand_grid(
            base, {"seed": [0, 1], "population_size": [300, 400]}
        )
        assert [(s.seed, s.population_size) for s in specs] == [
            (0, 300),
            (0, 400),
            (1, 300),
            (1, 400),
        ]
        # Non-axis fields stay at the base value.
        assert all(s.target == base.target for s in specs)

    def test_expand_grid_empty_is_the_base_point(self):
        base = E10Spec.preset("fast", seed=5)
        assert expand_grid(base, {}) == [base]

    def test_load_grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "experiment": "E10",
                    "grid": {"seed": [0, 1]},
                    "preset": "fast",
                    "base": {"population_size": 300},
                }
            )
        )
        data = load_grid_file(path)
        assert data["experiment"] == "E10"
        assert data["grid"] == {"seed": [0, 1]}
        assert data["base"] == {"population_size": 300}

    def test_load_grid_file_rejects_missing_grid(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"experiment": "E10"}))
        with pytest.raises(SpecError, match="grid"):
            load_grid_file(path)

    def test_load_grid_file_rejects_unreadable(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read"):
            load_grid_file(tmp_path / "missing.json")


# ---------------------------------------------------------------------------
# Sweep execution


class TestRunSweep:
    def test_basic_sweep_runs_every_point(self, tmp_path):
        report = run_sweep(
            "E10",
            {"seed": [0, 1, 2]},
            cache_dir=tmp_path / "cache",
            results_dir=tmp_path / "results",
        )
        assert len(report) == 3 and report.ok
        assert report.axes == ["seed"]
        assert [p.spec.seed for p in report] == [0, 1, 2]
        for point in report:
            assert point.source == "run"
            assert point.record.config_hash == point.spec.config_hash()
            assert point.record.spec == point.spec.to_dict()

    def test_per_point_artifacts_written(self, tmp_path):
        results = tmp_path / "results"
        report = run_sweep(
            "E10", {"seed": [0, 1]}, results_dir=results
        )
        dirs = sorted(p.name for p in results.iterdir())
        assert len(dirs) == 2
        for point in report:
            short = point.spec.config_hash()[:12]
            point_dir = results / f"E10-{short}"
            assert (point_dir / "result.txt").exists()
            payload = json.loads((point_dir / "record.json").read_text())
            assert payload["record"]["config_hash"] == point.spec.config_hash()

    def test_summary_table_has_axes_and_status(self):
        report = run_sweep("E10", {"seed": [0, 1]})
        rendered = report.summary_table().render()
        assert "seed" in rendered and "status" in rendered
        assert rendered.count("ok") >= 2

    def test_failed_points_reported_not_raised(self):
        injector = FaultInjector(seed=7)
        injector.register("experiment:E10", mode="raise")
        report = run_sweep(
            "E10", {"seed": [0, 1]}, fault_injector=injector
        )
        assert not report.ok
        assert all(p.record.status == "error" for p in report)


class TestSweepCache:
    def test_rerun_replays_from_cache_with_equal_fingerprint(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_sweep("E10", {"seed": [0, 1]}, cache_dir=cache_dir)
        warm = run_sweep("E10", {"seed": [0, 1]}, cache_dir=cache_dir)
        assert [p.source for p in cold] == ["run", "run"]
        assert [p.source for p in warm] == ["cache", "cache"]
        assert cold.fingerprint() == warm.fingerprint()
        assert warm.summary()["from_cache"] == 2

    def test_equal_specs_share_one_cache_entry(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep("E10", {"seed": [0]}, cache_dir=cache_dir)
        cache = ArtifactCache(cache_dir)
        spec = make_spec("E10", "fast", seed=0)
        config = {"experiment_id": "E10", "config_hash": spec.config_hash()}
        rows = cache.get(SWEEP_RESULT_KIND, config)
        assert rows is not None and len(rows) == 1
        # A second, equal spec resolves to the very same entry.
        again = make_spec("E10", "fast", seed=0)
        assert again.config_hash() == spec.config_hash()

    def test_any_field_change_misses_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep("E10", {"seed": [0]}, cache_dir=cache_dir)
        cache = ArtifactCache(cache_dir)
        changed = make_spec("E10", "fast", seed=0).replace(population_size=333)
        assert (
            cache.get(
                SWEEP_RESULT_KIND,
                {
                    "experiment_id": "E10",
                    "config_hash": changed.config_hash(),
                },
            )
            is None
        )
        # And running the changed point executes rather than replays.
        report = run_sweep(
            "E10",
            {"seed": [0]},
            base_overrides={"population_size": 333},
            cache_dir=cache_dir,
        )
        assert [p.source for p in report] == ["run"]

    def test_failed_points_are_not_cached(self, tmp_path):
        cache_dir = tmp_path / "cache"
        injector = FaultInjector(seed=7)
        injector.register("experiment:E10", mode="raise")
        run_sweep(
            "E10", {"seed": [0]}, cache_dir=cache_dir, fault_injector=injector
        )
        report = run_sweep("E10", {"seed": [0]}, cache_dir=cache_dir)
        assert [p.source for p in report] == ["run"]
        assert report.ok


class TestSweepParallelDeterminism:
    def test_workers_1_vs_4_fingerprint_equal(self, tmp_path):
        seq = run_sweep(
            "E10", {"seed": [0, 1, 2]}, cache_dir=tmp_path / "c1", workers=1
        )
        par = run_sweep(
            "E10", {"seed": [0, 1, 2]}, cache_dir=tmp_path / "c2", workers=4
        )
        assert seq.ok and par.ok
        assert seq.fingerprint() == par.fingerprint()

    def test_raise_faults_fingerprint_equal_across_workers(self, tmp_path):
        def injector():
            inj = FaultInjector(seed=7)
            inj.register("experiment:E10", mode="raise")
            return inj

        seq = run_sweep(
            "E10",
            {"seed": [0, 1]},
            cache_dir=tmp_path / "c1",
            workers=1,
            fault_injector=injector(),
        )
        par = run_sweep(
            "E10",
            {"seed": [0, 1]},
            cache_dir=tmp_path / "c2",
            workers=2,
            fault_injector=injector(),
        )
        assert not seq.ok and not par.ok
        assert seq.fingerprint() == par.fingerprint()

    def test_kill_faults_requeue_and_fingerprint_equal(self, tmp_path):
        """A sweep point that SIGKILLs its worker is requeued and still
        produces a record identical to an unfaulted sequential run."""

        def injector():
            inj = FaultInjector(seed=7)
            inj.register("experiment:E5", mode="kill", times=1)
            return inj

        seq = run_sweep(
            "E5",
            {"seed": [0, 1]},
            cache_dir=tmp_path / "c1",
            workers=1,
            fault_injector=injector(),
        )
        par = run_sweep(
            "E5",
            {"seed": [0, 1]},
            cache_dir=tmp_path / "c2",
            workers=2,
            fault_injector=injector(),
        )
        assert seq.ok and par.ok
        assert seq.fingerprint() == par.fingerprint()
        assert all(p.record.crash is None for p in par)


# ---------------------------------------------------------------------------
# CLI


class TestSweepCli:
    def test_sweep_prints_summary_table(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--grid",
                "seed=0,1",
                "E10",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep E10" in out and "seed" in out and "ok" in out

    def test_sweep_parallel_with_json_summary(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--grid",
                "seed=0,1,2",
                "E10",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json-summary",
                "-",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[out.index("{"):])
        assert payload["total"] == 3 and payload["all_ok"]

    def test_sweep_warm_cache_reports_cache_source(self, capsys, tmp_path):
        args = [
            "sweep", "--grid", "seed=0", "E10",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache" in capsys.readouterr().out

    def test_sweep_grid_file(self, capsys, tmp_path):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(
            json.dumps(
                {
                    "experiment": "E10",
                    "grid": {"seed": [0, 1]},
                    "base": {"population_size": 800},
                }
            )
        )
        code = main(["sweep", "--grid-file", str(grid_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("E10-") == 2

    def test_sweep_unknown_axis_is_one_line_error(self, capsys):
        code = main(["sweep", "--grid", "bogus=1,2", "E10"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.strip().count("\n") == 0
        assert "E10Spec" in captured.err

    def test_sweep_unknown_experiment_is_one_line_error(self, capsys):
        code = main(["sweep", "--grid", "seed=0", "E99"])
        captured = capsys.readouterr()
        assert code == 2
        assert "E99" in captured.err

    def test_sweep_without_experiment_is_an_error(self, capsys):
        code = main(["sweep", "--grid", "seed=0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no experiment" in captured.err

    def test_run_set_override_unknown_key(self, capsys):
        code = main(["run", "E10", "--set", "bogus=1"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.strip().count("\n") == 0
        assert "E10Spec" in captured.err and "population_size" in captured.err
