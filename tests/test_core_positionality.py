"""Tests for repro.core.positionality."""

from repro.core.positionality import (
    FACETS,
    PositionalityStatement,
    disclosure_score,
    extract_statements,
    has_positionality_statement,
)

FULL = PositionalityStatement(
    identity="network engineers",
    location="the Global North",
    beliefs="a feminist, community-based lens",
    affiliations="a public university with industry funding",
    community_ties="ties to rural cooperative ISPs",
    relevance="this standpoint shaped which questions we prioritized",
)


class TestStatement:
    def test_disclosed_facets_in_schema_order(self):
        assert FULL.disclosed_facets() == FACETS

    def test_empty_statement_discloses_nothing(self):
        assert PositionalityStatement().disclosed_facets() == ()

    def test_render_includes_disclosures(self):
        text = FULL.render()
        assert text.startswith("Positionality.")
        assert "network engineers" in text
        assert "Global North" in text

    def test_disclosure_score(self):
        assert disclosure_score(FULL) == 1.0
        assert disclosure_score(PositionalityStatement()) == 0.0
        half = PositionalityStatement(
            identity="x", location="y", beliefs="z"
        )
        assert disclosure_score(half) == 0.5


PAPER_WITH_SECTION = """1 Introduction
We study meshes.

Positionality
We write as practitioners embedded in this community. We are situated
in the Global South. This standpoint shaped which questions we asked.

2 Methods
Interviews were conducted.
"""

PAPER_WITH_INLINE = (
    "Abstract text here. The authors situate themselves as researchers "
    "who grew up in the studied regions; this standpoint shaped the "
    "framing of results. More text follows."
)

PAPER_WITHOUT = """1 Introduction
We present a congestion control algorithm. We measure it at scale.
"""


class TestExtraction:
    def test_section_statement_found(self):
        statements = extract_statements(PAPER_WITH_SECTION)
        assert len(statements) == 1
        assert statements[0].identity
        assert statements[0].location
        assert statements[0].relevance

    def test_inline_statement_found(self):
        statements = extract_statements(PAPER_WITH_INLINE)
        assert len(statements) == 1
        assert statements[0].identity or statements[0].community_ties

    def test_plain_paper_yields_nothing(self):
        assert extract_statements(PAPER_WITHOUT) == []

    def test_source_text_preserved(self):
        statements = extract_statements(PAPER_WITH_SECTION)
        assert "Global South" in statements[0].source_text


class TestHasStatement:
    def test_true_for_real_statements(self):
        assert has_positionality_statement(PAPER_WITH_SECTION)
        assert has_positionality_statement(PAPER_WITH_INLINE)

    def test_false_for_plain_papers(self):
        assert not has_positionality_statement(PAPER_WITHOUT)

    def test_citation_alone_does_not_count(self):
        citing = (
            "Prior work discusses positionality [12] in HCI venues. "
            "We measure BGP tables."
        )
        assert not has_positionality_statement(citing)

    def test_rendered_statement_roundtrips(self):
        text = "1 Introduction\nIntro text.\n\nPositionality\n" + FULL.render()
        assert has_positionality_statement(text)
