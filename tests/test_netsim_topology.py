"""Tests for repro.netsim.topology."""

import pytest

from repro.netsim.topology import Location, distance_km, gravity_weight


def test_distance_euclidean():
    assert distance_km(Location(0, 0), Location(3, 4)) == 5.0


def test_distance_symmetric():
    a, b = Location(1, 2), Location(5, 7)
    assert distance_km(a, b) == distance_km(b, a)


def test_gravity_grows_with_mass():
    assert gravity_weight(10, 10, 1) > gravity_weight(1, 1, 1)


def test_gravity_shrinks_with_distance():
    assert gravity_weight(5, 5, 0) > gravity_weight(5, 5, 100)


def test_zero_decay_ignores_distance():
    assert gravity_weight(2, 3, 0, decay=0.0) == gravity_weight(2, 3, 999, decay=0.0)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        gravity_weight(-1, 1, 1)
    with pytest.raises(ValueError):
        gravity_weight(1, 1, -1)
