"""Tests for repro.netsim.community.members."""

import random

import pytest

from repro.netsim.community.members import Member, MemberPool
from repro.netsim.topology import Location


def make_member(member_id="m1", satisfaction=0.7, volunteer=False):
    return Member(
        member_id=member_id,
        location=Location(0, 0),
        satisfaction=satisfaction,
        is_volunteer=volunteer,
    )


class TestMember:
    def test_satisfaction_blends(self):
        member = make_member(satisfaction=1.0)
        member.update_satisfaction(0.0, inertia=0.7)
        assert member.satisfaction == pytest.approx(0.7)

    def test_bad_quality_rejected(self):
        with pytest.raises(ValueError):
            make_member().update_satisfaction(1.5)


class TestPool:
    def test_duplicate_rejected(self):
        pool = MemberPool([make_member()])
        with pytest.raises(ValueError):
            pool.add(make_member())

    def test_volunteers_filter(self):
        pool = MemberPool(
            [make_member("a", volunteer=True), make_member("b")]
        )
        assert [m.member_id for m in pool.volunteers()] == ["a"]

    def test_retention_empty_pool(self):
        assert MemberPool().retention() == 1.0


class TestChurn:
    def test_low_satisfaction_members_leave(self):
        pool = MemberPool([make_member(f"m{i}", satisfaction=0.1) for i in range(50)])
        left = pool.apply_churn(3, random.Random(0), churn_probability=1.0)
        assert len(left) == 50
        assert pool.retention() == 0.0
        assert all(pool.get(mid).left_month == 3 for mid in left)

    def test_satisfied_members_stay(self):
        pool = MemberPool([make_member(f"m{i}", satisfaction=0.9) for i in range(20)])
        assert pool.apply_churn(0, random.Random(0)) == []

    def test_churned_members_do_not_rechurn(self):
        pool = MemberPool([make_member("m", satisfaction=0.1)])
        pool.apply_churn(0, random.Random(0), churn_probability=1.0)
        assert pool.apply_churn(1, random.Random(0), churn_probability=1.0) == []


class TestRecruitment:
    def test_satisfied_members_recruit(self):
        pool = MemberPool([make_member(f"m{i}", satisfaction=0.9) for i in range(30)])
        recruits = pool.recruit(5, random.Random(0), base_rate=1.0, volunteer_rate=0.5)
        assert len(recruits) == 30
        assert len(pool) == 60
        assert all(r.joined_month == 5 for r in recruits)

    def test_dissatisfied_members_do_not_recruit(self):
        pool = MemberPool([make_member("m", satisfaction=0.3)])
        assert pool.recruit(0, random.Random(0), base_rate=1.0, volunteer_rate=0) == []

    def test_recruits_land_near_recruiters(self):
        pool = MemberPool([make_member("m", satisfaction=0.9)])
        recruits = pool.recruit(
            0, random.Random(0), base_rate=1.0, volunteer_rate=0.0, spread_km=1.0
        )
        assert abs(recruits[0].location.x) <= 1.0
        assert abs(recruits[0].location.y) <= 1.0
