"""Oracle tests: per-shard scan analytics vs the classic dataclass path."""

from collections import Counter

import numpy as np
import pytest

from repro.bibliometrics.columnar import ColumnarCorpus, ColumnarShard, TextColumn
from repro.bibliometrics.metrics import gini, h_index
from repro.bibliometrics.methods_detect import classify_paper, uses_human_methods
from repro.bibliometrics.shardgen import ShardedCorpusConfig, generate_columnar_corpus
from repro.bibliometrics.shardscan import CorpusAggregates, scan_corpus, scan_shard
from repro.core.positionality import has_positionality_statement
from repro.bibliometrics.trends import (
    adoption_series,
    adoption_series_from_counts,
    venue_adoption_table,
    venue_adoption_table_from_counts,
)

CONFIG = ShardedCorpusConfig(
    start_year=2017, end_year=2025, seed=11, total_papers=1200, shard_size=350
)


@pytest.fixture(scope="module")
def corpus() -> ColumnarCorpus:
    return generate_columnar_corpus(CONFIG)


@pytest.fixture(scope="module")
def aggregates(corpus) -> CorpusAggregates:
    return scan_corpus(corpus)


@pytest.fixture(scope="module")
def legacy(corpus):
    return corpus.to_corpus()


class TestScanOracle:
    """scan_corpus must reproduce the classic per-Paper classification."""

    def test_paper_count(self, aggregates, corpus):
        assert aggregates.n_papers == len(corpus)
        assert sum(
            b["papers"] for b in aggregates.venue_year.values()
        ) == len(corpus)

    def test_family_mentions_match_classify_paper(self, aggregates, legacy):
        oracle = Counter()
        for paper in legacy:
            oracle.update(classify_paper(paper))
        assert aggregates.family_mentions == oracle

    def test_human_buckets_match_uses_human_methods(self, aggregates, legacy):
        oracle: dict[tuple[str, int], Counter] = {}
        for paper in legacy:
            bucket = oracle.setdefault((paper.venue_id, paper.year), Counter())
            bucket["papers"] += 1
            if uses_human_methods(paper):
                bucket["human"] += 1
        assert aggregates.venue_year == oracle

    def test_min_mentions_threshold(self, corpus, legacy):
        strict = scan_corpus(corpus, min_mentions=3)
        oracle_human = sum(
            1 for p in legacy if uses_human_methods(p, min_mentions=3)
        )
        assert sum(
            b["human"] for b in strict.venue_year.values()
        ) == oracle_human

    def test_topic_papers_match_topic_counts(self, aggregates, legacy):
        assert aggregates.topic_papers == legacy.topic_counts()

    def test_positionality_cells_match_unfiltered_detector(
        self, corpus, aggregates
    ):
        # Oracle = the real detector on every paper, WITHOUT the marker
        # prefilter the scan uses — so this also proves the prefilter
        # never drops a detection (it may only over-flag candidates).
        venue_ids = [venue.venue_id for venue in corpus.vocab.venues]
        oracle: dict[tuple[str, int], Counter] = {}
        for shard in corpus.iter_shards():
            for local in range(shard.n_papers):
                key = (
                    venue_ids[shard.venue_idx[local]],
                    int(shard.year[local]),
                )
                detected = has_positionality_statement(shard.full_text(local))
                actual = bool(shard.positionality[local])
                cells = oracle.setdefault(key, Counter())
                cells["papers"] += 1
                cells["detected"] += int(detected)
                cells["truth"] += int(actual)
                if detected and actual:
                    cells["tp"] += 1
                elif detected:
                    cells["fp"] += 1
                elif actual:
                    cells["fn"] += 1
        assert aggregates.positionality == oracle

    def test_venue_topics_match_per_venue_topic_counts(self, aggregates, legacy):
        oracle = {
            venue.venue_id: legacy.topic_counts(venue_id=venue.venue_id)
            for venue in legacy.venues()
        }
        observed = {
            venue_id: counts
            for venue_id, counts in aggregates.venue_topics.items()
            if counts
        }
        assert observed == {k: v for k, v in oracle.items() if v}

    def test_sector_slots_match_byline_walk(self, aggregates, legacy):
        oracle: dict[str, Counter] = {}
        for paper in legacy:
            bucket = oracle.setdefault(paper.venue_id, Counter())
            for author_id in paper.author_ids:
                bucket[legacy.author(author_id).sector] += 1
        assert aggregates.sector_slots == oracle

    def test_author_papers_match_papers_per_author(
        self, corpus, aggregates, legacy
    ):
        observed = {
            corpus.vocab.author_id(index): count
            for index, count in aggregates.author_papers.items()
        }
        assert observed == dict(legacy.papers_per_author())

    def test_citations_match_citation_counts(self, corpus, aggregates, legacy):
        paper_ids = [paper.paper_id for paper in corpus]
        observed = {
            paper_ids[index]: count
            for index, count in aggregates.citations.items()
        }
        assert observed == dict(legacy.citation_counts())


class TestTrendsOracle:
    """The from-counts builders must equal the classic builders verbatim."""

    def test_adoption_series_every_venue(self, aggregates, legacy):
        for venue in legacy.venues():
            classic = adoption_series(legacy, venue.venue_id)
            columnar = adoption_series_from_counts(
                aggregates.venue_year, venue.venue_id
            )
            assert columnar == classic

    def test_venue_adoption_table(self, aggregates, legacy):
        classic = venue_adoption_table(legacy)
        columnar = venue_adoption_table_from_counts(
            aggregates.venue_year, aggregates.venue_kinds
        )
        assert columnar == classic

    def test_empty_counts(self):
        assert adoption_series_from_counts({}, "anything") == []
        assert venue_adoption_table_from_counts({}, {"v": "networking"}) == []


class TestMetricsOracle:
    """Array-native metric inputs must agree with the Counter path."""

    def test_citation_arrays_match_counters(self, corpus, legacy):
        array = corpus.citation_counts_array()
        counter = legacy.citation_counts()
        assert int(array.sum()) == sum(counter.values())
        assert h_index(array) == h_index(list(counter.values()))
        # The Counter only holds *cited* papers; the array also carries
        # the zero-citation ones, so compare on the positive support.
        assert gini(array[array > 0]) == pytest.approx(
            gini(list(counter.values()))
        )

    def test_author_arrays_match_counters(self, corpus, legacy):
        array = corpus.papers_per_author_array()
        counter = legacy.papers_per_author()
        assert int(array.sum()) == sum(counter.values())
        assert gini(array[array > 0]) == pytest.approx(
            gini(list(counter.values()))
        )

    def test_h_index_ndarray_fast_path(self):
        for counts in ([0], [3, 0, 6, 1, 5], list(range(100)), [7] * 7):
            assert h_index(np.asarray(counts)) == h_index(list(counts))
        with pytest.raises(ValueError):
            h_index(np.asarray([2, -1]))


class TestMergeAlgebra:
    def test_merge_equals_whole_scan(self, corpus, aggregates):
        parts = [
            scan_shard(shard, corpus.vocab) for shard in corpus.iter_shards()
        ]
        assert CorpusAggregates.merge_all(parts) == aggregates

    def test_merge_is_associative_and_commutative(self, corpus):
        parts = [
            scan_shard(shard, corpus.vocab) for shard in corpus.iter_shards()
        ][:3]
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert left == right == swapped

    def test_merge_does_not_mutate_inputs(self, corpus):
        shards = corpus.iter_shards()
        a = scan_shard(next(shards), corpus.vocab)
        b = scan_shard(next(shards), corpus.vocab)
        before_a = {k: Counter(v) for k, v in a.venue_year.items()}
        a.merge(b)
        assert a.venue_year == before_a

    def test_empty_identity(self, aggregates):
        empty = CorpusAggregates()
        assert empty.merge(aggregates) == aggregates
        assert aggregates.merge(empty) == aggregates

    def test_merge_all_of_nothing_is_empty(self):
        assert CorpusAggregates.merge_all([]) == CorpusAggregates()

    def test_merge_covers_every_field(self, corpus):
        # A field added to CorpusAggregates but forgotten in merge()
        # would silently come back empty: catch it by checking every
        # non-count field is non-trivial after a merge of real parts.
        shards = corpus.iter_shards()
        merged = scan_shard(next(shards), corpus.vocab).merge(
            scan_shard(next(shards), corpus.vocab)
        )
        assert merged.n_papers > 0
        assert merged.venue_year and merged.family_mentions
        assert merged.topic_papers and merged.venue_kinds
        assert merged.positionality and merged.venue_topics
        assert merged.sector_slots and merged.author_papers
        assert merged.citations


def _empty_shard() -> ColumnarShard:
    int64 = np.zeros(0, dtype=np.int64)
    return ColumnarShard(
        index=0,
        paper_offset=0,
        year=np.zeros(0, dtype=np.int32),
        venue_idx=np.zeros(0, dtype=np.int16),
        topic_idx=np.zeros(0, dtype=np.int16),
        author_indptr=np.zeros(1, dtype=np.int64),
        author_values=int64,
        ref_indptr=np.zeros(1, dtype=np.int64),
        ref_values=int64,
        human_mask=np.zeros(0, dtype=np.uint16),
        positionality=np.zeros(0, dtype=np.uint8),
        title=TextColumn.from_strings([]),
        abstract=TextColumn.from_strings([]),
        body=TextColumn.from_strings([]),
    )


class TestDegenerateShards:
    def test_empty_shard_scans_to_neutral_element(self, corpus, aggregates):
        scanned = scan_shard(_empty_shard(), corpus.vocab)
        assert scanned.n_papers == 0
        assert not scanned.venue_year
        assert not scanned.family_mentions
        assert not scanned.author_papers and not scanned.citations
        # venue_kinds is vocabulary, not observation — it is filled even
        # for an empty shard, and merging adds nothing but those kinds.
        assert scanned.venue_kinds == aggregates.venue_kinds
        assert scanned.merge(aggregates) == aggregates

    def test_single_paper_shards_merge_to_whole_scan(self):
        config = ShardedCorpusConfig(
            start_year=2024, end_year=2025, seed=3, total_papers=6,
            shard_size=1,
        )
        corpus = generate_columnar_corpus(config)
        parts = []
        for shard in corpus.iter_shards():
            assert shard.n_papers == 1
            parts.append(scan_shard(shard, corpus.vocab))
        assert CorpusAggregates.merge_all(parts) == scan_corpus(corpus)


class TestStreamedScan:
    def test_scan_keeps_one_shard_resident(self, tmp_path):
        streamed = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        result = scan_corpus(streamed)
        assert streamed.resident_shards() <= 1
        assert result.n_papers == CONFIG.total_papers

    def test_streamed_equals_materialized(self, tmp_path, aggregates):
        streamed = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        assert scan_corpus(streamed) == aggregates
