"""Oracle tests: per-shard scan analytics vs the classic dataclass path."""

from collections import Counter

import numpy as np
import pytest

from repro.bibliometrics.columnar import ColumnarCorpus
from repro.bibliometrics.metrics import gini, h_index
from repro.bibliometrics.methods_detect import classify_paper, uses_human_methods
from repro.bibliometrics.shardgen import ShardedCorpusConfig, generate_columnar_corpus
from repro.bibliometrics.shardscan import CorpusAggregates, scan_corpus, scan_shard
from repro.bibliometrics.trends import (
    adoption_series,
    adoption_series_from_counts,
    venue_adoption_table,
    venue_adoption_table_from_counts,
)

CONFIG = ShardedCorpusConfig(
    start_year=2017, end_year=2025, seed=11, total_papers=1200, shard_size=350
)


@pytest.fixture(scope="module")
def corpus() -> ColumnarCorpus:
    return generate_columnar_corpus(CONFIG)


@pytest.fixture(scope="module")
def aggregates(corpus) -> CorpusAggregates:
    return scan_corpus(corpus)


@pytest.fixture(scope="module")
def legacy(corpus):
    return corpus.to_corpus()


class TestScanOracle:
    """scan_corpus must reproduce the classic per-Paper classification."""

    def test_paper_count(self, aggregates, corpus):
        assert aggregates.n_papers == len(corpus)
        assert sum(
            b["papers"] for b in aggregates.venue_year.values()
        ) == len(corpus)

    def test_family_mentions_match_classify_paper(self, aggregates, legacy):
        oracle = Counter()
        for paper in legacy:
            oracle.update(classify_paper(paper))
        assert aggregates.family_mentions == oracle

    def test_human_buckets_match_uses_human_methods(self, aggregates, legacy):
        oracle: dict[tuple[str, int], Counter] = {}
        for paper in legacy:
            bucket = oracle.setdefault((paper.venue_id, paper.year), Counter())
            bucket["papers"] += 1
            if uses_human_methods(paper):
                bucket["human"] += 1
        assert aggregates.venue_year == oracle

    def test_min_mentions_threshold(self, corpus, legacy):
        strict = scan_corpus(corpus, min_mentions=3)
        oracle_human = sum(
            1 for p in legacy if uses_human_methods(p, min_mentions=3)
        )
        assert sum(
            b["human"] for b in strict.venue_year.values()
        ) == oracle_human

    def test_topic_papers_match_topic_counts(self, aggregates, legacy):
        assert aggregates.topic_papers == legacy.topic_counts()


class TestTrendsOracle:
    """The from-counts builders must equal the classic builders verbatim."""

    def test_adoption_series_every_venue(self, aggregates, legacy):
        for venue in legacy.venues():
            classic = adoption_series(legacy, venue.venue_id)
            columnar = adoption_series_from_counts(
                aggregates.venue_year, venue.venue_id
            )
            assert columnar == classic

    def test_venue_adoption_table(self, aggregates, legacy):
        classic = venue_adoption_table(legacy)
        columnar = venue_adoption_table_from_counts(
            aggregates.venue_year, aggregates.venue_kinds
        )
        assert columnar == classic

    def test_empty_counts(self):
        assert adoption_series_from_counts({}, "anything") == []
        assert venue_adoption_table_from_counts({}, {"v": "networking"}) == []


class TestMetricsOracle:
    """Array-native metric inputs must agree with the Counter path."""

    def test_citation_arrays_match_counters(self, corpus, legacy):
        array = corpus.citation_counts_array()
        counter = legacy.citation_counts()
        assert int(array.sum()) == sum(counter.values())
        assert h_index(array) == h_index(list(counter.values()))
        # The Counter only holds *cited* papers; the array also carries
        # the zero-citation ones, so compare on the positive support.
        assert gini(array[array > 0]) == pytest.approx(
            gini(list(counter.values()))
        )

    def test_author_arrays_match_counters(self, corpus, legacy):
        array = corpus.papers_per_author_array()
        counter = legacy.papers_per_author()
        assert int(array.sum()) == sum(counter.values())
        assert gini(array[array > 0]) == pytest.approx(
            gini(list(counter.values()))
        )

    def test_h_index_ndarray_fast_path(self):
        for counts in ([0], [3, 0, 6, 1, 5], list(range(100)), [7] * 7):
            assert h_index(np.asarray(counts)) == h_index(list(counts))
        with pytest.raises(ValueError):
            h_index(np.asarray([2, -1]))


class TestMergeAlgebra:
    def test_merge_equals_whole_scan(self, corpus, aggregates):
        parts = [
            scan_shard(shard, corpus.vocab) for shard in corpus.iter_shards()
        ]
        assert CorpusAggregates.merge_all(parts) == aggregates

    def test_merge_is_associative_and_commutative(self, corpus):
        parts = [
            scan_shard(shard, corpus.vocab) for shard in corpus.iter_shards()
        ][:3]
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert left == right == swapped

    def test_merge_does_not_mutate_inputs(self, corpus):
        shards = corpus.iter_shards()
        a = scan_shard(next(shards), corpus.vocab)
        b = scan_shard(next(shards), corpus.vocab)
        before_a = {k: Counter(v) for k, v in a.venue_year.items()}
        a.merge(b)
        assert a.venue_year == before_a

    def test_empty_identity(self, aggregates):
        empty = CorpusAggregates()
        assert empty.merge(aggregates) == aggregates
        assert aggregates.merge(empty) == aggregates


class TestStreamedScan:
    def test_scan_keeps_one_shard_resident(self, tmp_path):
        streamed = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        result = scan_corpus(streamed)
        assert streamed.resident_shards() <= 1
        assert result.n_papers == CONFIG.total_papers

    def test_streamed_equals_materialized(self, tmp_path, aggregates):
        streamed = generate_columnar_corpus(
            CONFIG, cache_dir=str(tmp_path), stream=True
        )
        assert scan_corpus(streamed) == aggregates
