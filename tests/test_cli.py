"""Tests for the CLI (repro.cli)."""

import json

import pytest

from repro.cli import main

PROJECT_RECORD = {
    "name": "cli-test-project",
    "partners": [
        {
            "partner_id": "coop",
            "name": "Coop",
            "kind": "community",
            "relationship_origin": "met at a community meeting",
        }
    ],
    "engagements": [
        {
            "month": 0,
            "stage": "problem_formation",
            "partner_id": "coop",
            "kind": "led",
            "description": "coop named the problem",
        },
        {
            "month": 5,
            "stage": "evaluation",
            "partner_id": "coop",
            "kind": "collaborated",
        },
    ],
    "conversations": [
        {
            "conv_id": "c1",
            "partner_id": "coop",
            "month": 1,
            "how_it_informed": "reframed the problem",
            "quotes": ["a quote"],
        }
    ],
    "positionality": [
        {
            "identity": "engineers",
            "location": "the Global North",
            "relevance": "shaped what we counted",
        }
    ],
    "ethics_plan": {
        "consent_process": "written consent",
        "consent_withdrawal_supported": True,
        "data_anonymized": True,
        "power_risk_band": "low",
        "power_mitigations_planned": False,
        "community_in_problem_formation": True,
        "partnerships_documented": True,
        "positionality_statement": "present",
        "works_with_indigenous_communities": False,
        "data_sovereignty_plan": "",
    },
}


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "E1 " in out
        assert "E12" in out

    def test_run_one(self, capsys):
        assert main(["experiments", "E11"]) == 0
        out = capsys.readouterr().out
        assert "E11:" in out
        assert "PASS" in out

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            main(["experiments", "E99"])


class TestCorpusCommand:
    def test_writes_jsonl(self, tmp_path, capsys):
        code = main(
            [
                "corpus", str(tmp_path), "--start-year", "2024",
                "--end-year", "2024", "--seed", "1",
            ]
        )
        assert code == 0
        for name in ("venues", "authors", "papers", "ground_truth"):
            assert (tmp_path / f"{name}.jsonl").exists()
        first = json.loads(
            (tmp_path / "papers.jsonl").read_text().splitlines()[0]
        )
        assert "abstract" in first


class TestDetectCommand:
    def test_detects(self, tmp_path, capsys):
        path = tmp_path / "abstract.txt"
        path.write_text(
            "We conducted semi-structured interviews on our testbed."
        )
        assert main(["detect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "interviews" in out
        assert "testbed" in out

    def test_no_mentions(self, tmp_path, capsys):
        path = tmp_path / "plain.txt"
        path.write_text("Nothing methodological here.")
        assert main(["detect", str(path)]) == 0
        assert "no method mentions" in capsys.readouterr().out


class TestAuditCommand:
    def test_audit_passes(self, tmp_path, capsys):
        path = tmp_path / "project.json"
        path.write_text(json.dumps(PROJECT_RECORD))
        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert "APPROVED" in out

    def test_threshold_gates_exit_code(self, tmp_path):
        record = dict(PROJECT_RECORD, positionality=[], conversations=[])
        path = tmp_path / "project.json"
        path.write_text(json.dumps(record))
        assert main(["audit", str(path), "--threshold", "0.9"]) == 1

    def test_missing_ethics_plan_skipped(self, tmp_path, capsys):
        record = {k: v for k, v in PROJECT_RECORD.items() if k != "ethics_plan"}
        path = tmp_path / "project.json"
        path.write_text(json.dumps(record))
        assert main(["audit", str(path)]) == 0
        assert "skipped" in capsys.readouterr().out


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


class TestExperimentsRuntimeFlags:
    def test_keep_going_records_error_and_runs_rest(self, capsys):
        # E99 cannot run; with --keep-going the rest of the ids still do
        # and the exit code is non-zero.
        code = main(["experiments", "E99", "E11", "--keep-going"])
        assert code == 1
        out = capsys.readouterr().out
        assert "E99: ERROR" in out
        assert "UnknownExperimentError" in out
        assert "E11:" in out
        assert "PASS" in out

    def test_without_keep_going_unknown_id_raises(self):
        with pytest.raises(KeyError):
            main(["experiments", "E99", "E11"])

    def test_checkpoint_resume_skips_completed(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt.jsonl")
        assert main(["experiments", "E11", "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        assert main(["experiments", "E11", "--checkpoint", ckpt]) == 0
        out = capsys.readouterr().out
        assert "replayed from checkpoint" in out

    def test_json_summary_to_file(self, tmp_path):
        summary_path = tmp_path / "summary.json"
        code = main(
            ["experiments", "E11", "--json-summary", str(summary_path)]
        )
        assert code == 0
        payload = json.loads(summary_path.read_text())
        assert payload["total"] == 1
        assert payload["all_ok"] is True
        assert payload["records"][0]["experiment_id"] == "E11"

    def test_json_summary_to_stdout(self, capsys):
        assert main(["experiments", "E11", "--json-summary", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index("{\n")
        payload = json.loads(out[start:])
        assert payload["ok"] == 1

    def test_retries_and_timeout_flags_accepted(self, capsys):
        code = main(
            ["experiments", "E11", "--retries", "2", "--timeout", "60"]
        )
        assert code == 0
        assert "E11:" in capsys.readouterr().out

    def test_keep_going_all_ok_exits_zero(self, capsys):
        assert main(["experiments", "E11", "--keep-going"]) == 0


class TestObservabilityFlags:
    def test_run_alias_with_trace_and_metrics(self, tmp_path, capsys):
        from repro.io.jsonl import read_jsonl

        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code = main(
            [
                "run", "E11", "E4",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        spans = list(read_jsonl(trace))
        names = [s["name"] for s in spans]
        assert names.count("experiment") == 2
        assert "suite" in names
        assert "e11.run" in names
        assert "e04.run" in names
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["runner.status.ok"] == 2
        assert "runner.attempt_seconds" in payload["histograms"]

    def test_all_flag_runs_whole_suite(self, tmp_path):
        from repro.io.jsonl import read_jsonl

        trace = tmp_path / "t.jsonl"
        assert main(["run", "--all", "--trace-out", str(trace)]) == 0
        spans = list(read_jsonl(trace))
        experiment_ids = {
            s["attributes"]["experiment_id"]
            for s in spans
            if s["name"] == "experiment"
        }
        from repro.experiments.registry import all_experiments

        assert len(experiment_ids) == len(all_experiments())

    def test_trace_durations_sum_to_suite_wall_clock(self, tmp_path):
        """Acceptance: experiment spans tile the suite span (±5%)."""
        from repro.io.jsonl import read_jsonl

        trace = tmp_path / "t.jsonl"
        assert main(["run", "--all", "--trace-out", str(trace)]) == 0
        spans = list(read_jsonl(trace))
        suite = next(s for s in spans if s["name"] == "suite")
        total = sum(
            s["duration"] for s in spans if s["name"] == "experiment"
        )
        assert total == pytest.approx(suite["duration"], rel=0.05)

    def test_metrics_count_checkpoint_io_rows(self, tmp_path):
        ckpt = str(tmp_path / "ckpt.jsonl")
        metrics = tmp_path / "m.json"
        assert main(["run", "E11", "--checkpoint", ckpt]) == 0
        code = main(
            [
                "run", "E11", "--checkpoint", ckpt,
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters["runner.checkpoint_hits"] == 1
        assert counters["io.jsonl.rows_read"] >= 1

    def test_profile_out_writes_pstats(self, tmp_path):
        out = tmp_path / "prof"
        assert main(["run", "E11", "--profile-out", str(out)]) == 0
        assert (out / "E11.pstats").exists()


class TestObsReportCommand:
    def trace_path(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "E11", "E4", "--trace-out", str(trace)]) == 0
        return trace

    def test_report_renders_breakdown(self, tmp_path, capsys):
        trace = self.trace_path(tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-experiment stage-time breakdown" in out
        assert "critical path" in out
        assert "retry histogram" in out
        assert "E11" in out
        assert "E4" in out

    def test_report_json_mode(self, tmp_path, capsys):
        trace = self.trace_path(tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["experiments"]) == 2
        assert payload["span_count"] >= 7

    def test_report_rejects_non_trace_file(self, tmp_path):
        from repro.errors import DataFormatError
        from repro.io.jsonl import write_jsonl

        path = tmp_path / "not_a_trace.jsonl"
        write_jsonl(path, [{"foo": "bar"}])
        with pytest.raises(DataFormatError):
            main(["obs", "report", str(path)])

    def test_list_uses_shared_table_renderer(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        # The registry table has the shared renderer's header/rule rows.
        assert "id" in out.splitlines()[0]
        assert set(out.splitlines()[1]) <= {"-", " "}
        assert "E13" in out


class TestSetOverrides:
    """``--set key=value`` on experiments/run: typed spec overrides."""

    def test_unknown_key_is_one_line_actionable_error(self, capsys):
        code = main(["run", "E7", "--set", "bogus=1"])
        captured = capsys.readouterr()
        assert code == 2
        message = captured.err.strip()
        assert message.count("\n") == 0  # one line, no traceback
        assert "E7Spec" in message
        assert "n_eyeballs" in message  # names the valid fields

    def test_type_mismatch_is_one_line_actionable_error(self, capsys):
        code = main(["run", "E7", "--set", "seed=banana"])
        captured = capsys.readouterr()
        assert code == 2
        message = captured.err.strip()
        assert message.count("\n") == 0
        assert "E7Spec.seed" in message and "int" in message

    def test_out_of_range_value_is_one_line_error(self, capsys):
        code = main(["run", "E7", "--set", "n_eyeballs=1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "n_eyeballs" in captured.err
        assert ">=" in captured.err

    def test_nested_override_reaches_the_corpus_block(self, capsys):
        code = main(
            ["run", "E1", "--set", "corpus.start_year=2010",
             "--json-summary", "-"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[out.index("{"):])
        record = payload["records"][0]
        assert record["status"] == "ok"
        assert record["spec"]["corpus"]["start_year"] == 2010
        assert record["config_hash"]

    def test_choice_field_override_accepts_valid_subset(self, capsys):
        code = main(["run", "E13", "--set", "protocols=tahoe,reno"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tahoe_holds_goodput: PASS" in out
        # The open-loop protocol was not simulated, so its checks are
        # keyed out rather than failing.
        assert "open_loop_collapses_under_overload" not in out

    def test_choice_field_override_rejects_invalid_choice(self, capsys):
        code = main(["run", "E13", "--set", "protocols=cubic"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cubic" in captured.err and "tahoe" in captured.err

    def test_set_records_distinct_config_hash(self, capsys):
        assert main(["run", "E7", "--set", "n_eyeballs=10",
                     "--json-summary", "-"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "E7", "--set", "n_eyeballs=12",
                     "--json-summary", "-"]) == 0
        second = capsys.readouterr().out
        hash_a = json.loads(first[first.index("{"):])["records"][0]["config_hash"]
        hash_b = json.loads(second[second.index("{"):])["records"][0]["config_hash"]
        assert hash_a != hash_b


class TestGracefulInterrupt:
    """Ctrl-C / SIGTERM mid-suite: one resume hint, exit 130, no traceback."""

    def test_interrupted_run_exits_130_with_checkpoint_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        def interrupted_run_all(self, *args, **kwargs):
            raise KeyboardInterrupt

        from repro.runtime.runner import SuiteRunner

        monkeypatch.setattr(SuiteRunner, "run_all", interrupted_run_all)
        ckpt = str(tmp_path / "suite.ckpt")
        code = main(["experiments", "E11", "--checkpoint", ckpt])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert f"--checkpoint {ckpt}" in err

    def test_interrupted_run_without_checkpoint_suggests_one(
        self, capsys, monkeypatch
    ):
        def interrupted_run_all(self, *args, **kwargs):
            raise KeyboardInterrupt

        from repro.runtime.runner import SuiteRunner

        monkeypatch.setattr(SuiteRunner, "run_all", interrupted_run_all)
        assert main(["experiments", "E11"]) == 130
        assert "--checkpoint" in capsys.readouterr().err

    def test_interrupted_sweep_exits_130_with_cache_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        def interrupted_sweep(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.experiments.sweep.run_sweep", interrupted_sweep)
        cache = str(tmp_path / "cache")
        code = main(
            ["sweep", "E7", "--grid", "seed=0,1", "--cache-dir", cache]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert f"--cache-dir {cache}" in err

    def test_sigterm_is_mapped_to_keyboard_interrupt(self):
        import os
        import signal

        from repro.cli import _graceful_signals

        with pytest.raises(KeyboardInterrupt):
            with _graceful_signals():
                os.kill(os.getpid(), signal.SIGTERM)
                signal.sigtimedwait([], 1)  # give delivery a beat
        # handler restored after the block
        assert signal.getsignal(signal.SIGTERM) == signal.SIG_DFL


class TestServeCommand:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--cache-dir", "/tmp/c"])
        assert args.host == "127.0.0.1"
        assert args.port == 8737
        assert args.workers == 1
        assert args.max_inflight == 64
        assert args.deadline == 30.0
        assert args.breaker_threshold == 3
        assert args.func.__name__ == "_cmd_serve"

    def test_serve_flags_round_trip_into_config(self, tmp_path, monkeypatch):
        captured = {}

        def fake_run_server(service):
            captured["config"] = service.config
            return 0

        monkeypatch.setattr("repro.serve.service.run_server", fake_run_server)
        code = main([
            "serve", "--cache-dir", str(tmp_path), "--port", "0",
            "--workers", "2", "--max-inflight", "5", "--deadline", "3.5",
            "--breaker-threshold", "7", "--drain-timeout", "1.5",
        ])
        assert code == 0
        config = captured["config"]
        assert config.cache_dir == str(tmp_path)
        assert config.workers == 2
        assert config.max_inflight == 5
        assert config.deadline == 3.5
        assert config.breaker_threshold == 7
        assert config.drain_timeout == 1.5
