"""Tests for repro.core.diary."""

import pytest

from repro.core.diary import (
    DiaryEntry,
    DiaryStudy,
    ProbeLog,
    simulate_diary_study,
    triangulate,
)


@pytest.fixture
def study():
    s = DiaryStudy("s", duration_days=10, participant_ids=["p1", "p2"])
    s.record(DiaryEntry("p1", 0, "used the network a lot", reported_usage=True))
    s.record(DiaryEntry("p1", 1, "short note"))
    s.record(DiaryEntry("p2", 0, "quiet day"))
    return s


class TestStudy:
    def test_validation(self, study):
        with pytest.raises(KeyError):
            study.record(DiaryEntry("ghost", 0, "x"))
        with pytest.raises(ValueError):
            study.record(DiaryEntry("p1", 10, "out of range"))
        with pytest.raises(ValueError):
            DiaryEntry("p", -1, "x")
        with pytest.raises(ValueError):
            DiaryStudy("s", 0, ["p"])
        with pytest.raises(ValueError):
            DiaryStudy("s", 5, ["p", "p"])

    def test_compliance_rate(self, study):
        assert study.compliance_rate("p1") == pytest.approx(0.2)
        assert study.compliance_rate("p2") == pytest.approx(0.1)

    def test_fatigue_curve(self, study):
        curve = study.fatigue_curve()
        assert len(curve) == 10
        assert curve[0] == 1.0  # both wrote on day 0
        assert curve[1] == 0.5
        assert curve[9] == 0.0

    def test_entries_filters(self, study):
        assert len(study.entries(participant_id="p1")) == 2
        assert len(study.entries(day=0)) == 2

    def test_documents(self, study):
        docs = study.documents()
        assert len(docs) == 3
        assert docs[0].kind == "diary"

    def test_mean_entry_length_halves(self):
        s = DiaryStudy("s", duration_days=4, participant_ids=["p"])
        s.record(DiaryEntry("p", 0, "one two three four"))
        s.record(DiaryEntry("p", 3, "one"))
        assert s.mean_entry_length("first") == 4.0
        assert s.mean_entry_length("second") == 1.0
        with pytest.raises(ValueError):
            s.mean_entry_length("third")


class TestFatigueSlope:
    def test_flat_study_zero_slope(self):
        s = DiaryStudy("s", duration_days=5, participant_ids=["p"])
        for day in range(5):
            s.record(DiaryEntry("p", day, "steady"))
        assert s.fatigue_slope() == pytest.approx(0.0)

    def test_decaying_study_negative_slope(self):
        s = DiaryStudy("s", duration_days=6, participant_ids=["p1", "p2"])
        for day in range(6):
            s.record(DiaryEntry("p1", day, "x"))
        for day in range(2):
            s.record(DiaryEntry("p2", day, "x"))
        assert s.fatigue_slope() < 0


class TestTriangulation:
    def test_perfect_recall(self):
        s = DiaryStudy("s", duration_days=3, participant_ids=["p"])
        probe = ProbeLog()
        for day in range(3):
            probe.log("p", day)
            s.record(DiaryEntry("p", day, "used it", reported_usage=True))
        result = triangulate(s, probe)
        assert result["mean_recall"] == 1.0
        assert result["underreporting_rate"] == 0.0

    def test_underreporting_detected(self):
        s = DiaryStudy("s", duration_days=4, participant_ids=["p"])
        probe = ProbeLog()
        for day in range(4):
            probe.log("p", day)
        s.record(DiaryEntry("p", 0, "used it", reported_usage=True))
        result = triangulate(s, probe)
        assert result["underreporting_rate"] == pytest.approx(0.75)
        assert result["per_participant"]["p"]["underreported"] == 3

    def test_overreporting_detected(self):
        s = DiaryStudy("s", duration_days=2, participant_ids=["p"])
        s.record(DiaryEntry("p", 0, "used it (allegedly)", reported_usage=True))
        result = triangulate(s, ProbeLog())
        assert result["per_participant"]["p"]["overreported"] == 1
        # No observed usage -> recall defined as 1.0.
        assert result["per_participant"]["p"]["recall"] == 1.0

    def test_probe_events_outside_window_ignored(self):
        s = DiaryStudy("s", duration_days=2, participant_ids=["p"])
        probe = ProbeLog()
        probe.log("p", 50)
        result = triangulate(s, probe)
        assert result["per_participant"]["p"]["observed_days"] == 0


class TestSimulation:
    def test_deterministic(self):
        a = simulate_diary_study(seed=4)
        b = simulate_diary_study(seed=4)
        assert len(a[0].entries()) == len(b[0].entries())
        assert a[1].events == b[1].events

    def test_planted_fatigue_recovered(self):
        study, _ = simulate_diary_study(
            n_participants=30, duration_days=28,
            compliance_decay_per_day=0.02, seed=1,
        )
        assert study.fatigue_slope() < -0.005

    def test_planted_recall_error_recovered(self):
        study, probe = simulate_diary_study(
            n_participants=40, duration_days=28, recall_error=0.3,
            compliance_decay_per_day=0.0, initial_compliance=1.0, seed=2,
        )
        result = triangulate(study, probe)
        assert result["underreporting_rate"] == pytest.approx(0.3, abs=0.05)

    def test_entry_length_decays_with_compliance(self):
        study, _ = simulate_diary_study(
            n_participants=30, duration_days=28,
            compliance_decay_per_day=0.02, seed=3,
        )
        assert study.mean_entry_length("second") < study.mean_entry_length("first")

    def test_bad_recall_error_rejected(self):
        with pytest.raises(ValueError):
            simulate_diary_study(recall_error=1.5)
