"""Tests for repro.bibliometrics.networks."""

import pytest

from repro.bibliometrics.corpus import Author, Corpus, Paper, Venue
from repro.bibliometrics.networks import (
    citation_graph,
    coauthorship_graph,
    collaboration_stats,
)


@pytest.fixture
def corpus():
    c = Corpus()
    c.add_venue(Venue("v", "V"))
    c.add_author(Author("a1", "A", sector="university", region="europe"))
    c.add_author(Author("a2", "B", sector="hyperscaler", region="europe"))
    c.add_author(Author("a3", "C", sector="university", region="africa"))
    c.add_paper(Paper("p1", "t1", "x", "v", 2020, ("a1", "a2")))
    c.add_paper(Paper("p2", "t2", "x", "v", 2021, ("a1", "a2", "a3"),
                      references=("p1",)))
    c.add_paper(Paper("p3", "t3", "x", "v", 2022, ("a3",),
                      references=("p1", "p2", "ghost")))
    return c


class TestCoauthorship:
    def test_edge_weights_accumulate(self, corpus):
        graph = coauthorship_graph(corpus)
        assert graph["a1"]["a2"]["weight"] == 2
        assert graph["a1"]["a3"]["weight"] == 1

    def test_node_attributes(self, corpus):
        graph = coauthorship_graph(corpus)
        assert graph.nodes["a2"]["sector"] == "hyperscaler"
        assert graph.nodes["a3"]["region"] == "africa"

    def test_year_window(self, corpus):
        graph = coauthorship_graph(corpus, years=(2020, 2020))
        assert "a3" not in graph

    def test_solo_papers_add_isolated_nodes(self, corpus):
        graph = coauthorship_graph(corpus)
        assert graph.degree("a3") == 2  # linked via p2 only


class TestCitationGraph:
    def test_edges_directed_citer_to_cited(self, corpus):
        graph = citation_graph(corpus)
        assert graph.has_edge("p2", "p1")
        assert not graph.has_edge("p1", "p2")

    def test_dangling_references_dropped(self, corpus):
        graph = citation_graph(corpus)
        assert "ghost" not in graph

    def test_node_attributes(self, corpus):
        graph = citation_graph(corpus)
        assert graph.nodes["p1"]["year"] == 2020


class TestStats:
    def test_cross_sector_share(self, corpus):
        graph = coauthorship_graph(corpus)
        stats = collaboration_stats(graph)
        # Edges: a1-a2 (cross), a1-a3 (same sector), a2-a3 (cross).
        assert stats["cross_sector_edge_share"] == pytest.approx(2 / 3)

    def test_cross_region_share(self, corpus):
        stats = collaboration_stats(coauthorship_graph(corpus))
        assert stats["cross_region_edge_share"] == pytest.approx(2 / 3)

    def test_empty_graph(self):
        import networkx as nx
        stats = collaboration_stats(nx.Graph())
        assert stats["n_authors"] == 0
        assert stats["mean_degree"] == 0.0

    def test_largest_component(self, corpus):
        stats = collaboration_stats(coauthorship_graph(corpus))
        assert stats["largest_component_share"] == 1.0
