"""Tests for repro.ethics.power and repro.ethics.irb."""

import pytest

from repro.ethics.irb import ChecklistItem, ProtocolChecklist, default_checklist
from repro.ethics.power import assess_power_dynamics

ALL_DIMS = (
    "resource_dependence", "institutional_gap", "historical_harm",
    "exit_cost", "representation_gap",
)


def dims(value):
    return {k: value for k in ALL_DIMS}


class TestPower:
    def test_low_band(self):
        assert assess_power_dynamics(dims(0.1)).band == "low"

    def test_moderate_band(self):
        assert assess_power_dynamics(dims(0.45)).band == "moderate"

    def test_high_band(self):
        assert assess_power_dynamics(dims(0.9)).band == "high"

    def test_score_is_weighted_mean(self):
        assert assess_power_dynamics(dims(0.5)).score == pytest.approx(0.5)

    def test_drivers_identified(self):
        d = dims(0.1)
        d["historical_harm"] = 0.9
        assessment = assess_power_dynamics(d)
        assert assessment.drivers == ("historical_harm",)
        assert len(assessment.mitigations) == 1
        assert "sovereignty" in assessment.mitigations[0]

    def test_missing_dimension_rejected(self):
        incomplete = dims(0.5)
        del incomplete["exit_cost"]
        with pytest.raises(ValueError):
            assess_power_dynamics(incomplete)

    def test_unknown_dimension_rejected(self):
        extra = dims(0.5)
        extra["vibes"] = 0.5
        with pytest.raises(ValueError):
            assess_power_dynamics(extra)

    def test_out_of_range_rejected(self):
        bad = dims(0.5)
        bad["exit_cost"] = 1.5
        with pytest.raises(ValueError):
            assess_power_dynamics(bad)


GOOD_PLAN = {
    "consent_process": "written consent at intake, revisited quarterly",
    "consent_withdrawal_supported": True,
    "data_anonymized": True,
    "power_risk_band": "moderate",
    "power_mitigations_planned": True,
    "community_in_problem_formation": True,
    "partnerships_documented": True,
    "positionality_statement": "we write as outside engineers",
    "works_with_indigenous_communities": True,
    "data_sovereignty_plan": "data stays on tribal servers",
}


class TestChecklist:
    def test_good_plan_approved(self):
        result = default_checklist().evaluate(GOOD_PLAN)
        assert result.approved
        assert result.failed == []
        assert result.unaddressed == []

    def test_missing_consent_fails(self):
        plan = dict(GOOD_PLAN, consent_process="")
        result = default_checklist().evaluate(plan)
        assert not result.approved
        assert "consent-documented" in result.failed

    def test_unaddressed_required_key_blocks_approval(self):
        plan = dict(GOOD_PLAN)
        del plan["data_anonymized"]
        result = default_checklist().evaluate(plan)
        assert not result.approved
        assert "anonymization" in result.unaddressed

    def test_recommended_failures_do_not_block(self):
        plan = dict(GOOD_PLAN, positionality_statement="",
                    partnerships_documented=False,
                    community_in_problem_formation=False)
        result = default_checklist().evaluate(plan)
        assert result.approved
        assert len(result.failed) == 3

    def test_indigenous_work_requires_sovereignty_plan(self):
        plan = dict(GOOD_PLAN, data_sovereignty_plan="")
        result = default_checklist().evaluate(plan)
        assert not result.approved
        plan_na = dict(GOOD_PLAN, works_with_indigenous_communities=False,
                       data_sovereignty_plan="")
        assert default_checklist().evaluate(plan_na).approved

    def test_low_power_risk_needs_no_mitigations(self):
        plan = dict(GOOD_PLAN, power_risk_band="low",
                    power_mitigations_planned=False)
        assert default_checklist().evaluate(plan).approved

    def test_high_power_risk_needs_mitigations(self):
        plan = dict(GOOD_PLAN, power_risk_band="high",
                    power_mitigations_planned=False)
        assert not default_checklist().evaluate(plan).approved

    def test_duplicate_item_rejected(self):
        checklist = ProtocolChecklist("x")
        item = ChecklistItem("a", "d", ("k",), lambda p: True)
        checklist.add(item)
        with pytest.raises(ValueError):
            checklist.add(item)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            ChecklistItem("a", "d", ("k",), lambda p: True, severity="vital")
