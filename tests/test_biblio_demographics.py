"""Tests for repro.bibliometrics.demographics."""

import pytest

from repro.bibliometrics.corpus import Author, Corpus, Paper, Venue
from repro.bibliometrics.demographics import (
    author_retention,
    gatekeeping_index,
    newcomer_share,
    region_mix,
    room_report,
    sector_mix,
)


@pytest.fixture
def corpus():
    c = Corpus()
    c.add_venue(Venue("v", "V"))
    c.add_author(Author("vet", "Veteran", sector="hyperscaler",
                        region="north-america"))
    c.add_author(Author("mid", "Mid", sector="university", region="europe"))
    c.add_author(Author("new1", "New1", sector="university",
                        region="latin-america"))
    c.add_author(Author("new2", "New2", sector="operator", region="africa"))
    # Veteran publishes every year; newcomers appear in 2021.
    c.add_paper(Paper("p0", "t", "a", "v", 2019, ("vet",)))
    c.add_paper(Paper("p1", "t", "a", "v", 2020, ("vet", "mid")))
    c.add_paper(Paper("p2", "t", "a", "v", 2021, ("vet", "new1")))
    c.add_paper(Paper("p3", "t", "a", "v", 2021, ("new2",)))
    c.add_paper(Paper("p4", "t", "a", "v", 2022, ("vet", "mid")))
    return c


class TestNewcomers:
    def test_first_year_skipped(self, corpus):
        shares = newcomer_share(corpus, "v")
        assert 2019 not in shares

    def test_shares(self, corpus):
        shares = newcomer_share(corpus, "v")
        assert shares[2020] == pytest.approx(0.5)   # mid is new, vet is not
        assert shares[2021] == pytest.approx(2 / 3)  # new1, new2 of 3 slots
        assert shares[2022] == 0.0


class TestRetention:
    def test_veteran_cohort_retained(self, corpus):
        # 2020 cohort = {vet, mid}; both publish again by 2022.
        assert author_retention(corpus, "v", 2020, horizon=2) == 1.0

    def test_oneshot_cohort_lost(self, corpus):
        # 2021 cohort includes new1/new2 who never return; vet returns.
        assert author_retention(corpus, "v", 2021, horizon=1) == pytest.approx(1 / 3)

    def test_empty_year(self, corpus):
        assert author_retention(corpus, "v", 1999) == 0.0

    def test_bad_horizon(self, corpus):
        with pytest.raises(ValueError):
            author_retention(corpus, "v", 2020, horizon=0)


class TestMixes:
    def test_sector_shares_sum_to_one(self, corpus):
        mix = sector_mix(corpus, "v")
        assert sum(mix["shares"].values()) == pytest.approx(1.0)
        assert mix["shares"]["hyperscaler"] == pytest.approx(4 / 8)

    def test_region_mix(self, corpus):
        mix = region_mix(corpus, "v")
        assert mix["shares"]["latin-america"] == pytest.approx(1 / 8)

    def test_empty_corpus(self):
        mix = sector_mix(Corpus())
        assert mix["shares"] == {}
        assert mix["n_slots"] == 0


class TestGatekeeping:
    def test_every_paper_has_veteran(self):
        c = Corpus()
        c.add_venue(Venue("v", "V"))
        c.add_author(Author("vet", "V"))
        for i in range(10):
            c.add_author(Author(f"a{i}", f"A{i}"))
            c.add_paper(Paper(f"p{i}", "t", "a", "v", 2020, ("vet", f"a{i}")))
        assert gatekeeping_index(c, "v") == 1.0

    def test_open_room_low_index(self):
        c = Corpus()
        c.add_venue(Venue("v", "V"))
        for i in range(20):
            c.add_author(Author(f"a{i}", f"A{i}"))
            c.add_paper(Paper(f"p{i}", "t", "a", "v", 2020, (f"a{i}",)))
        # Top decile = 2 authors -> 2 of 20 papers.
        assert gatekeeping_index(c, "v") == pytest.approx(0.1)

    def test_empty_venue(self, corpus):
        corpus.add_venue(Venue("empty", "E"))
        assert gatekeeping_index(corpus, "empty") == 0.0


class TestRoomReport:
    def test_keys_and_ranges(self, corpus):
        report = room_report(corpus, "v")
        assert set(report) == {
            "mean_newcomer_share", "sector_gini", "region_gini",
            "hyperscaler_slot_share", "global_south_slot_share",
            "gatekeeping_index",
        }
        for value in report.values():
            assert 0.0 <= value <= 1.0

    def test_synthetic_corpus_networking_room_narrower(self):
        from repro.bibliometrics.synthgen import (
            SyntheticCorpusConfig, generate_corpus,
        )
        corpus, _ = generate_corpus(
            SyntheticCorpusConfig(start_year=2019, end_year=2023, seed=0,
                                  authors_per_venue_pool=40)
        )
        networking = room_report(corpus, "sigcomm-like")
        hci = room_report(corpus, "ictd-like")
        assert (
            networking["hyperscaler_slot_share"]
            > hci["hyperscaler_slot_share"]
        )
        assert (
            networking["global_south_slot_share"]
            < hci["global_south_slot_share"]
        )
