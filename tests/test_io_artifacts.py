"""Tests for repro.io.artifacts.

The artifact cache must treat every corruption mode as a miss (never a
crash), survive concurrent writers racing on one key, generate at most
once under get_or_create races, and orphan old entries on a version
bump.
"""

import json
import multiprocessing

import pytest

from repro.io.artifacts import ARTIFACT_FORMAT_VERSION, ArtifactCache, artifact_key
from repro.obs.metrics import MetricsRegistry, use_metrics

CONFIG = {"n": 3, "name": "squares"}


def squares(n=3):
    return [{"i": i, "sq": i * i} for i in range(n)]


class TestKeying:
    def test_key_is_stable(self):
        assert artifact_key("k", CONFIG, 1) == artifact_key("k", dict(CONFIG), 1)

    def test_key_varies_with_each_component(self):
        base = artifact_key("k", CONFIG, 1)
        assert artifact_key("other", CONFIG, 1) != base
        assert artifact_key("k", {"n": 4, "name": "squares"}, 1) != base
        assert artifact_key("k", CONFIG, 2) != base

    def test_key_ignores_dict_order(self):
        assert artifact_key("k", {"a": 1, "b": 2}, 1) == artifact_key(
            "k", {"b": 2, "a": 1}, 1
        )


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        assert ArtifactCache(tmp_path).get("squares", CONFIG) is None

    def test_put_then_get_roundtrips(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("squares", CONFIG, squares())
        assert cache.get("squares", CONFIG) == squares()

    def test_different_config_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("squares", CONFIG, squares())
        assert cache.get("squares", {"n": 4, "name": "squares"}) is None

    def test_hit_and_miss_counted(self, tmp_path):
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            cache = ArtifactCache(tmp_path)
            cache.get("squares", CONFIG)
            cache.put("squares", CONFIG, squares())
            cache.get("squares", CONFIG)
        counters = metrics.snapshot()["counters"]
        assert counters["artifacts.misses"] == 1
        assert counters["artifacts.hits"] == 1
        assert counters["artifacts.writes"] == 1

    def test_entry_is_inspectable_jsonl(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.put("squares", CONFIG, squares())
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["artifact"] == "squares"
        assert header["count"] == 3
        assert [json.loads(line) for line in lines[1:]] == squares()


class TestCorruption:
    """A damaged entry is regenerated, never raised."""

    def _put(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        return cache, cache.put("squares", CONFIG, squares())

    def test_truncated_file_is_a_miss(self, tmp_path):
        cache, path = self._put(tmp_path)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        assert cache.get("squares", CONFIG) is None

    def test_malformed_json_is_a_miss(self, tmp_path):
        cache, path = self._put(tmp_path)
        path.write_text("not json at all\n")
        assert cache.get("squares", CONFIG) is None

    def test_empty_file_is_a_miss(self, tmp_path):
        cache, path = self._put(tmp_path)
        path.write_text("")
        assert cache.get("squares", CONFIG) is None

    def test_header_count_mismatch_is_a_miss(self, tmp_path):
        cache, path = self._put(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one body row
        assert cache.get("squares", CONFIG) is None

    def test_header_kind_mismatch_is_a_miss(self, tmp_path):
        cache, path = self._put(tmp_path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["artifact"] = "cubes"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert cache.get("squares", CONFIG) is None

    def test_corruption_counted(self, tmp_path):
        cache, path = self._put(tmp_path)
        path.write_text("garbage\n")
        metrics = MetricsRegistry()
        with use_metrics(metrics):
            assert cache.get("squares", CONFIG) is None
        assert metrics.snapshot()["counters"]["artifacts.corrupt"] == 1

    def test_regeneration_overwrites_corrupt_entry(self, tmp_path):
        cache, path = self._put(tmp_path)
        path.write_text("garbage\n")
        assert cache.get_or_create("squares", CONFIG, squares) == squares()
        assert cache.get("squares", CONFIG) == squares()


class TestGetOrCreate:
    def test_factory_called_once(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        calls = []

        def factory():
            calls.append(1)
            return squares()

        assert cache.get_or_create("squares", CONFIG, factory) == squares()
        assert cache.get_or_create("squares", CONFIG, factory) == squares()
        assert len(calls) == 1


class TestVersioning:
    def test_version_bump_orphans_old_entries(self, tmp_path):
        old = ArtifactCache(tmp_path, version=ARTIFACT_FORMAT_VERSION)
        old.put("squares", CONFIG, squares())
        bumped = ArtifactCache(tmp_path, version=ARTIFACT_FORMAT_VERSION + 1)
        assert bumped.get("squares", CONFIG) is None
        # the old reader still sees its entry
        assert old.get("squares", CONFIG) == squares()

    def test_invalidate_kind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("squares", CONFIG, squares())
        cache.put("cubes", CONFIG, squares())
        assert cache.invalidate("squares") == 1
        assert cache.get("squares", CONFIG) is None
        assert cache.get("cubes", CONFIG) == squares()

    def test_invalidate_all(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("squares", CONFIG, squares())
        cache.put("cubes", CONFIG, squares())
        assert cache.invalidate() == 2
        assert cache.get("squares", CONFIG) is None
        assert cache.get("cubes", CONFIG) is None

    def test_invalidate_missing_root_is_zero(self, tmp_path):
        assert ArtifactCache(tmp_path / "nope").invalidate() == 0


def _racing_writer(root, worker_id, barrier, results):
    cache = ArtifactCache(root)
    barrier.wait()
    cache.put("race", CONFIG, [{"worker": worker_id, "i": i} for i in range(50)])
    results.put(worker_id)


def _racing_creator(root, worker_id, barrier, results):
    cache = ArtifactCache(root)
    barrier.wait()
    records = cache.get_or_create(
        "race", CONFIG, lambda: [{"creator": worker_id, "i": i} for i in range(50)]
    )
    results.put(records[0]["creator"])


class TestConcurrency:
    def test_concurrent_writers_leave_a_valid_entry(self, tmp_path):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(4)
        results = context.Queue()
        procs = [
            context.Process(
                target=_racing_writer, args=(str(tmp_path), i, barrier, results)
            )
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        records = ArtifactCache(tmp_path).get("race", CONFIG)
        assert records is not None and len(records) == 50
        # one writer's file won wholesale — rows are never interleaved
        winners = {row["worker"] for row in records}
        assert len(winners) == 1

    def test_racing_get_or_create_generates_once(self, tmp_path):
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(4)
        results = context.Queue()
        procs = [
            context.Process(
                target=_racing_creator, args=(str(tmp_path), i, barrier, results)
            )
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        creators = {results.get(timeout=30) for _ in procs}
        for proc in procs:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        # every process observed the same creator's records
        assert len(creators) == 1


class TestLockTimeout:
    """A wedged lock holder degrades get_or_create, never freezes it."""

    def _hold_lock(self, cache, kind, config):
        """Take the per-key flock the way a wedged process would."""
        import fcntl

        lock_path = cache.path_for(kind, config).with_suffix(".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = lock_path.open("a")
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        return handle

    def test_wedged_holder_times_out_with_context(self, tmp_path):
        from repro.errors import CacheLockTimeout

        cache = ArtifactCache(tmp_path, lock_timeout=0.15)
        holder = self._hold_lock(cache, "slow", CONFIG)
        try:
            with pytest.raises(CacheLockTimeout) as excinfo:
                with cache._key_lock("slow", CONFIG):
                    pass  # pragma: no cover - never acquired
        finally:
            holder.close()
        assert excinfo.value.timeout == 0.15
        assert excinfo.value.lock_path.endswith(".lock")

    def test_get_or_create_falls_back_to_uncached_compute(self, tmp_path):
        metrics = MetricsRegistry()
        cache = ArtifactCache(tmp_path, lock_timeout=0.15)
        holder = self._hold_lock(cache, "slow", CONFIG)
        calls = []

        def factory():
            calls.append(1)
            return squares()

        try:
            with use_metrics(metrics):
                records = cache.get_or_create("slow", CONFIG, factory)
        finally:
            holder.close()
        assert records == squares()
        assert calls == [1]
        counts = metrics.snapshot()["counters"]
        assert counts["artifacts.lock_timeouts"] == 1
        # the entry was NOT written: the wedged holder may still be
        # mid-generation, and a half-baked overwrite would be worse
        assert not cache.path_for("slow", CONFIG).exists()

    def test_released_lock_resumes_normal_caching(self, tmp_path):
        cache = ArtifactCache(tmp_path, lock_timeout=0.15)
        holder = self._hold_lock(cache, "slow", CONFIG)
        cache.get_or_create("slow", CONFIG, squares)  # timed-out fallback
        holder.close()  # the wedged holder dies; the lock frees
        records = cache.get_or_create("slow", CONFIG, squares)
        assert records == squares()
        assert cache.path_for("slow", CONFIG).exists()

    def test_factory_errors_are_not_mistaken_for_timeouts(self, tmp_path):
        cache = ArtifactCache(tmp_path, lock_timeout=0.15)

        def factory():
            raise RuntimeError("factory bug, not a lock problem")

        with pytest.raises(RuntimeError, match="factory bug"):
            cache.get_or_create("k", CONFIG, factory)

    def test_uncontended_lock_acquires_immediately(self, tmp_path):
        import time

        cache = ArtifactCache(tmp_path, lock_timeout=0.15)
        started = time.monotonic()
        with cache._key_lock("k", CONFIG):
            pass
        assert time.monotonic() - started < 0.1
