"""Tests for repro.ethics.retention."""

import pytest

from repro.ethics.consent import ConsentRegistry
from repro.ethics.retention import (
    DataRecord,
    RetentionManager,
    RetentionRule,
)


@pytest.fixture
def manager():
    registry = ConsentRegistry()
    registry.grant("p1", {"interview", "recording"}, now=0)
    registry.grant("p2", {"interview"}, now=0)
    rules = [
        RetentionRule("recording", max_age=10),
        RetentionRule("transcript", max_age=None),
        RetentionRule("fieldnote", max_age=100, destroy_on_withdrawal=False),
    ]
    m = RetentionManager(rules, registry)
    m.collect("rec1", "p1", "recording", now=0)
    m.collect("tr1", "p1", "transcript", now=1)
    m.collect("fn1", "p2", "fieldnote", now=2)
    return m, registry


class TestRules:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionRule("x", max_age=-1)
        with pytest.raises(ValueError):
            RetentionRule("x", withdrawal_grace=-1)

    def test_duplicate_rule_rejected(self):
        with pytest.raises(ValueError):
            RetentionManager(
                [RetentionRule("a"), RetentionRule("a")], ConsentRegistry()
            )


class TestCollection:
    def test_ungoverned_category_rejected(self, manager):
        m, _ = manager
        with pytest.raises(KeyError):
            m.collect("x", "p1", "blood-sample", now=0)

    def test_duplicate_record_rejected(self, manager):
        m, _ = manager
        with pytest.raises(ValueError):
            m.collect("rec1", "p1", "recording", now=5)


class TestAgeRetention:
    def test_not_due_within_window(self, manager):
        m, _ = manager
        assert m.due_for_destruction(now=5) == []

    def test_due_after_max_age(self, manager):
        m, _ = manager
        assert m.due_for_destruction(now=11) == ["rec1"]

    def test_no_age_limit_never_age_due(self, manager):
        m, _ = manager
        assert "tr1" not in m.due_for_destruction(now=10_000)


class TestWithdrawal:
    def test_withdrawal_makes_records_due(self, manager):
        m, registry = manager
        registry.withdraw("p1", now=3)
        m.note_withdrawal("p1", now=3)
        due = m.due_for_destruction(now=3)
        assert "rec1" in due
        assert "tr1" in due

    def test_non_withdrawal_categories_exempt(self, manager):
        m, registry = manager
        registry.withdraw("p2", now=3)
        m.note_withdrawal("p2", now=3)
        assert "fn1" not in m.due_for_destruction(now=3)


class TestDestroy:
    def test_destroy_clears_due(self, manager):
        m, _ = manager
        m.destroy("rec1", now=11)
        assert m.due_for_destruction(now=12) == []
        assert not m.records()[0].held or m.records()[0].record_id != "rec1"

    def test_double_destroy_rejected(self, manager):
        m, _ = manager
        m.destroy("rec1", now=5)
        with pytest.raises(ValueError):
            m.destroy("rec1", now=6)


class TestAudit:
    def test_clean_study(self, manager):
        m, _ = manager
        audit = m.audit(now=5)
        assert audit["clean"]
        assert audit["held_records"] == 3

    def test_age_finding(self, manager):
        m, _ = manager
        audit = m.audit(now=20)
        assert not audit["clean"]
        assert audit["overdue_age"] == ["rec1"]

    def test_withdrawal_finding_after_grace(self, manager):
        m, _ = manager
        m.note_withdrawal("p1", now=3)
        within_grace = m.audit(now=4)
        assert "rec1" not in within_grace["overdue_withdrawal"]
        after_grace = m.audit(now=6)
        assert set(after_grace["overdue_withdrawal"]) == {"rec1", "tr1"}

    def test_destruction_resolves_findings(self, manager):
        m, _ = manager
        m.note_withdrawal("p1", now=3)
        m.destroy("rec1", now=4)
        m.destroy("tr1", now=4)
        assert m.audit(now=10)["clean"]


def test_record_held_property():
    record = DataRecord("r", "p", "transcript", 0)
    assert record.held
    record.destroyed_at = 5
    assert not record.held
