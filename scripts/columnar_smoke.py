"""End-to-end smoke for the columnar experiment backend
(run by ``make experiments-columnar-smoke``).

Five probes, each printing one PASS line; any failure is a loud
assertion with a non-zero exit:

1. **identity rules** — ``corpus.backend``/``corpus.shard_size`` are
   execution knobs: flipping them leaves ``config_hash`` untouched
   while content knobs still split it;
2. **result equality** — E1 fast produces bit-identical result
   fingerprints on ``backend=classic`` and ``backend=columnar``
   (including via the CLI-style ``--set corpus.backend=...`` override
   path);
3. **shard-cached layout** — the columnar run lands a ``layout:
   columnar`` manifest plus per-shard ``corpus-shard`` entries, not a
   monolithic classic blob;
4. **warm-cache replay** — with the in-memory LRU dropped, the
   experiment replays from the shard cache bit-identically while at
   most one shard is ever resident;
5. **sweep memoization across backends** — a sweep warmed on the
   classic backend serves the columnar-backend rerun entirely from
   cache (every point ``source="cache"``, zero compute jobs).
"""

import os
import sys
import tempfile

_ROOT = os.path.join(os.path.dirname(__file__), "..")
sys.path.insert(0, os.path.join(_ROOT, "src"))
sys.path.insert(0, _ROOT)  # for tests.backend_oracle (shared helpers)

from repro.experiments import _corpus  # noqa: E402
from repro.experiments.registry import make_spec  # noqa: E402
from repro.experiments.spec import parse_set_overrides  # noqa: E402
from repro.experiments.sweep import run_sweep  # noqa: E402
from repro.integrity.scrub import iter_entries  # noqa: E402
from tests.backend_oracle import result_fingerprint  # noqa: E402


def main() -> int:
    from repro.experiments import e01_method_adoption as e1

    classic_spec = make_spec("E1", "fast", overrides={"corpus.backend": "classic"})
    columnar_spec = make_spec(
        "E1", "fast",
        overrides=parse_set_overrides(
            type(classic_spec),
            ["corpus.backend=columnar", "corpus.shard_size=1500"],
        ),
    )
    assert classic_spec.config_hash() == columnar_spec.config_hash(), (
        "backend knobs must not split config_hash"
    )
    content_spec = make_spec("E1", "fast", overrides={"corpus.venue_scale": "2.0"})
    assert content_spec.config_hash() != classic_spec.config_hash(), (
        "content knobs must split config_hash"
    )
    print("PASS identity: backend knobs outside config_hash, content knobs inside")

    with tempfile.TemporaryDirectory(prefix="columnar-smoke-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        previous = _corpus.configure_corpus_cache(cache_dir)
        try:
            _corpus.clear_corpus_cache()
            classic = result_fingerprint(e1.run(classic_spec))
            _corpus.clear_corpus_cache()  # no cross-backend memory aliasing
            columnar = result_fingerprint(e1.run(columnar_spec))
            assert classic == columnar, f"{classic} != {columnar}"
            print(f"PASS equality: E1 fast fingerprint {classic[:16]} on both backends")

            kinds = {}
            for entry in iter_entries(cache_dir):
                kinds[entry.kind] = kinds.get(entry.kind, 0) + 1
            shards = kinds.get("corpus-shard", 0)
            assert shards >= 2, f"expected per-shard entries, got {kinds}"
            print(f"PASS layout: manifest + {shards} corpus-shard entries "
                  f"(kinds: {kinds})")

            _corpus.clear_corpus_cache()  # memory only — disk stays warm
            warm = result_fingerprint(e1.run(columnar_spec))
            assert warm == classic, "warm-cache replay drifted"
            corpus = _corpus.shared_columnar_corpus_from_config(
                _corpus.corpus_config_from_params(
                    columnar_spec.seed, columnar_spec.corpus
                ),
                columnar_spec.corpus.shard_size,
            )
            for _ in corpus.iter_shards():
                assert corpus.resident_shards() <= 1, corpus.resident_shards()
            print("PASS replay: warm shard cache, bit-identical, <=1 resident shard")

            sweep_cache = os.path.join(tmp, "sweep-cache")
            grid = {"seed": [0, 1]}
            cold = run_sweep(
                "E1", grid, preset="fast",
                base_overrides={"corpus.backend": "classic"},
                cache_dir=sweep_cache,
            )
            assert all(p.source == "run" for p in cold.points), (
                [p.source for p in cold.points]
            )
            _corpus.clear_corpus_cache()
            replay = run_sweep(
                "E1", grid, preset="fast",
                base_overrides={"corpus.backend": "columnar"},
                cache_dir=sweep_cache,
            )
            assert all(p.source == "cache" for p in replay.points), (
                [p.source for p in replay.points]
            )
            assert cold.fingerprint() == replay.fingerprint(), "sweep drift"
            print("PASS sweep: classic-warmed cache served the columnar rerun "
                  "with zero compute jobs")
        finally:
            _corpus.configure_corpus_cache(previous)
            _corpus.clear_corpus_cache()
    print("columnar-smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
