"""End-to-end smoke for the self-healing data plane
(run by ``make integrity-smoke``).

Five probes, each printing one PASS line; any failure is a loud
assertion with a non-zero exit:

1. **strict read raises** — flip one byte in a cached corpus shard;
   the strict read path surfaces a typed ``IntegrityError`` (and the
   lenient ``get()`` treats it as a miss, never returning the damaged
   records);
2. **scrub classifies** — the scrubber finds exactly the damaged entry
   and nothing else;
3. **repair restores the fingerprint** — ``repair_cache`` regenerates
   only the damaged shard, and the corpus fingerprint replayed from
   the healed cache is bit-identical to the pre-damage oracle;
4. **snapshot round trip** — export a tagged snapshot, import verifies
   it, and a tampered manifest is rejected with a one-line typed
   error;
5. **serve recomputes through corruption** — with the ``bitrot`` disk
   fault corrupting a freshly written result entry, the server answers
   200 via recompute (counted ``artifacts.integrity_failures``), never
   a 500.
"""

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bibliometrics.shardgen import (  # noqa: E402
    ShardedCorpusConfig,
    generate_columnar_corpus,
)
from repro.errors import IntegrityError  # noqa: E402
from repro.integrity import (  # noqa: E402
    export_snapshot,
    import_snapshot,
    repair_cache,
    scrub_cache,
)
from repro.obs.metrics import MetricsRegistry, use_metrics  # noqa: E402
from repro.runtime.faultinject import (  # noqa: E402
    FaultInjector,
    use_fault_injector,
)
from repro.serve.client import fetch  # noqa: E402
from repro.serve.service import (  # noqa: E402
    ResultService,
    ServeConfig,
    ServerThread,
)

HOST = "127.0.0.1"

CONFIG = ShardedCorpusConfig(
    start_year=2016, end_year=2025, seed=0,
    total_papers=400, shard_size=100,
)


def flip_byte(path: Path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def probe_corrupt_then_repair(tmp: Path) -> None:
    cache_dir = tmp / "cache"
    corpus = generate_columnar_corpus(CONFIG, cache_dir=str(cache_dir))
    oracle = corpus.fingerprint()
    entries = sorted((cache_dir / "corpus-shard").glob("*.jsonl"))
    assert len(entries) == 4, entries

    target = entries[1]
    flip_byte(target)

    # probe 1: the strict read path raises a typed error
    from repro.integrity import verify_entry

    try:
        verify_entry(target)
    except IntegrityError as exc:
        assert "\n" not in str(exc), exc
    else:
        raise AssertionError("verify_entry accepted a damaged shard")
    print("PASS strict read raises IntegrityError on a flipped byte")

    # probe 2: the scrubber finds exactly the damaged entry
    report = scrub_cache(cache_dir)
    assert report.entries == 4, report.to_dict()
    assert report.damaged == 1, report.to_dict()
    assert report.findings[0].key == target.stem, report.to_dict()
    print("PASS scrub classifies exactly the damaged entry")

    # probe 3: repair regenerates it and the fingerprint is restored
    report = repair_cache(cache_dir, report)
    assert report.repair_counts() == {"regenerated": 1}, report.to_dict()
    assert scrub_cache(cache_dir).damaged == 0
    healed = generate_columnar_corpus(CONFIG, cache_dir=str(cache_dir))
    assert healed.fingerprint() == oracle, "fingerprint drifted after repair"
    print(f"PASS repair restored the exact fingerprint {oracle[:12]}...")


def probe_snapshot(tmp: Path) -> None:
    snap = tmp / "snap"
    manifest = export_snapshot(snap, CONFIG, tag="smoke")
    imported = import_snapshot(snap)
    assert imported.fingerprint() == manifest["fingerprint"]

    import json

    manifest_path = snap / "snapshot.json"
    tampered = json.loads(manifest_path.read_text())
    tampered["tag"] = "evil"
    manifest_path.write_text(json.dumps(tampered))
    try:
        import_snapshot(snap)
    except IntegrityError as exc:
        assert "\n" not in str(exc), exc
    else:
        raise AssertionError("import accepted a tampered manifest")
    print("PASS snapshot round trip verifies; tampered manifest rejected")


def probe_serve_recomputes_through_corruption(tmp: Path) -> None:
    injector = FaultInjector(seed=11)
    injector.register("artifacts:damage", mode="bitrot", times=1)
    service = ResultService(
        ServeConfig(cache_dir=str(tmp / "serve-cache"), deadline=120.0),
        metrics=MetricsRegistry(),
    )
    with use_metrics(service.metrics), use_fault_injector(injector):
        with ServerThread(service) as server:
            first = fetch(HOST, server.port, "/v1/result/E5?seed=0", timeout=120)
            assert first.status == 200, first.status
            assert injector.stats()["artifacts:damage"]["fired"] == 1
            second = fetch(HOST, server.port, "/v1/result/E5?seed=0", timeout=120)
            assert second.status == 200, second.status
            assert second.json()["source"] == "computed", second.json()["source"]
    counters = service.metrics.snapshot()["counters"]
    assert counters["artifacts.integrity_failures"] == 1, counters
    assert "serve.responses.500" not in counters, counters
    print("PASS serve answered 200 via recompute over a corrupted entry")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="integrity-smoke-") as tmp:
        tmp = Path(tmp)
        probe_corrupt_then_repair(tmp)
        probe_snapshot(tmp)
        probe_serve_recomputes_through_corruption(tmp)
    print("integrity-smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
