"""End-to-end smoke for ``repro serve`` (run by ``make serve-smoke``).

Six probes, each printing one PASS line; any failure is a loud
assertion with a non-zero exit:

1. **hot+cold fetch** — a cold request computes (200, ``ETag``), the
   same request again is a cache hit, and ``If-None-Match`` gets 304;
2. **coalescing** — 8 concurrent requests for one cold ``config_hash``
   dispatch ~1 compute job (asserted via the ``serve.*`` counters);
3. **killed worker → 503** — with the fault injector SIGKILLing
   compute workers, the request degrades to ``503 + Retry-After``,
   the server stays alive, and a retry after the fault clears is 200;
4. **graceful drain** — an in-flight request finishes during drain,
   after which the port refuses connections;
5. **CLI SIGTERM** — the real ``python -m repro serve`` process drains
   and exits 0 on SIGTERM;
6. **request telemetry** — a generated ``X-Request-Id`` comes back on
   every response, a sane client-supplied id round-trips verbatim, and
   the JSONL access log carries the matching request id, route,
   status, and the response's ``config_hash``.

Probes 1-4 and 6 run the service in-process (ServerThread) so the
probes can reach its metrics registry and fault injector; probe 5
exercises the actual CLI entry point over a subprocess.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.io.jsonl import read_jsonl  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.runtime.faultinject import FaultInjector  # noqa: E402
from repro.serve.client import fetch, run_load  # noqa: E402
from repro.serve.service import (  # noqa: E402
    ResultService,
    ServeConfig,
    ServerThread,
)

HOST = "127.0.0.1"


def serve_counters(service):
    counters = service.metrics.snapshot()["counters"]
    return {k: v for k, v in counters.items() if k.startswith("serve.")}


def probe_hot_cold_and_coalescing(tmp):
    service = ResultService(
        ServeConfig(cache_dir=os.path.join(tmp, "cache"), deadline=120.0),
        metrics=MetricsRegistry(),
    )
    with ServerThread(service) as server:
        port = server.port
        cold = fetch(HOST, port, "/v1/result/E7?seed=0", timeout=120)
        assert cold.status == 200 and cold.json()["source"] == "computed", (
            cold.status,
            cold.body,
        )
        hot = fetch(HOST, port, "/v1/result/E7?seed=0")
        assert hot.status == 200 and hot.json()["source"] == "cache"
        not_modified = fetch(
            HOST, port, "/v1/result/E7?seed=0",
            headers={"If-None-Match": cold.headers["etag"]},
        )
        assert not_modified.status == 304, not_modified.status
        print("PASS serve-smoke: cold 200 -> hot cache hit -> ETag 304")

        before = serve_counters(service).get("serve.compute_jobs", 0)
        report = run_load(
            HOST, port, "/v1/result/E7?seed=1",
            clients=8, requests_per_client=1, timeout=120,
        )
        jobs = serve_counters(service).get("serve.compute_jobs", 0) - before
        assert report.statuses.get(200, 0) == 8, report.statuses
        assert 1 <= jobs <= 4, f"8 cold requests ran {jobs} jobs"
        print(
            f"PASS serve-smoke: coalescing (8 concurrent cold requests, "
            f"{jobs} compute job(s))"
        )


def probe_killed_worker(tmp):
    injector = FaultInjector(seed=7)
    injector.register("experiment:E5", mode="kill")
    service = ResultService(
        ServeConfig(
            cache_dir=os.path.join(tmp, "chaos-cache"),
            workers=2,
            deadline=120.0,
            retry_after=1.0,
        ),
        metrics=MetricsRegistry(),
        fault_injector=injector,
        runner_kwargs={"max_worker_crashes": 2, "degrade": False},
    )
    with ServerThread(service) as server:
        port = server.port
        degraded = fetch(HOST, port, "/v1/result/E5?seed=0", timeout=120)
        assert degraded.status == 503, (degraded.status, degraded.body)
        assert "retry-after" in degraded.headers, degraded.headers
        assert fetch(HOST, port, "/healthz").status == 200
        injector.clear()
        retried = fetch(HOST, port, "/v1/result/E5?seed=0", timeout=120)
        assert retried.status == 200, (retried.status, retried.body)
    print(
        "PASS serve-smoke: killed compute worker -> 503 + Retry-After, "
        "server alive, retry 200"
    )


def probe_graceful_drain(tmp):
    service = ResultService(
        ServeConfig(cache_dir=os.path.join(tmp, "drain-cache"), deadline=120.0),
        metrics=MetricsRegistry(),
    )
    server = ServerThread(service).start()
    port = server.port
    results = []
    client = threading.Thread(
        target=lambda: results.append(
            fetch(HOST, port, "/v1/result/E7?seed=2", timeout=120)
        )
    )
    client.start()
    time.sleep(0.05)  # let the request reach the server
    server.drain()
    client.join(timeout=60)
    assert results and results[0].status == 200, "in-flight request was dropped"
    try:
        fetch(HOST, port, "/healthz", timeout=2)
    except OSError:
        pass
    else:
        raise AssertionError("drained server still accepts connections")
    print("PASS serve-smoke: graceful drain (in-flight 200, then refused)")


def probe_cli_sigterm(tmp):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--cache-dir", os.path.join(tmp, "cli-cache"),
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 30
        banner = ""
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            banner += line
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, f"no listen banner from the CLI: {banner!r}"
        assert fetch(HOST, port, "/healthz", timeout=10).status == 200
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=30)
        assert code == 0, f"serve exited {code} on SIGTERM"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    print("PASS serve-smoke: CLI drains and exits 0 on SIGTERM")


def probe_request_telemetry(tmp):
    access_log = os.path.join(tmp, "access.jsonl")
    service = ResultService(
        ServeConfig(
            cache_dir=os.path.join(tmp, "telemetry-cache"),
            deadline=120.0,
            access_log=access_log,
        ),
        metrics=MetricsRegistry(),
    )
    with ServerThread(service) as server:
        port = server.port
        first = fetch(HOST, port, "/v1/result/E7?seed=3", timeout=120)
        assert first.status == 200, (first.status, first.body)
        generated = first.headers.get("x-request-id")
        assert generated and re.fullmatch(r"[0-9a-f]{16}", generated), (
            f"no generated request id: {first.headers}"
        )
        echoed = fetch(
            HOST, port, "/v1/result/E7?seed=3",
            headers={"X-Request-Id": "smoke-probe-42"},
        )
        assert echoed.headers.get("x-request-id") == "smoke-probe-42", (
            echoed.headers
        )
    rows = list(read_jsonl(access_log))
    assert len(rows) == 2, f"expected 2 access-log rows, got {len(rows)}"
    by_id = {row["request_id"]: row for row in rows}
    assert set(by_id) == {generated, "smoke-probe-42"}, sorted(by_id)
    config_hash = first.json()["config_hash"]
    for row in by_id.values():
        assert row["route"] == "/v1/result/{id}", row
        assert row["status"] == 200, row
        assert row["config_hash"] == config_hash, row
        assert row["duration_ms"] >= 0, row
    print(
        "PASS serve-smoke: request ids round-trip and the access log "
        "carries matching id + config_hash"
    )


def main():
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        probe_hot_cold_and_coalescing(tmp)
        probe_killed_worker(tmp)
        probe_graceful_drain(tmp)
        probe_cli_sigterm(tmp)
        probe_request_telemetry(tmp)
    print("serve-smoke: all probes passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
