"""Pseudonymization and quasi-identifier scrubbing.

Publishing interview quotes (paper, Section 5.2: "direct quotes if
available, paraphrasing if not due to privacy concerns") requires
stripping identity first.  Two tools:

- :class:`Pseudonymizer` -- deterministic name -> pseudonym mapping
  (stable within a study so the same person reads consistently across
  quotes, and keyed by a study secret so mappings differ across
  studies).
- :func:`scrub_quasi_identifiers` -- regex scrubbing of emails, phone
  numbers, IP addresses, and ASNs, which in networking data are
  identifiers in all but name.
"""

from __future__ import annotations

import hashlib
import re

_EMAIL_RE = re.compile(r"\b[\w.+-]+@[\w-]+(?:\.[\w-]+)+\b")
_PHONE_RE = re.compile(r"\+?\d[\d\s().-]{7,}\d")
_IPV4_RE = re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}\b")
_ASN_RE = re.compile(r"\bAS\d{1,6}\b", re.IGNORECASE)


class Pseudonymizer:
    """Deterministic, study-keyed pseudonym assignment.

    The same real name always maps to the same pseudonym within a study
    key; different study keys produce unlinkable mappings.

    Example:
        >>> p = Pseudonymizer(study_key="scn-2024")
        >>> p.pseudonym("Esther") == p.pseudonym("Esther")
        True
    """

    def __init__(self, study_key: str, prefix: str = "P") -> None:
        if not study_key:
            raise ValueError("study_key must be non-empty")
        self._study_key = study_key
        self._prefix = prefix
        self._assigned: dict[str, str] = {}

    def pseudonym(self, real_name: str) -> str:
        """Pseudonym for ``real_name`` (stable across calls)."""
        if real_name in self._assigned:
            return self._assigned[real_name]
        digest = hashlib.sha256(
            f"{self._study_key}:{real_name}".encode("utf-8")
        ).hexdigest()
        candidate = f"{self._prefix}{int(digest[:8], 16) % 10000:04d}"
        # Resolve collisions deterministically by extending the digest.
        offset = 8
        while candidate in self._assigned.values():
            candidate = f"{self._prefix}{int(digest[offset:offset + 8], 16) % 10000:04d}"
            offset += 8
            if offset + 8 > len(digest):
                candidate = f"{self._prefix}x{len(self._assigned):04d}"
                break
        self._assigned[real_name] = candidate
        return candidate

    def apply(self, text: str, real_names: list[str]) -> str:
        """Replace every listed real name in ``text`` with its pseudonym.

        Longer names are replaced first so "Esther Jang" never leaves a
        dangling "Jang" behind.
        """
        result = text
        for name in sorted(real_names, key=len, reverse=True):
            if not name:
                continue
            result = re.sub(
                re.escape(name), self.pseudonym(name), result
            )
        return result

    def mapping(self) -> dict[str, str]:
        """The real-name -> pseudonym table assigned so far (a copy)."""
        return dict(self._assigned)


def scrub_quasi_identifiers(
    text: str,
    scrub_asns: bool = True,
    placeholder_style: str = "tagged",
) -> str:
    """Remove emails, phone numbers, IPv4 addresses, and (optionally) ASNs.

    Args:
        text: The text to scrub.
        scrub_asns: Replace "AS64500"-style tokens too.  ASNs identify
            organizations precisely; leave them only when the
            organization consented to be named.
        placeholder_style: "tagged" inserts "[EMAIL]"/"[PHONE]"/"[IP]"/
            "[ASN]"; "blank" removes matches entirely.

    >>> scrub_quasi_identifiers("mail me at op@example.net")
    'mail me at [EMAIL]'
    """
    if placeholder_style not in ("tagged", "blank"):
        raise ValueError(
            f"placeholder_style must be 'tagged' or 'blank', got {placeholder_style!r}"
        )

    def tag(label: str) -> str:
        return f"[{label}]" if placeholder_style == "tagged" else ""

    result = _EMAIL_RE.sub(tag("EMAIL"), text)
    result = _IPV4_RE.sub(tag("IP"), result)
    result = _PHONE_RE.sub(tag("PHONE"), result)
    if scrub_asns:
        result = _ASN_RE.sub(tag("ASN"), result)
    return result
