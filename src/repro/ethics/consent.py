"""Consent tracking.

A consent registry answers one question reliably: *may this datum be
used for this purpose right now?*  Records carry scopes ("interview",
"publication-quote", "recording"), optional expiry, and withdrawal —
and withdrawal wins over everything recorded earlier, which is what
makes consent meaningful rather than ceremonial.
"""

from __future__ import annotations

from dataclasses import dataclass


class ConsentError(Exception):
    """Raised when an operation requires consent that is not in force."""


@dataclass
class ConsentRecord:
    """One participant's consent grant.

    Attributes:
        participant_id: Who consented.
        scopes: What they consented to ("interview", "recording",
            "publication-quote", ...).
        granted_at: Month/step index the grant was made (simulation
            time; any monotonic integer clock works).
        expires_at: Clock value after which the grant lapses (None =
            no expiry).
        withdrawn_at: Clock value of withdrawal (None = in force).
        notes: Free-form context (how consent was obtained).
    """

    participant_id: str
    scopes: frozenset[str]
    granted_at: int
    expires_at: int | None = None
    withdrawn_at: int | None = None
    notes: str = ""

    def in_force(self, scope: str, now: int) -> bool:
        """True when ``scope`` is covered and the grant is live at ``now``."""
        if scope not in self.scopes:
            return False
        if self.withdrawn_at is not None and now >= self.withdrawn_at:
            return False
        if self.expires_at is not None and now > self.expires_at:
            return False
        return now >= self.granted_at


class ConsentRegistry:
    """All consent state for a study.

    Example:
        >>> registry = ConsentRegistry()
        >>> _ = registry.grant("p1", {"interview"}, now=0)
        >>> registry.check("p1", "interview", now=1)
        True
        >>> _ = registry.withdraw("p1", now=2)
        >>> registry.check("p1", "interview", now=3)
        False
    """

    def __init__(self) -> None:
        self._records: dict[str, list[ConsentRecord]] = {}

    def grant(
        self,
        participant_id: str,
        scopes: set[str],
        now: int,
        expires_at: int | None = None,
        notes: str = "",
    ) -> ConsentRecord:
        """Record a new grant (grants accumulate; they do not replace)."""
        if not scopes:
            raise ValueError("a grant needs at least one scope")
        if expires_at is not None and expires_at < now:
            raise ValueError("expires_at cannot precede the grant")
        record = ConsentRecord(
            participant_id=participant_id,
            scopes=frozenset(scopes),
            granted_at=now,
            expires_at=expires_at,
            notes=notes,
        )
        self._records.setdefault(participant_id, []).append(record)
        return record

    def withdraw(self, participant_id: str, now: int) -> int:
        """Withdraw *all* of a participant's live grants.

        Returns the number of records withdrawn.  Unknown participants
        raise KeyError — silently "withdrawing" nothing would hide a
        bookkeeping bug.
        """
        records = self._records.get(participant_id)
        if records is None:
            raise KeyError(f"no consent on file for {participant_id!r}")
        count = 0
        for record in records:
            if record.withdrawn_at is None:
                record.withdrawn_at = now
                count += 1
        return count

    def check(self, participant_id: str, scope: str, now: int) -> bool:
        """True when any record covers ``scope`` and is in force."""
        return any(
            record.in_force(scope, now)
            for record in self._records.get(participant_id, [])
        )

    def require(self, participant_id: str, scope: str, now: int) -> None:
        """Raise :class:`ConsentError` unless consent is in force."""
        if not self.check(participant_id, scope, now):
            raise ConsentError(
                f"no consent in force for participant {participant_id!r}, "
                f"scope {scope!r} at t={now}"
            )

    def participants(self) -> list[str]:
        """All participant ids with any record, sorted."""
        return sorted(self._records)

    def usable_participants(self, scope: str, now: int) -> list[str]:
        """Participants whose consent covers ``scope`` right now, sorted."""
        return [
            pid for pid in self.participants() if self.check(pid, scope, now)
        ]

    def audit(self, now: int) -> dict[str, dict]:
        """Snapshot per participant: live scopes, withdrawn/expired counts."""
        report = {}
        for pid, records in sorted(self._records.items()):
            live_scopes: set[str] = set()
            withdrawn = 0
            expired = 0
            for record in records:
                if record.withdrawn_at is not None and now >= record.withdrawn_at:
                    withdrawn += 1
                elif record.expires_at is not None and now > record.expires_at:
                    expired += 1
                else:
                    live_scopes.update(
                        s for s in record.scopes if record.in_force(s, now)
                    )
            report[pid] = {
                "live_scopes": sorted(live_scopes),
                "withdrawn_records": withdrawn,
                "expired_records": expired,
                "total_records": len(records),
            }
        return report
