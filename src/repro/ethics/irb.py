"""Protocol checklists.

"Make sure to consult your institutional review board and social
science colleagues for best practices" (paper, Section 6.2.3).  A
:class:`ProtocolChecklist` evaluates a study plan — a plain dict of
facts about the protocol — against named requirements, and reports what
passes, what fails, and what cannot be evaluated because the plan never
addresses it (silence about consent is a finding, not a pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, slots=True)
class ChecklistItem:
    """One checkable requirement.

    Attributes:
        item_id: Stable id ("consent-documented").
        description: What the requirement demands.
        keys: Plan keys the predicate needs; if any is absent the item
            is *unaddressed* rather than failed.
        predicate: Callable receiving the sub-dict of ``keys`` and
            returning pass/fail.
        severity: "required" or "recommended".
    """

    item_id: str
    description: str
    keys: tuple[str, ...]
    predicate: Callable[[dict], bool]
    severity: str = "required"

    def __post_init__(self) -> None:
        if self.severity not in ("required", "recommended"):
            raise ValueError(f"bad severity: {self.severity!r}")


@dataclass
class ChecklistResult:
    """Outcome of evaluating a plan.

    Attributes:
        passed / failed / unaddressed: item ids by outcome.
        approved: True when no *required* item failed or went
            unaddressed.
    """

    passed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    unaddressed: list[str] = field(default_factory=list)
    _required_problems: int = 0

    @property
    def approved(self) -> bool:
        """True when every required item passed."""
        return self._required_problems == 0


class ProtocolChecklist:
    """An ordered set of checklist items evaluated against a plan dict."""

    def __init__(self, name: str, items: list[ChecklistItem] | None = None) -> None:
        self.name = name
        self._items: dict[str, ChecklistItem] = {}
        for item in items or []:
            self.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: ChecklistItem) -> None:
        """Add an item; rejects duplicate ids."""
        if item.item_id in self._items:
            raise ValueError(f"duplicate checklist item: {item.item_id!r}")
        self._items[item.item_id] = item

    def items(self) -> list[ChecklistItem]:
        """Items sorted by id."""
        return sorted(self._items.values(), key=lambda i: i.item_id)

    def evaluate(self, plan: dict) -> ChecklistResult:
        """Evaluate ``plan``; see :class:`ChecklistResult`."""
        result = ChecklistResult()
        for item in self.items():
            if any(key not in plan for key in item.keys):
                result.unaddressed.append(item.item_id)
                if item.severity == "required":
                    result._required_problems += 1
                continue
            subplan = {key: plan[key] for key in item.keys}
            if item.predicate(subplan):
                result.passed.append(item.item_id)
            else:
                result.failed.append(item.item_id)
                if item.severity == "required":
                    result._required_problems += 1
        return result


def default_checklist() -> ProtocolChecklist:
    """The checklist distilled from the paper's Sections 5 and 6.2.3.

    Expected plan keys (all plain data):

    - ``consent_process`` (str): how consent is obtained ("" = none).
    - ``consent_withdrawal_supported`` (bool)
    - ``data_anonymized`` (bool)
    - ``power_risk_band`` (str): from
      :func:`repro.ethics.power.assess_power_dynamics`.
    - ``power_mitigations_planned`` (bool)
    - ``community_in_problem_formation`` (bool)
    - ``partnerships_documented`` (bool)
    - ``positionality_statement`` (str): "" = none.
    - ``data_sovereignty_plan`` (str): required when working with
      indigenous communities.
    - ``works_with_indigenous_communities`` (bool)
    """
    items = [
        ChecklistItem(
            "consent-documented",
            "A consent process is described",
            ("consent_process",),
            lambda p: bool(p["consent_process"].strip()),
        ),
        ChecklistItem(
            "consent-withdrawal",
            "Participants can withdraw, and withdrawal is honored",
            ("consent_withdrawal_supported",),
            lambda p: bool(p["consent_withdrawal_supported"]),
        ),
        ChecklistItem(
            "anonymization",
            "Published data is pseudonymized/scrubbed",
            ("data_anonymized",),
            lambda p: bool(p["data_anonymized"]),
        ),
        ChecklistItem(
            "power-assessed-and-mitigated",
            "Power dynamics are assessed; high risk carries mitigations",
            ("power_risk_band", "power_mitigations_planned"),
            lambda p: p["power_risk_band"] == "low"
            or bool(p["power_mitigations_planned"]),
        ),
        ChecklistItem(
            "community-problem-formation",
            "The community helped form the research problem",
            ("community_in_problem_formation",),
            lambda p: bool(p["community_in_problem_formation"]),
            severity="recommended",
        ),
        ChecklistItem(
            "partnerships-documented",
            "Partnerships and their influence are documented",
            ("partnerships_documented",),
            lambda p: bool(p["partnerships_documented"]),
            severity="recommended",
        ),
        ChecklistItem(
            "positionality-statement",
            "Authors reflect on their positionality",
            ("positionality_statement",),
            lambda p: bool(p["positionality_statement"].strip()),
            severity="recommended",
        ),
        ChecklistItem(
            "indigenous-data-sovereignty",
            "Indigenous partnerships carry a data-sovereignty plan",
            ("works_with_indigenous_communities", "data_sovereignty_plan"),
            lambda p: (not p["works_with_indigenous_communities"])
            or bool(p["data_sovereignty_plan"].strip()),
        ),
    ]
    return ProtocolChecklist("human-centered-networking-default", items)
