"""Power-dynamics risk assessment.

"The power balances between network researchers and industry
practitioners will rarely be considered high-risk, but we do agitate for
broadening networking research outside of this limited context and that
will change those dynamics" (paper, Section 6.2.3).  This module scores
a researcher/participant pairing on the dimensions that ethics
literature treats as power-relevant, and recommends mitigations keyed
to the drivers of the score.
"""

from __future__ import annotations

from dataclasses import dataclass

# Dimension -> weight in the risk score.  Weights sum to 1.
_DIMENSION_WEIGHTS = {
    "resource_dependence": 0.25,   # participant depends on what research brings
    "institutional_gap": 0.15,     # university vs informal collective, etc.
    "historical_harm": 0.25,       # prior research abuse of the community
    "exit_cost": 0.15,             # how hard refusing/withdrawing is
    "representation_gap": 0.20,    # community voice in research design
}

_MITIGATIONS = {
    "resource_dependence": (
        "decouple service delivery from study participation; "
        "guarantee benefits regardless of continued participation"
    ),
    "institutional_gap": (
        "use community-preferred venues and formats for consent and "
        "feedback; avoid institution-jargon instruments"
    ),
    "historical_harm": (
        "follow community research-governance protocols (e.g. tribal "
        "IRBs); plan data sovereignty and return of results first"
    ),
    "exit_cost": (
        "create low-friction withdrawal with no service consequences; "
        "re-confirm consent at each study phase"
    ),
    "representation_gap": (
        "bring community members into problem formation and analysis "
        "(participatory design of the study itself)"
    ),
}


@dataclass(frozen=True, slots=True)
class PowerAssessment:
    """A scored power-dynamics assessment.

    Attributes:
        score: Weighted risk in [0, 1]; higher = larger imbalance.
        band: "low" (< 0.3), "moderate" (< 0.6), or "high".
        drivers: Dimensions at or above 0.6, sorted by contribution.
        mitigations: Recommended mitigations for each driver.
    """

    score: float
    band: str
    drivers: tuple[str, ...]
    mitigations: tuple[str, ...]


def assess_power_dynamics(dimensions: dict[str, float]) -> PowerAssessment:
    """Score a pairing on the five power dimensions.

    Args:
        dimensions: Each of ``resource_dependence``,
            ``institutional_gap``, ``historical_harm``, ``exit_cost``,
            ``representation_gap`` as a value in [0, 1].  All five are
            required — skipping a dimension is itself a red flag.

    Returns:
        A :class:`PowerAssessment`.

    >>> low = assess_power_dynamics({k: 0.1 for k in (
    ...     "resource_dependence", "institutional_gap", "historical_harm",
    ...     "exit_cost", "representation_gap")})
    >>> low.band
    'low'
    """
    missing = sorted(set(_DIMENSION_WEIGHTS) - set(dimensions))
    if missing:
        raise ValueError(f"missing power dimensions: {missing}")
    unknown = sorted(set(dimensions) - set(_DIMENSION_WEIGHTS))
    if unknown:
        raise ValueError(f"unknown power dimensions: {unknown}")
    for name, value in dimensions.items():
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")

    score = sum(
        _DIMENSION_WEIGHTS[name] * value for name, value in dimensions.items()
    )
    if score < 0.3:
        band = "low"
    elif score < 0.6:
        band = "moderate"
    else:
        band = "high"
    drivers = tuple(
        sorted(
            (name for name, value in dimensions.items() if value >= 0.6),
            key=lambda name: (-_DIMENSION_WEIGHTS[name] * dimensions[name], name),
        )
    )
    mitigations = tuple(_MITIGATIONS[name] for name in drivers)
    return PowerAssessment(
        score=score, band=band, drivers=drivers, mitigations=mitigations
    )
