"""Data retention: schedules, destruction, and the withdrawal loop.

Consent (Section 6.2.3) is only half of data protection; the other half
is what happens to collected data afterwards.  A retention policy says
how long each data category may be kept; an inventory tracks what was
collected from whom; and the audit surfaces the two failure modes IRBs
actually find — data kept past its retention window, and data from
withdrawn participants that nobody destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ethics.consent import ConsentRegistry


@dataclass(frozen=True, slots=True)
class RetentionRule:
    """Retention rule for one data category.

    Attributes:
        category: Data category ("recording", "transcript", "fieldnote").
        max_age: Maximum clock units a record may be kept after
            collection (None = no age limit).
        destroy_on_withdrawal: Destroy the participant's records of this
            category when they withdraw consent.
        withdrawal_grace: Clock units allowed between withdrawal and
            destruction before the audit flags the record.
    """

    category: str
    max_age: int | None = None
    destroy_on_withdrawal: bool = True
    withdrawal_grace: int = 1

    def __post_init__(self) -> None:
        if self.max_age is not None and self.max_age < 0:
            raise ValueError("max_age must be >= 0 when set")
        if self.withdrawal_grace < 0:
            raise ValueError("withdrawal_grace must be >= 0")


@dataclass
class DataRecord:
    """One collected datum.

    Attributes:
        record_id: Unique id.
        participant_id: Whose data it is.
        category: Data category (must match a rule to be governed).
        collected_at: Collection clock value.
        destroyed_at: Destruction clock value (None while held).
    """

    record_id: str
    participant_id: str
    category: str
    collected_at: int
    destroyed_at: int | None = None

    @property
    def held(self) -> bool:
        """True while the record exists."""
        return self.destroyed_at is None


class RetentionManager:
    """Inventory plus policy plus the consent registry's withdrawal feed.

    Example:
        >>> from repro.ethics.consent import ConsentRegistry
        >>> registry = ConsentRegistry()
        >>> _ = registry.grant("p1", {"interview"}, now=0)
        >>> manager = RetentionManager(
        ...     [RetentionRule("transcript", max_age=10)], registry)
        >>> _ = manager.collect("r1", "p1", "transcript", now=0)
        >>> manager.due_for_destruction(now=11)
        ['r1']
    """

    def __init__(
        self,
        rules: list[RetentionRule],
        consent: ConsentRegistry,
    ) -> None:
        self._rules: dict[str, RetentionRule] = {}
        for rule in rules:
            if rule.category in self._rules:
                raise ValueError(f"duplicate rule for {rule.category!r}")
            self._rules[rule.category] = rule
        self._consent = consent
        self._records: dict[str, DataRecord] = {}
        # participant -> withdrawal clock, fed by note_withdrawal.
        self._withdrawals: dict[str, int] = {}

    def rule_for(self, category: str) -> RetentionRule:
        """The rule governing ``category`` (KeyError when ungoverned)."""
        return self._rules[category]

    def collect(
        self, record_id: str, participant_id: str, category: str, now: int
    ) -> DataRecord:
        """Register a collected record.

        Requires a governing rule for the category — collecting data no
        policy covers is itself the audit finding, so it fails loudly.
        """
        if category not in self._rules:
            raise KeyError(
                f"no retention rule covers category {category!r}"
            )
        if record_id in self._records:
            raise ValueError(f"duplicate record id: {record_id!r}")
        record = DataRecord(record_id, participant_id, category, now)
        self._records[record_id] = record
        return record

    def note_withdrawal(self, participant_id: str, now: int) -> None:
        """Record that a participant withdrew (call alongside
        :meth:`~repro.ethics.consent.ConsentRegistry.withdraw`)."""
        self._withdrawals.setdefault(participant_id, now)

    def destroy(self, record_id: str, now: int) -> None:
        """Mark a record destroyed."""
        record = self._records[record_id]
        if not record.held:
            raise ValueError(f"record already destroyed: {record_id!r}")
        record.destroyed_at = now

    def records(self, held_only: bool = False) -> list[DataRecord]:
        """All records, sorted by id."""
        return sorted(
            (r for r in self._records.values() if not held_only or r.held),
            key=lambda r: r.record_id,
        )

    def due_for_destruction(self, now: int) -> list[str]:
        """Held record ids whose retention window has closed.

        A record is due when its age exceeds the rule's ``max_age``, or
        its participant withdrew and the rule destroys on withdrawal.
        """
        due = []
        for record in self.records(held_only=True):
            rule = self._rules[record.category]
            if rule.max_age is not None and now - record.collected_at > rule.max_age:
                due.append(record.record_id)
                continue
            withdrawal = self._withdrawals.get(record.participant_id)
            if rule.destroy_on_withdrawal and withdrawal is not None and now >= withdrawal:
                due.append(record.record_id)
        return due

    def audit(self, now: int) -> dict:
        """The findings an IRB data audit looks for.

        Returns:
            Dict with ``held_records``, ``overdue_age`` (held past
            max_age), ``overdue_withdrawal`` (held past the withdrawal
            grace of a withdrawn participant), and ``clean`` (True when
            both lists are empty).
        """
        overdue_age = []
        overdue_withdrawal = []
        for record in self.records(held_only=True):
            rule = self._rules[record.category]
            if (
                rule.max_age is not None
                and now - record.collected_at > rule.max_age
            ):
                overdue_age.append(record.record_id)
            withdrawal = self._withdrawals.get(record.participant_id)
            if (
                rule.destroy_on_withdrawal
                and withdrawal is not None
                and now - withdrawal > rule.withdrawal_grace
            ):
                overdue_withdrawal.append(record.record_id)
        return {
            "held_records": sum(1 for r in self._records.values() if r.held),
            "overdue_age": overdue_age,
            "overdue_withdrawal": overdue_withdrawal,
            "clean": not overdue_age and not overdue_withdrawal,
        }
