"""Research-ethics machinery: consent, anonymization, power, IRB.

Section 6.2.3 of the paper calls for "guardrails for maintaining
ethical research practices" when qualitative methods enter networking —
consent, power imbalances, and data protection.  This package turns
those guardrails into code:

- :mod:`repro.ethics.consent` -- a consent registry with scopes,
  expiry, and withdrawal (withdrawal is honored retroactively).
- :mod:`repro.ethics.anonymize` -- deterministic pseudonymization and
  quasi-identifier scrubbing for transcripts and field notes.
- :mod:`repro.ethics.power` -- power-dynamics risk scoring for a
  researcher/participant pairing.
- :mod:`repro.ethics.irb` -- protocol checklists that evaluate a study
  plan against the practices Sections 5 and 6 recommend.
- :mod:`repro.ethics.retention` -- data-retention schedules tied to the
  consent registry: age limits, destruction on withdrawal, and the
  audit that catches data nobody destroyed.
"""

from repro.ethics.consent import ConsentRecord, ConsentRegistry, ConsentError
from repro.ethics.anonymize import Pseudonymizer, scrub_quasi_identifiers
from repro.ethics.power import PowerAssessment, assess_power_dynamics
from repro.ethics.irb import ChecklistItem, ProtocolChecklist, default_checklist
from repro.ethics.retention import (
    RetentionRule,
    DataRecord,
    RetentionManager,
)

__all__ = [
    "ConsentRecord",
    "ConsentRegistry",
    "ConsentError",
    "Pseudonymizer",
    "scrub_quasi_identifiers",
    "PowerAssessment",
    "assess_power_dynamics",
    "ChecklistItem",
    "ProtocolChecklist",
    "default_checklist",
    "RetentionRule",
    "DataRecord",
    "RetentionManager",
]
