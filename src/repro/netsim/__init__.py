"""Network simulation substrates for the paper's case studies.

Two simulators live here:

- :mod:`repro.netsim.bgp` -- an AS-level interdomain routing and
  interconnection simulator (Gao–Rexford policies, IXPs, regulators,
  traffic locality).  Backs the Telmex mandatory-peering case study and
  the Brazil/DE-CIX gravity study (paper, Section 3).
- :mod:`repro.netsim.community` -- a community mesh-network simulator
  (volunteer maintenance, member churn, common-pool-resource congestion
  management, participatory vs top-down deployment).  Backs Section 4's
  Seattle Community Network material and the congestion-as-commons study
  it cites.

Shared geometry/topology helpers are in :mod:`repro.netsim.topology`.
"""

from repro.netsim.topology import Location, distance_km, gravity_weight

__all__ = ["Location", "distance_km", "gravity_weight"]
