"""Prefix hijacks and origin validation.

Section 6.2.2 calls BGP "not especially complex in protocol design (at
least prior to the integration of security mechanisms), yet ... a rich
source of research because of the social and economic dynamics it
encodes".  The hijack is the canonical example: nothing in the protocol
stops an AS from originating someone else's prefix, and *who believes
the lie* is decided by the same economic preferences that route honest
traffic — a customer's lie beats a peer's truth.

- :func:`simulate_prefix_hijack` -- propagate a prefix originated by
  both its legitimate owner and a hijacker; report which ASes end up
  routing to the attacker.  ASes in the ``validating`` set perform
  origin validation (RPKI-style) and reject routes whose origin is not
  the legitimate owner.
- :func:`run_hijack_study` -- sweep validation deployment and attacker
  position; pollution falls with deployment, and a well-connected
  attacker (big customer cone) poisons far more of the Internet than a
  stub — the economic-gravity point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.bgp.asys import ASGraph
from repro.netsim.bgp.policy import route_preference_key, should_export
from repro.netsim.bgp.routing import Route


@dataclass(frozen=True, slots=True)
class HijackResult:
    """Outcome of one hijack simulation.

    Attributes:
        victim: Legitimate origin ASN.
        attacker: Hijacking ASN.
        polluted: ASNs whose best route leads to the attacker, sorted.
        pollution_share: Polluted / all other ASes (victim and attacker
            themselves excluded from the denominator).
        unreachable: ASNs with no route to the prefix at all.
    """

    victim: int
    attacker: int
    polluted: tuple[int, ...]
    pollution_share: float
    unreachable: tuple[int, ...]


def simulate_prefix_hijack(
    graph: ASGraph,
    victim: int,
    attacker: int,
    validating: set[int] | frozenset[int] = frozenset(),
) -> HijackResult:
    """Propagate a doubly-originated prefix and report the damage.

    Both ``victim`` and ``attacker`` originate the same prefix; every
    AS selects among the announcements it hears with ordinary
    Gao–Rexford preference.  ASes in ``validating`` drop announcements
    whose AS-path origin is not ``victim`` (origin validation).  The
    attacker ignores its own validation setting (it is lying on
    purpose), and the victim trivially routes to itself.

    Returns:
        A :class:`HijackResult`.
    """
    if victim == attacker:
        raise ValueError("victim and attacker must differ")
    for asn in (victim, attacker):
        if asn not in graph:
            raise KeyError(f"unknown ASN: {asn}")

    best: dict[int, Route] = {
        victim: Route(victim, (), None),
        attacker: Route(attacker, (), None),
    }

    def accepts(asn: int, route: Route) -> bool:
        if asn not in validating:
            return True
        origin = route.path[-1] if route.path else None
        return origin == victim

    max_rounds = 2 * len(graph) + 10
    for _ in range(max_rounds):
        changed = False
        for asn in graph.asns():
            for neighbor, rel_of_neighbor in sorted(graph.neighbors(asn).items()):
                route = best.get(neighbor)
                if route is None:
                    continue
                if not should_export(
                    route.learned_from, rel_of_neighbor.inverse()
                ):
                    continue
                candidate = Route(
                    origin=route.origin,
                    path=(neighbor,) + route.path,
                    learned_from=rel_of_neighbor,
                )
                if asn in candidate.path[:-1] or asn == candidate.path[-1]:
                    continue  # loop prevention
                if asn in (victim, attacker):
                    continue  # origins keep their own route
                if not accepts(asn, candidate):
                    continue
                current = best.get(asn)
                if current is None or route_preference_key(
                    candidate.learned_from, candidate.path
                ) < route_preference_key(current.learned_from, current.path):
                    best[asn] = candidate
                    changed = True
        if not changed:
            break

    others = [a for a in graph.asns() if a not in (victim, attacker)]
    polluted = tuple(
        sorted(
            asn
            for asn in others
            if asn in best and best[asn].path and best[asn].path[-1] == attacker
        )
    )
    unreachable = tuple(sorted(asn for asn in others if asn not in best))
    return HijackResult(
        victim=victim,
        attacker=attacker,
        polluted=polluted,
        pollution_share=len(polluted) / len(others) if others else 0.0,
        unreachable=unreachable,
    )


def run_hijack_study(
    graph: ASGraph,
    victim: int,
    attackers: list[int],
    validation_levels: tuple[float, ...] = (0.0, 0.5, 1.0),
    seed: int = 0,
) -> list[dict]:
    """Sweep attacker position and origin-validation deployment.

    Validation deployment selects the ``round(level * n)`` ASes with the
    largest customer cones (the realistic RPKI adoption order: big
    networks first), excluding the attacker.

    Returns:
        One record per (attacker, level): ``{attacker, attacker_cone,
        validation_level, pollution_share}``.
    """
    records = []
    cones = {
        asn: len(graph.customer_cone(asn)) for asn in graph.asns()
    }
    by_cone = sorted(graph.asns(), key=lambda a: (-cones[a], a))
    for attacker in attackers:
        for level in validation_levels:
            if not 0.0 <= level <= 1.0:
                raise ValueError("validation levels must be in [0, 1]")
            n_validating = round(level * len(by_cone))
            validating = {
                asn for asn in by_cone[:n_validating] if asn != attacker
            }
            result = simulate_prefix_hijack(
                graph, victim, attacker, validating
            )
            records.append(
                {
                    "attacker": attacker,
                    "attacker_cone": cones[attacker],
                    "validation_level": level,
                    "pollution_share": result.pollution_share,
                }
            )
    return records
