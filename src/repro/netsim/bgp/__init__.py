"""AS-level interdomain routing and interconnection simulator.

A policy-level BGP model: ASes with customer/provider/peer relationships,
Gao–Rexford route selection and export, IXPs as multilateral peering
fabrics, a regulator that can mandate IXP peering, and a traffic layer
that resolves gravity-model demand onto routed paths and classifies
their locality.

It exists to reproduce the *mechanisms* two ethnographic studies
uncovered (paper, Section 3):

- Rosa [38]: Telmex used "different ASNs" to technically comply with a
  Mexican mandatory-peering rule while keeping its network unpeered —
  see :mod:`repro.netsim.bgp.regulator` and
  :func:`repro.netsim.bgp.scenarios.build_mandatory_peering_scenario`.
- Rosa [39]: Brazilian ISPs interconnect at DE-CIX Frankfurt because
  big-tech PoPs are sparse in the Global South — see
  :func:`repro.netsim.bgp.scenarios.build_gravity_scenario`.

Modules:

- :mod:`repro.netsim.bgp.asys` -- ASes and the relationship graph.
- :mod:`repro.netsim.bgp.policy` -- Gao–Rexford preference and export.
- :mod:`repro.netsim.bgp.routing` -- path-vector propagation.
- :mod:`repro.netsim.bgp.ixp` -- IXP membership and peering fabrics.
- :mod:`repro.netsim.bgp.traffic` -- demand, path resolution, locality.
- :mod:`repro.netsim.bgp.regulator` -- peering mandates and evasion.
- :mod:`repro.netsim.bgp.scenarios` -- the two case-study builders.
"""

from repro.netsim.bgp.asys import AS, ASGraph, Relationship
from repro.netsim.bgp.policy import (
    RELATIONSHIP_PREFERENCE,
    route_preference_key,
    should_export,
)
from repro.netsim.bgp.routing import Route, RoutingTable, propagate_routes
from repro.netsim.bgp.ixp import IXP, connect_ixp_members
from repro.netsim.bgp.traffic import (
    TrafficDemand,
    FlowResult,
    gravity_demands,
    resolve_flows,
    locality_report,
)
from repro.netsim.bgp.regulator import (
    PeeringMandate,
    compliance_report,
    apply_asn_split_evasion,
)
from repro.netsim.bgp.hijack import (
    HijackResult,
    simulate_prefix_hijack,
    run_hijack_study,
)
from repro.netsim.bgp.resilience import (
    FailureHandle,
    fail_as,
    fail_ixp,
    locality_under_failure,
    criticality_ranking,
)
from repro.netsim.bgp.scenarios import (
    MandatoryPeeringScenario,
    build_mandatory_peering_scenario,
    run_mandatory_peering_study,
    GravityScenario,
    build_gravity_scenario,
    run_gravity_study,
)

__all__ = [
    "AS",
    "ASGraph",
    "Relationship",
    "RELATIONSHIP_PREFERENCE",
    "route_preference_key",
    "should_export",
    "Route",
    "RoutingTable",
    "propagate_routes",
    "IXP",
    "connect_ixp_members",
    "TrafficDemand",
    "FlowResult",
    "gravity_demands",
    "resolve_flows",
    "locality_report",
    "PeeringMandate",
    "compliance_report",
    "apply_asn_split_evasion",
    "MandatoryPeeringScenario",
    "build_mandatory_peering_scenario",
    "run_mandatory_peering_study",
    "GravityScenario",
    "build_gravity_scenario",
    "run_gravity_study",
    "HijackResult",
    "simulate_prefix_hijack",
    "run_hijack_study",
    "FailureHandle",
    "fail_as",
    "fail_ixp",
    "locality_under_failure",
    "criticality_ranking",
]
