"""Traffic demand, path resolution, and locality accounting.

The ethnographies' findings are about *where traffic goes*: does
domestic traffic stay in the country, or does it trombone through a
foreign exchange?  This module turns a routed :class:`ASGraph` into
those numbers: gravity-model demands between ASes, resolution of each
demand onto its routed AS path, and a locality report that classifies
flows (local direct / local via IXP / via domestic transit / tromboned
abroad) and attributes volume to the IXPs it crosses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.netsim.bgp.asys import ASGraph
from repro.netsim.bgp.routing import RoutingTable
from repro.netsim.topology import distance_km, gravity_weight


@dataclass(frozen=True, slots=True)
class TrafficDemand:
    """Offered traffic between two ASes.

    Attributes:
        src: Source ASN.
        dst: Destination ASN.
        volume: Offered volume (arbitrary units).
    """

    src: int
    dst: int
    volume: float

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError(f"volume must be non-negative, got {self.volume}")


@dataclass(frozen=True, slots=True)
class FlowResult:
    """One demand resolved onto its routed path.

    Attributes:
        demand: The offered demand.
        path: AS path src..dst, or None when unroutable.
        ixps_crossed: IXP ids of the peering links the path traverses.
        countries: Countries of the ASes on the path, in order; for an
            unroutable demand, just ``(src_country, dst_country)`` so
            locality accounting still knows whose demand went undelivered.
    """

    demand: TrafficDemand
    path: tuple[int, ...] | None
    ixps_crossed: tuple[str, ...]
    countries: tuple[str, ...]

    @property
    def delivered(self) -> bool:
        """True when the demand found a route."""
        return self.path is not None

    def is_domestic(self) -> bool:
        """True when source and destination share a country."""
        return (
            len(self.countries) >= 2 and self.countries[0] == self.countries[-1]
        )

    def trombones(self, ixp_countries: dict[str, str] | None = None) -> bool:
        """True for a domestic flow that physically leaves the country.

        A flow trombones when its AS path transits a foreign AS, or —
        with ``ixp_countries`` (ixp_id -> country) supplied — when it
        crosses an exchange located abroad: two domestic ISPs peering at
        a foreign mega-IXP exchange domestic traffic through that
        country even though every AS on the path is domestic.
        """
        if not self.delivered or not self.is_domestic():
            return False
        home = self.countries[0]
        if any(country != home for country in self.countries):
            return True
        if ixp_countries:
            return any(
                ixp_countries.get(ixp_id, home) != home
                for ixp_id in self.ixps_crossed
            )
        return False


def gravity_demands(
    graph: ASGraph,
    sources: Iterable[int] | None = None,
    destinations: Iterable[int] | None = None,
    total_volume: float = 1000.0,
    decay: float = 0.5,
) -> list[TrafficDemand]:
    """Gravity-model traffic matrix over AS pairs.

    Each ordered (src, dst) pair gets weight ``size_src * size_dst /
    (1 + distance)**decay``; weights are normalized so all demands sum
    to ``total_volume``.

    Args:
        graph: The AS graph (uses each AS's ``size`` and ``location``).
        sources: Source ASNs (default: all).
        destinations: Destination ASNs (default: all).
        total_volume: Sum of generated volumes.
        decay: Distance-decay exponent (0 = geography-free).
    """
    source_list = sorted(sources) if sources is not None else graph.asns()
    dest_list = sorted(destinations) if destinations is not None else graph.asns()
    raw: list[tuple[int, int, float]] = []
    for src in source_list:
        a = graph.get(src)
        for dst in dest_list:
            if src == dst:
                continue
            b = graph.get(dst)
            weight = gravity_weight(
                a.size, b.size, distance_km(a.location, b.location), decay
            )
            if weight > 0:
                raw.append((src, dst, weight))
    total_weight = sum(w for _, _, w in raw)
    if total_weight == 0:
        return []
    scale = total_volume / total_weight
    return [TrafficDemand(src, dst, w * scale) for src, dst, w in raw]


def resolve_flows(
    graph: ASGraph,
    table: RoutingTable,
    demands: Sequence[TrafficDemand],
) -> list[FlowResult]:
    """Resolve each demand onto its routed path and annotate it."""
    results = []
    for demand in demands:
        path = table.full_path(demand.src, demand.dst)
        if path is None:
            endpoints = (
                graph.get(demand.src).country,
                graph.get(demand.dst).country,
            )
            results.append(FlowResult(demand, None, (), endpoints))
            continue
        ixps = []
        for hop_a, hop_b in zip(path, path[1:]):
            ixp_id = graph.link_ixp(hop_a, hop_b)
            if ixp_id is not None:
                ixps.append(ixp_id)
        countries = tuple(graph.get(asn).country for asn in path)
        results.append(FlowResult(demand, path, tuple(ixps), countries))
    return results


def locality_report(
    flows: Sequence[FlowResult],
    country: str,
    ixp_countries: dict[str, str] | None = None,
) -> dict:
    """Classify a country's domestic flows and account IXP volumes.

    Args:
        flows: Resolved flows (any mix; only ``country``'s domestic
            flows enter the locality shares, but IXP volume counts all).
        ixp_countries: ixp_id -> country; when given, a domestic flow
            peering at a foreign exchange counts as tromboned (and not
            local) even if its AS path is all-domestic.

    Returns:
        Dict with:

        - ``domestic_volume``: total offered volume between ASes of
          ``country``.
        - ``delivered_share``: fraction of domestic volume routed at all.
        - ``local_share``: fraction of *delivered* domestic volume that
          never leaves the country.
        - ``tromboned_share``: fraction of delivered domestic volume
          that transits a foreign AS.
        - ``via_ixp_share``: fraction of delivered domestic volume
          crossing at least one IXP (wherever located).
        - ``ixp_volumes``: ixp_id -> total volume (all flows) crossing it.
        - ``mean_path_length``: mean AS-hop count of delivered domestic
          flows (0.0 when none).
    """
    domestic = [
        f
        for f in flows
        if len(f.countries) >= 2
        and f.countries[0] == country
        and f.countries[-1] == country
    ]
    domestic_volume = sum(f.demand.volume for f in domestic)
    delivered = [f for f in domestic if f.delivered]
    delivered_volume = sum(f.demand.volume for f in delivered)

    local = sum(
        f.demand.volume
        for f in delivered
        if all(c == country for c in f.countries)
        and not f.trombones(ixp_countries)
    )
    tromboned = sum(
        f.demand.volume for f in delivered if f.trombones(ixp_countries)
    )
    via_ixp = sum(f.demand.volume for f in delivered if f.ixps_crossed)

    ixp_volumes: dict[str, float] = {}
    for flow in flows:
        for ixp_id in set(flow.ixps_crossed):
            ixp_volumes[ixp_id] = ixp_volumes.get(ixp_id, 0.0) + flow.demand.volume

    hops = [len(f.path) - 1 for f in delivered if f.path]
    return {
        "domestic_volume": domestic_volume,
        "delivered_share": (
            delivered_volume / domestic_volume if domestic_volume else 0.0
        ),
        "local_share": local / delivered_volume if delivered_volume else 0.0,
        "tromboned_share": (
            tromboned / delivered_volume if delivered_volume else 0.0
        ),
        "via_ixp_share": via_ixp / delivered_volume if delivered_volume else 0.0,
        "ixp_volumes": ixp_volumes,
        "mean_path_length": sum(hops) / len(hops) if hops else 0.0,
    }
