"""Peering mandates, compliance checking, and the ASN-split evasion.

The Telmex case study (paper, Section 3; Rosa [38]) found that a legal
mandate — "ASes present in the country must peer at the IXP" — was
satisfied on paper and defeated in practice: the incumbent "played with
different ASNs", registering presence through an ASN that carried none
of its network, "arguing that they were responding to the law".

This module makes that mechanism executable:

- :class:`PeeringMandate` states the rule, including how the regulator
  identifies an obligated party: by ASN (the naive reading the law used)
  or by organization (what would close the loophole).
- :func:`apply_asn_split_evasion` performs the incumbent's move: mint a
  shell ASN under the same organization, connect it as a customer of the
  main network, and present *it* at the IXP.  Gao–Rexford export then
  guarantees the shell leaks nothing: it has no customers, so it
  announces only its own (empty) network to IXP peers.
- :func:`compliance_report` evaluates the rule both ways, exposing the
  gap between legal and effective compliance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.bgp.asys import AS, ASGraph
from repro.netsim.bgp.ixp import IXP
from repro.netsim.topology import Location


@dataclass(frozen=True, slots=True)
class PeeringMandate:
    """A mandatory-peering rule.

    Attributes:
        country: Country whose operators are obligated.
        ixp_id: The exchange where presence is required.
        enforcement: "asn" — any ASN of the operator present and openly
            peering satisfies the rule (the loophole); "org" — the
            operator's ASes carrying at least ``min_covered_size_share``
            of the organization's total size must peer openly.
        min_size: Only organizations whose total AS size meets this
            threshold are obligated (small players are exempt).
        min_covered_size_share: For "org" enforcement, the fraction of
            the organization's size that must be behind openly peering
            ASes.
    """

    country: str
    ixp_id: str
    enforcement: str = "asn"
    min_size: float = 0.0
    min_covered_size_share: float = 0.9

    def __post_init__(self) -> None:
        if self.enforcement not in ("asn", "org"):
            raise ValueError(
                f"enforcement must be 'asn' or 'org', got {self.enforcement!r}"
            )


def obligated_orgs(graph: ASGraph, mandate: PeeringMandate) -> list[str]:
    """Organizations the mandate obligates, sorted.

    An organization is obligated when its ASes in the mandate's country
    total at least ``mandate.min_size``.
    """
    sizes: dict[str, float] = {}
    for autonomous_system in graph:
        if autonomous_system.country == mandate.country:
            sizes[autonomous_system.org] = (
                sizes.get(autonomous_system.org, 0.0) + autonomous_system.size
            )
    return sorted(org for org, size in sizes.items() if size >= mandate.min_size)


def _org_open_members(graph: ASGraph, ixp: IXP, org: str) -> list[AS]:
    return [
        graph.get(asn)
        for asn in sorted(ixp.members & ixp.open_policy)
        if graph.get(asn).org == org
    ]


def compliance_report(
    graph: ASGraph, ixp: IXP, mandate: PeeringMandate
) -> dict[str, dict]:
    """Evaluate every obligated organization against the mandate.

    Returns:
        org -> dict with:

        - ``compliant_asn_level``: True when any of the org's ASNs is an
          open member of the exchange (the naive rule).
        - ``compliant_org_level``: True when the open-member ASes cover
          at least ``min_covered_size_share`` of the org's total size.
        - ``covered_size_share``: that coverage fraction.
        - ``open_member_asns``: the org's openly peering member ASNs.
        - ``total_size``: the org's total AS size in the country.
    """
    if ixp.ixp_id != mandate.ixp_id:
        raise ValueError(
            f"mandate targets {mandate.ixp_id!r}, got IXP {ixp.ixp_id!r}"
        )
    report: dict[str, dict] = {}
    for org in obligated_orgs(graph, mandate):
        org_ases = [
            a for a in graph.ases_of_org(org) if a.country == mandate.country
        ]
        total_size = sum(a.size for a in org_ases)
        open_members = _org_open_members(graph, ixp, org)
        covered = sum(a.size for a in open_members if a.country == mandate.country)
        share = covered / total_size if total_size else 0.0
        report[org] = {
            "compliant_asn_level": bool(open_members),
            "compliant_org_level": share >= mandate.min_covered_size_share,
            "covered_size_share": share,
            "open_member_asns": [a.asn for a in open_members],
            "total_size": total_size,
        }
    return report


def apply_asn_split_evasion(
    graph: ASGraph,
    ixp: IXP,
    org: str,
    main_asn: int,
    shell_asn: int,
    shell_size: float = 0.01,
) -> AS:
    """Execute the Telmex move: comply via a shell ASN.

    Creates a new AS ``shell_asn`` under ``org`` in the same country as
    the main AS, attaches it as a *customer* of ``main_asn``, and joins
    it to ``ixp`` with an open policy.  The main network stays off the
    exchange.  Because the shell has no customers of its own, valley-free
    export means it offers IXP peers only its own negligible prefix —
    presence without interconnection.

    Returns:
        The created shell :class:`AS`.

    Raises:
        ValueError when ``main_asn`` does not belong to ``org`` or the
        shell ASN already exists.
    """
    main = graph.get(main_asn)
    if main.org != org:
        raise ValueError(f"AS{main_asn} belongs to {main.org!r}, not {org!r}")
    if shell_asn in graph:
        raise ValueError(f"shell ASN {shell_asn} already exists")
    shell = AS(
        asn=shell_asn,
        name=f"{main.name}-shell",
        org=org,
        kind="shell",
        location=Location(
            main.location.x,
            main.location.y,
            main.location.region,
            main.location.country,
        ),
        size=shell_size,
    )
    graph.add_as(shell)
    graph.add_customer(provider=main_asn, customer=shell_asn)
    ixp.join(shell_asn, open_policy=True)
    return shell
