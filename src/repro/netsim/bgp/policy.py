"""Gao–Rexford routing policy.

The economic logic of interdomain routing (Gao & Rexford 2001), and the
reason "BGP ... continues to be a rich source of research because of the
social and economic dynamics it encodes" (paper, Section 6.2.2):

- **Preference**: routes learned from customers beat routes learned from
  peers beat routes learned from providers (revenue > free > cost);
  ties break on AS-path length, then lowest next-hop ASN (a stand-in
  for the deterministic tie-breakers of real BGP).
- **Export**: an AS announces customer-learned routes (and its own
  prefix) to everyone, but announces peer- and provider-learned routes
  only to its customers — nobody provides free transit.
"""

from __future__ import annotations

from repro.netsim.bgp.asys import Relationship

# Lower is better.
RELATIONSHIP_PREFERENCE: dict[Relationship, int] = {
    Relationship.CUSTOMER: 0,
    Relationship.PEER: 1,
    Relationship.PROVIDER: 2,
}


def route_preference_key(
    learned_from: Relationship | None, path: tuple[int, ...]
) -> tuple[int, int, int]:
    """Sort key for route selection (lower wins).

    Args:
        learned_from: Relationship of the neighbor the route came from;
            None for the AS's own prefix (always best).
        path: AS path, next hop first.

    Returns:
        ``(relationship_rank, path_length, next_hop_asn)``.
    """
    if learned_from is None:
        return (-1, 0, -1)
    rank = RELATIONSHIP_PREFERENCE[learned_from]
    next_hop = path[0] if path else -1
    return (rank, len(path), next_hop)


def should_export(
    learned_from: Relationship | None, to_neighbor: Relationship
) -> bool:
    """Gao–Rexford export rule.

    Args:
        learned_from: How the exporting AS learned the route (None for
            its own prefix).
        to_neighbor: The exporting AS's relationship *to* the neighbor
            being considered (CUSTOMER means "they are my customer").

    Returns:
        True when the route may be announced to that neighbor.

    >>> should_export(None, Relationship.PEER)  # own prefix: to anyone
    True
    >>> should_export(Relationship.PEER, Relationship.PEER)  # no free transit
    False
    >>> should_export(Relationship.PROVIDER, Relationship.CUSTOMER)
    True
    """
    if learned_from is None or learned_from is Relationship.CUSTOMER:
        return True
    return to_neighbor is Relationship.CUSTOMER
