"""Internet exchange points.

An IXP is a peering fabric: members that connect to it can establish
settlement-free peering with other members.  The model distinguishes
*membership* (being present at the exchange) from *peering* (actually
exchanging routes) — the gap between the two is exactly where the
Telmex case study lives, and the open/selective policy split is what
lets big IXPs accumulate "gravity" in the Brazil/DE-CIX study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.netsim.bgp.asys import ASGraph
from repro.netsim.topology import Location


@dataclass
class IXP:
    """An Internet exchange point.

    Attributes:
        ixp_id: Unique id ("ix-mx-1", "de-cix-like").
        name: Display name.
        location: Where the exchange physically is.
        members: ASNs present at the exchange.
        open_policy: ASNs that peer with anyone at this IXP (route-server
            style multilateral peering).  Members not in this set peer
            selectively and only form the sessions explicitly created.
    """

    ixp_id: str
    name: str = ""
    location: Location = field(default_factory=lambda: Location(0.0, 0.0))
    members: set[int] = field(default_factory=set)
    open_policy: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.ixp_id

    def join(self, asn: int, open_policy: bool = True) -> None:
        """Add ``asn`` to the exchange.

        Args:
            asn: The joining AS.
            open_policy: Whether it peers multilaterally (default) or
                selectively.
        """
        self.members.add(asn)
        if open_policy:
            self.open_policy.add(asn)
        else:
            self.open_policy.discard(asn)

    def leave(self, asn: int) -> None:
        """Remove ``asn`` from the exchange."""
        self.members.discard(asn)
        self.open_policy.discard(asn)

    @property
    def country(self) -> str:
        """Country the exchange sits in."""
        return self.location.country


def connect_ixp_members(graph: ASGraph, ixp: IXP) -> int:
    """Create the peering sessions an IXP's policies imply.

    Every pair of members where *both* run an open policy gets a peering
    link tagged with the IXP id (if not already linked).  Selective
    members form no automatic sessions — add those with
    :meth:`~repro.netsim.bgp.asys.ASGraph.add_peering` directly.

    Returns:
        Number of new peering links created.
    """
    created = 0
    for a, b in combinations(sorted(ixp.members), 2):
        if a not in ixp.open_policy or b not in ixp.open_policy:
            continue
        if graph.relationship(a, b) is not None:
            continue
        graph.add_peering(a, b, ixp_id=ixp.ixp_id)
        created += 1
    return created
