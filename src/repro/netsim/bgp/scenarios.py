"""The two interconnection case studies as executable scenarios.

Both builders are deterministic in their seed and return scenario
objects that bundle the graph, the IXPs, and the demand set, plus
``run_*`` functions that produce the result rows benchmarks E6 and E7
report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.netsim.bgp.asys import AS, ASGraph
from repro.netsim.bgp.ixp import IXP, connect_ixp_members
from repro.netsim.bgp.regulator import (
    PeeringMandate,
    apply_asn_split_evasion,
    compliance_report,
)
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.bgp.traffic import (
    TrafficDemand,
    gravity_demands,
    locality_report,
    resolve_flows,
)
from repro.netsim.topology import Location, distance_km

# -- Scenario 1: mandatory peering and the ASN-split evasion (Telmex) -------

TIER1_ASN = 100
INCUMBENT_ASN = 1
ALT_TRANSIT_ASN = 2
SHELL_ASN = 64500
FIRST_SMALL_ASN = 10


@dataclass
class MandatoryPeeringScenario:
    """A single-country interconnection market with an incumbent.

    Attributes:
        graph: The AS graph.
        ixp: The country's exchange.
        mandate: The regulator's rule.
        country: Country code.
        incumbent_org: Organization id of the incumbent.
        demands: Offered domestic traffic matrix.
    """

    graph: ASGraph
    ixp: IXP
    mandate: PeeringMandate
    country: str
    incumbent_org: str
    demands: list[TrafficDemand] = field(default_factory=list)


def build_mandatory_peering_scenario(
    n_small_isps: int = 30,
    incumbent_customer_share: float = 0.6,
    ixp_membership_rate: float = 0.7,
    seed: int = 0,
    country: str = "MX",
) -> MandatoryPeeringScenario:
    """Build the Telmex-like market.

    Topology: a foreign tier-1 (AS100, country "US"); a dominant domestic
    incumbent (AS1, most of the eyeball mass) and a smaller alternative
    transit provider (AS2), both tier-1 customers; ``n_small_isps`` small
    ISPs, each single-homed to the incumbent (with probability
    ``incumbent_customer_share``) or to the alternative transit; one
    domestic IXP that a fraction ``ixp_membership_rate`` of the small
    ISPs joins with open policies.  Without the incumbent at the IXP,
    traffic between the two transit trees can only meet at the foreign
    tier-1 — the tromboning the ethnography documented.

    The mandate obligates organizations with total size >= 10 (only the
    incumbent qualifies) to peer openly at the IXP.
    """
    if not 0.0 <= incumbent_customer_share <= 1.0:
        raise ValueError("incumbent_customer_share must be in [0, 1]")
    if not 0.0 <= ixp_membership_rate <= 1.0:
        raise ValueError("ixp_membership_rate must be in [0, 1]")
    rng = random.Random(seed)
    graph = ASGraph()
    home = Location(0.0, 0.0, region="latin-america", country=country)
    abroad = Location(3000.0, 3000.0, region="north-america", country="US")

    graph.add_as(AS(TIER1_ASN, "ForeignTier1", org="tier1-co",
                    kind="transit", location=abroad, size=5.0))
    graph.add_as(AS(INCUMBENT_ASN, "Incumbent", org="incumbent-co",
                    kind="incumbent", location=home, size=50.0))
    graph.add_as(AS(ALT_TRANSIT_ASN, "AltTransit", org="alt-transit-co",
                    kind="transit", location=home, size=5.0))
    graph.add_customer(provider=TIER1_ASN, customer=INCUMBENT_ASN)
    graph.add_customer(provider=TIER1_ASN, customer=ALT_TRANSIT_ASN)

    ixp = IXP("ix-home", name=f"IX-{country}", location=home)
    for i in range(n_small_isps):
        asn = FIRST_SMALL_ASN + i
        jitter = Location(
            rng.uniform(-200, 200), rng.uniform(-200, 200),
            region="latin-america", country=country,
        )
        graph.add_as(AS(asn, f"SmallISP{i}", org=f"isp-{i}",
                        kind="stub", location=jitter,
                        size=rng.uniform(0.5, 3.0)))
        provider = (
            INCUMBENT_ASN
            if rng.random() < incumbent_customer_share
            else ALT_TRANSIT_ASN
        )
        graph.add_customer(provider=provider, customer=asn)
        if rng.random() < ixp_membership_rate:
            ixp.join(asn, open_policy=True)

    mandate = PeeringMandate(
        country=country, ixp_id=ixp.ixp_id, enforcement="asn", min_size=10.0
    )
    scenario = MandatoryPeeringScenario(
        graph=graph,
        ixp=ixp,
        mandate=mandate,
        country=country,
        incumbent_org="incumbent-co",
    )
    domestic_asns = [a.asn for a in graph.ases_in_country(country)]
    scenario.demands = gravity_demands(
        graph, sources=domestic_asns, destinations=domestic_asns,
        total_volume=1000.0, decay=0.0,
    )
    return scenario


def _run_variant(scenario: MandatoryPeeringScenario) -> dict:
    """Wire the IXP, route, resolve, and report one variant."""
    connect_ixp_members(scenario.graph, scenario.ixp)
    table = propagate_routes(scenario.graph)
    flows = resolve_flows(scenario.graph, table, scenario.demands)
    report = locality_report(
        flows, scenario.country,
        ixp_countries={scenario.ixp.ixp_id: scenario.ixp.country},
    )

    incumbent_asns = {
        a.asn for a in scenario.graph.ases_of_org(scenario.incumbent_org)
    }
    domestic = [
        f for f in flows
        if f.delivered and f.countries[0] == scenario.country
        and f.countries[-1] == scenario.country
    ]
    delivered_volume = sum(f.demand.volume for f in domestic)
    via_incumbent = sum(
        f.demand.volume
        for f in domestic
        if f.path is not None and any(
            asn in incumbent_asns for asn in f.path[1:-1]
        )
    )
    report["incumbent_transit_share"] = (
        via_incumbent / delivered_volume if delivered_volume else 0.0
    )
    compliance = compliance_report(scenario.graph, scenario.ixp, scenario.mandate)
    incumbent_row = compliance.get(scenario.incumbent_org, {})
    report["compliant_asn_level"] = bool(
        incumbent_row.get("compliant_asn_level", False)
    )
    report["compliant_org_level"] = bool(
        incumbent_row.get("compliant_org_level", False)
    )
    return report


def run_mandatory_peering_study(
    n_small_isps: int = 30,
    seed: int = 0,
) -> dict[str, dict]:
    """Run all four regulatory variants of experiment E6.

    Variants (each on a freshly built, identically seeded market):

    - ``no_regulation``: incumbent ignores the IXP.
    - ``honest_compliance``: incumbent's main AS peers openly.
    - ``asn_split_evasion``: a shell ASN peers instead (Telmex's move).
    - ``org_enforcement``: regulator enforces at organization level, so
      the main AS must peer openly (the shell may still exist).

    Returns:
        variant -> locality/compliance report (see
        :func:`repro.netsim.bgp.traffic.locality_report`, plus
        ``incumbent_transit_share`` and the two compliance booleans).
    """
    results: dict[str, dict] = {}

    scenario = build_mandatory_peering_scenario(n_small_isps=n_small_isps, seed=seed)
    results["no_regulation"] = _run_variant(scenario)

    scenario = build_mandatory_peering_scenario(n_small_isps=n_small_isps, seed=seed)
    scenario.ixp.join(INCUMBENT_ASN, open_policy=True)
    results["honest_compliance"] = _run_variant(scenario)

    scenario = build_mandatory_peering_scenario(n_small_isps=n_small_isps, seed=seed)
    apply_asn_split_evasion(
        scenario.graph, scenario.ixp, scenario.incumbent_org,
        main_asn=INCUMBENT_ASN, shell_asn=SHELL_ASN,
    )
    results["asn_split_evasion"] = _run_variant(scenario)

    scenario = build_mandatory_peering_scenario(n_small_isps=n_small_isps, seed=seed)
    scenario.mandate = PeeringMandate(
        country=scenario.country, ixp_id=scenario.ixp.ixp_id,
        enforcement="org", min_size=10.0,
    )
    apply_asn_split_evasion(
        scenario.graph, scenario.ixp, scenario.incumbent_org,
        main_asn=INCUMBENT_ASN, shell_asn=SHELL_ASN,
    )
    # Org-level enforcement catches the shell trick; the incumbent is
    # compelled to bring the main network to the exchange.
    scenario.ixp.join(INCUMBENT_ASN, open_policy=True)
    results["org_enforcement"] = _run_variant(scenario)

    return results


# -- Scenario 2: IXP gravity and tromboning (Brazil / DE-CIX) ----------------

EU_TIER1_ASN = 200
MEGA_IXP_ID = "mega-ix-eu"
FIRST_EYEBALL_ASN = 1000
FIRST_BR_TRANSIT_ASN = 500
FIRST_CONTENT_ASN = 2000


@dataclass
class GravityScenario:
    """A two-region interconnection world (South country vs Europe).

    Attributes:
        graph: The AS graph.
        local_ixps: The South country's local exchanges.
        mega_ixp: The European mega-exchange.
        country: The South country code.
        content_org: Organization id of the content provider.
        demands: Offered demand set (eyeball<->content + eyeball<->eyeball).
    """

    graph: ASGraph
    local_ixps: list[IXP]
    mega_ixp: IXP
    country: str
    content_org: str
    demands: list[TrafficDemand] = field(default_factory=list)


def build_gravity_scenario(
    n_eyeballs: int = 24,
    n_local_ixps: int = 3,
    n_transits: int = 3,
    content_pop_presence: float = 0.0,
    remote_mega_membership: float = 0.4,
    local_ixp_membership: float = 0.7,
    domestic_transit_peering: bool = False,
    seed: int = 0,
    country: str = "BR",
) -> GravityScenario:
    """Build the Brazil/DE-CIX-like two-region world.

    South country: ``n_eyeballs`` eyeball ISPs spread across
    ``n_transits`` domestic transit trees (transits do *not* peer with
    each other unless ``domestic_transit_peering``), and
    ``n_local_ixps`` local exchanges each joined by nearby eyeballs with
    probability ``local_ixp_membership``.

    Europe: a tier-1 (every domestic transit's provider) and a
    mega-exchange.  The content organization always has a European
    content AS peering openly at the mega-exchange; it additionally
    places a PoP (a separate content AS located in the South country) at
    each local exchange independently with probability
    ``content_pop_presence`` — the sweep variable of experiment E7.

    A fraction ``remote_mega_membership`` of eyeballs buys remote
    membership at the mega-exchange (the "Brazilian ISPs connect in
    Frankfurt" observation).

    Demand: 80% of volume eyeball->content, 20% eyeball<->eyeball.
    """
    for name, value in (
        ("content_pop_presence", content_pop_presence),
        ("remote_mega_membership", remote_mega_membership),
        ("local_ixp_membership", local_ixp_membership),
    ):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    rng = random.Random(seed)
    graph = ASGraph()
    europe = Location(9000.0, 500.0, region="europe", country="DE")
    graph.add_as(AS(EU_TIER1_ASN, "EuroTier1", org="eu-tier1-co",
                    kind="transit", location=europe, size=5.0))
    mega_ixp = IXP(MEGA_IXP_ID, name="MegaIX-EU", location=europe)

    # Domestic transit trees.
    transit_asns = []
    for t in range(n_transits):
        asn = FIRST_BR_TRANSIT_ASN + t
        location = Location(
            t * 400.0, 0.0, region="south-america", country=country
        )
        graph.add_as(AS(asn, f"Transit{t}", org=f"transit-{t}",
                        kind="transit", location=location, size=4.0))
        graph.add_customer(provider=EU_TIER1_ASN, customer=asn)
        transit_asns.append(asn)
    if domestic_transit_peering:
        for i, a in enumerate(transit_asns):
            for b in transit_asns[i + 1:]:
                graph.add_peering(a, b)

    # Local exchanges, one per cluster of the country.
    local_ixps = []
    for x in range(n_local_ixps):
        location = Location(
            x * 500.0, 100.0, region="south-america", country=country
        )
        local_ixps.append(
            IXP(f"ix-local-{x}", name=f"IX-{country}-{x}", location=location)
        )

    # Eyeball ISPs.
    eyeball_asns = []
    for i in range(n_eyeballs):
        asn = FIRST_EYEBALL_ASN + i
        cluster = i % n_local_ixps
        location = Location(
            cluster * 500.0 + rng.uniform(-150, 150),
            rng.uniform(-150, 150),
            region="south-america", country=country,
        )
        graph.add_as(AS(asn, f"Eyeball{i}", org=f"eyeball-{i}",
                        kind="stub", location=location,
                        size=rng.uniform(1.0, 4.0)))
        graph.add_customer(
            provider=transit_asns[i % n_transits], customer=asn
        )
        if rng.random() < local_ixp_membership:
            local_ixps[cluster].join(asn, open_policy=True)
        if rng.random() < remote_mega_membership:
            mega_ixp.join(asn, open_policy=True)
        eyeball_asns.append(asn)

    # Content provider: always in Europe; PoPs in the South per sweep.
    content_org = "bigtech"
    eu_content_asn = FIRST_CONTENT_ASN
    graph.add_as(AS(eu_content_asn, "ContentEU", org=content_org,
                    kind="content", location=europe, size=40.0))
    graph.add_customer(provider=EU_TIER1_ASN, customer=eu_content_asn)
    mega_ixp.join(eu_content_asn, open_policy=True)
    content_asns = [eu_content_asn]
    n_pops = round(content_pop_presence * len(local_ixps))
    for x, local_ixp in enumerate(local_ixps):
        if x < n_pops:
            pop_asn = FIRST_CONTENT_ASN + 1 + x
            graph.add_as(AS(pop_asn, f"ContentPoP{x}", org=content_org,
                            kind="content", location=local_ixp.location,
                            size=40.0))
            # PoPs still need upstream reachability for non-IXP paths.
            graph.add_customer(
                provider=transit_asns[x % n_transits], customer=pop_asn
            )
            local_ixp.join(pop_asn, open_policy=True)
            content_asns.append(pop_asn)

    scenario = GravityScenario(
        graph=graph,
        local_ixps=local_ixps,
        mega_ixp=mega_ixp,
        country=country,
        content_org=content_org,
    )

    # Demands: eyeball->content 80%, eyeball<->eyeball 20%.  Content is
    # served anycast-style: each eyeball's demand lands on the
    # organization's nearest replica (ties broken by lowest ASN), which
    # is how CDN request routing behaves.
    content_demands = []
    for eyeball in eyeball_asns:
        eyeball_location = graph.get(eyeball).location
        nearest = min(
            content_asns,
            key=lambda asn: (
                distance_km(eyeball_location, graph.get(asn).location),
                asn,
            ),
        )
        content_demands.append(
            TrafficDemand(eyeball, nearest, 800.0 / len(eyeball_asns))
        )
    eyeball_demands = gravity_demands(
        graph, sources=eyeball_asns, destinations=eyeball_asns,
        total_volume=200.0, decay=0.0,
    )
    scenario.demands = content_demands + eyeball_demands
    return scenario


def run_gravity_study(
    presence_levels: tuple[float, ...] = (0.0, 0.34, 0.67, 1.0),
    n_eyeballs: int = 24,
    seed: int = 0,
) -> list[dict]:
    """Sweep content-PoP presence and report locality/gravity (E7).

    Returns one record per presence level with:

    - ``content_pop_presence``: the sweep value.
    - ``content_served_domestically``: share of eyeball->content volume
      whose path never leaves the South country.
    - ``eyeball_tromboned_share``: share of delivered domestic
      eyeball<->eyeball volume transiting abroad.
    - ``mega_ixp_volume`` / ``local_ixp_volume``: traffic crossing the
      European mega-exchange vs all local exchanges combined.
    - ``mega_gravity_ratio``: mega / (mega + local); the "giant Internet
      node" effect of Rosa [39].
    - ``mean_path_length``: mean delivered domestic path length.
    """
    records = []
    for presence in presence_levels:
        scenario = build_gravity_scenario(
            n_eyeballs=n_eyeballs,
            content_pop_presence=presence,
            seed=seed,
        )
        for ixp in scenario.local_ixps + [scenario.mega_ixp]:
            connect_ixp_members(scenario.graph, ixp)
        table = propagate_routes(scenario.graph)
        flows = resolve_flows(scenario.graph, table, scenario.demands)
        ixp_countries = {
            ixp.ixp_id: ixp.country
            for ixp in scenario.local_ixps + [scenario.mega_ixp]
        }
        report = locality_report(flows, scenario.country, ixp_countries)

        content_asns = {
            a.asn for a in scenario.graph.ases_of_org(scenario.content_org)
        }
        content_flows = [
            f for f in flows if f.delivered and f.demand.dst in content_asns
        ]
        content_volume = sum(f.demand.volume for f in content_flows)
        domestic_content = sum(
            f.demand.volume
            for f in content_flows
            if all(c == scenario.country for c in f.countries)
        )
        mega_volume = report["ixp_volumes"].get(MEGA_IXP_ID, 0.0)
        local_volume = sum(
            v for k, v in report["ixp_volumes"].items() if k != MEGA_IXP_ID
        )
        denominator = mega_volume + local_volume
        records.append(
            {
                "content_pop_presence": presence,
                "content_served_domestically": (
                    domestic_content / content_volume if content_volume else 0.0
                ),
                "eyeball_tromboned_share": report["tromboned_share"],
                "mega_ixp_volume": mega_volume,
                "local_ixp_volume": local_volume,
                "mega_gravity_ratio": (
                    mega_volume / denominator if denominator else 0.0
                ),
                "mean_path_length": report["mean_path_length"],
            }
        )
    return records
