"""Path-vector route propagation.

A deterministic fixed-point computation of the routes every AS selects
under the Gao–Rexford policy of :mod:`repro.netsim.bgp.policy`.  One
prefix per AS (identified by the origin ASN) is enough for the locality
questions the case studies ask.

The propagation is the standard three-phase cone walk used by AS-level
simulators: customer routes flow up the provider hierarchy, then across
peering edges, then down to customers — which yields the unique stable
solution for policy-consistent (cycle-free) graphs, in O(E) per prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.bgp.asys import ASGraph, Relationship
from repro.netsim.bgp.policy import route_preference_key, should_export


@dataclass(frozen=True, slots=True)
class Route:
    """A selected route at some AS.

    Attributes:
        origin: Origin ASN (the prefix).
        path: AS path from this AS to the origin, next hop first and
            origin last; empty for the origin's own route.
        learned_from: Relationship of the neighbor that announced it;
            None for the origin itself.
    """

    origin: int
    path: tuple[int, ...]
    learned_from: Relationship | None

    @property
    def path_length(self) -> int:
        """Number of AS hops to the origin."""
        return len(self.path)


class RoutingTable:
    """Best route per (AS, origin) after propagation."""

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._best: dict[int, dict[int, Route]] = {asn: {} for asn in graph.asns()}

    def set_route(self, asn: int, route: Route) -> None:
        """Install ``route`` as ``asn``'s best route to ``route.origin``."""
        self._best[asn][route.origin] = route

    def route(self, asn: int, origin: int) -> Route | None:
        """Best route at ``asn`` toward ``origin`` (None if unreachable)."""
        return self._best[asn].get(origin)

    def full_path(self, source: int, origin: int) -> tuple[int, ...] | None:
        """Complete AS-level path ``source .. origin`` (inclusive).

        None when ``source`` has no route to ``origin``.
        """
        if source == origin:
            return (source,)
        route = self.route(source, origin)
        if route is None:
            return None
        return (source,) + route.path

    def reachable_origins(self, asn: int) -> list[int]:
        """Origins ``asn`` can reach, ascending (includes itself)."""
        return sorted(set(self._best[asn]) | {asn})


def _consider(
    table: dict[int, Route],
    asn: int,
    origin: int,
    candidate: Route,
) -> bool:
    """Install ``candidate`` if it beats the current best; True on change."""
    if asn in candidate.path:
        return False  # loop prevention
    current = table.get(origin)
    if current is None:
        table[origin] = candidate
        return True
    if route_preference_key(candidate.learned_from, candidate.path) < (
        route_preference_key(current.learned_from, current.path)
    ):
        table[origin] = candidate
        return True
    return False


def propagate_routes(graph: ASGraph, origins: list[int] | None = None) -> RoutingTable:
    """Compute every AS's best routes to ``origins`` (default: all ASes).

    Uses iterative relaxation to a fixed point.  For graphs whose
    customer-provider hierarchy is acyclic (check with
    :meth:`~repro.netsim.bgp.asys.ASGraph.validate_hierarchy`) the fixed
    point is the unique Gao–Rexford stable routing.

    Raises RuntimeError if the relaxation fails to converge (possible
    only with policy-inconsistent inputs).
    """
    origin_list = origins if origins is not None else graph.asns()
    unknown = [o for o in origin_list if o not in graph]
    if unknown:
        raise KeyError(f"unknown origin ASNs: {unknown}")

    best: dict[int, dict[int, Route]] = {asn: {} for asn in graph.asns()}
    for origin in origin_list:
        best[origin][origin] = Route(origin, (), None)

    max_rounds = 2 * len(graph) + 10
    for _ in range(max_rounds):
        changed = False
        for asn in graph.asns():
            neighbor_rels = graph.neighbors(asn)
            for neighbor, rel_of_neighbor in sorted(neighbor_rels.items()):
                # What does `neighbor` export to `asn`?  From the
                # neighbor's perspective, `asn` has the inverse relation.
                neighbors_view_of_asn = rel_of_neighbor.inverse()
                for origin, route in list(best[neighbor].items()):
                    if not should_export(route.learned_from, neighbors_view_of_asn):
                        continue
                    candidate = Route(
                        origin=origin,
                        path=(neighbor,) + route.path,
                        learned_from=rel_of_neighbor,
                    )
                    if _consider(best[asn], asn, origin, candidate):
                        changed = True
        if not changed:
            table = RoutingTable(graph)
            for asn, routes in best.items():
                for route in routes.values():
                    if route.origin != asn:
                        table.set_route(asn, route)
            return table
    raise RuntimeError(
        "route propagation did not converge; check validate_hierarchy()"
    )
