"""Failure analysis: what a country's connectivity hangs on.

Section 6.2.1's point that "there are individuals with enormous
influence on the network" has an infrastructure twin: single facilities
— an exchange, an incumbent — whose failure reshapes a whole country's
traffic.  This module measures it:

- :func:`fail_ixp` / :func:`fail_as` -- remove an exchange's peering
  fabric or an AS's links, returning an undo handle.
- :func:`locality_under_failure` -- locality report with one element
  failed, against the baseline.
- :func:`criticality_ranking` -- every candidate element ranked by how
  much domestic delivered/local traffic its failure destroys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.netsim.bgp.asys import ASGraph, Relationship
from repro.netsim.bgp.ixp import IXP
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.bgp.traffic import (
    TrafficDemand,
    locality_report,
    resolve_flows,
)


@dataclass
class FailureHandle:
    """Undo record for a simulated failure.

    Attributes:
        description: What failed.
        removed_links: ``(a, b, relationship_of_b_seen_from_a, ixp_id)``
            tuples to restore.
    """

    description: str
    removed_links: list[tuple[int, int, Relationship, str | None]]

    def restore(self, graph: ASGraph) -> None:
        """Put every removed link back."""
        for a, b, relationship, ixp_id in self.removed_links:
            if relationship is Relationship.CUSTOMER:
                graph.add_customer(provider=a, customer=b)
            elif relationship is Relationship.PROVIDER:
                graph.add_customer(provider=b, customer=a)
            else:
                graph.add_peering(a, b, ixp_id=ixp_id)
        self.removed_links.clear()


def fail_ixp(graph: ASGraph, ixp: IXP) -> FailureHandle:
    """Take an exchange down: remove every peering link tagged with it."""
    removed = []
    for asn in sorted(ixp.members):
        if asn not in graph:
            continue
        for neighbor in graph.peers(asn):
            if graph.link_ixp(asn, neighbor) == ixp.ixp_id:
                removed.append((asn, neighbor, Relationship.PEER, ixp.ixp_id))
                graph.remove_link(asn, neighbor)
    return FailureHandle(f"ixp:{ixp.ixp_id}", removed)


def fail_as(graph: ASGraph, asn: int) -> FailureHandle:
    """Take an AS down: remove all of its links (it stays in the graph)."""
    removed = []
    for neighbor, relationship in sorted(graph.neighbors(asn).items()):
        ixp_id = graph.link_ixp(asn, neighbor)
        removed.append((asn, neighbor, relationship, ixp_id))
        graph.remove_link(asn, neighbor)
    return FailureHandle(f"as:{asn}", removed)


def locality_under_failure(
    graph: ASGraph,
    demands: Sequence[TrafficDemand],
    country: str,
    handle: FailureHandle,
    ixp_countries: dict[str, str] | None = None,
) -> dict:
    """Locality report while ``handle``'s element is failed.

    The failure is already applied (``handle`` came from
    :func:`fail_ixp`/:func:`fail_as`); this routes, resolves, reports,
    and leaves the graph as it found it — call ``handle.restore`` when
    done or use :func:`criticality_ranking` which manages lifetimes.
    """
    table = propagate_routes(graph)
    flows = resolve_flows(graph, table, demands)
    report = locality_report(flows, country, ixp_countries)
    report["failed"] = handle.description
    return report


def criticality_ranking(
    graph: ASGraph,
    demands: Sequence[TrafficDemand],
    country: str,
    candidate_asns: Sequence[int] = (),
    candidate_ixps: Sequence[IXP] = (),
    ixp_countries: dict[str, str] | None = None,
) -> list[dict]:
    """Rank elements by the damage their single failure does.

    For each candidate, fail it, measure the drop in delivered share
    and local share of the country's domestic traffic, and restore.

    Returns:
        One record per candidate, sorted by descending
        ``delivered_drop`` then descending ``local_drop``:
        ``{element, delivered_drop, local_drop, delivered_share,
        local_share}``.  The baseline (nothing failed) is recomputed
        once and shared.
    """
    baseline_table = propagate_routes(graph)
    baseline_flows = resolve_flows(graph, baseline_table, demands)
    baseline = locality_report(baseline_flows, country, ixp_countries)

    records = []
    for asn in candidate_asns:
        handle = fail_as(graph, asn)
        try:
            report = locality_under_failure(
                graph, demands, country, handle, ixp_countries
            )
        finally:
            handle.restore(graph)
        records.append(_damage_record(f"as:{asn}", baseline, report))
    for ixp in candidate_ixps:
        handle = fail_ixp(graph, ixp)
        try:
            report = locality_under_failure(
                graph, demands, country, handle, ixp_countries
            )
        finally:
            handle.restore(graph)
        records.append(_damage_record(f"ixp:{ixp.ixp_id}", baseline, report))

    records.sort(key=lambda r: (-r["delivered_drop"], -r["local_drop"], r["element"]))
    return records


def _damage_record(element: str, baseline: dict, failed: dict) -> dict:
    return {
        "element": element,
        "delivered_drop": baseline["delivered_share"] - failed["delivered_share"],
        "local_drop": baseline["local_share"] - failed["local_share"],
        "delivered_share": failed["delivered_share"],
        "local_share": failed["local_share"],
    }
