"""Autonomous systems and the relationship graph.

The unit of the interconnection model is the AS.  Crucially for the
Telmex case study, an AS records the *organization* that operates it:
one organization may run several ASNs, and whether a regulator sees
through that distinction is exactly what the evasion experiment (E6)
varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.netsim.topology import Location


class Relationship(str, Enum):
    """Business relationship of a link, from the perspective of one side.

    ``CUSTOMER`` means "the neighbor is my customer" (I provide transit),
    ``PROVIDER`` means "the neighbor is my provider", ``PEER`` is
    settlement-free peering.
    """

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"

    def inverse(self) -> "Relationship":
        """The same link seen from the other side."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


@dataclass
class AS:
    """One autonomous system.

    Attributes:
        asn: AS number (unique in the graph).
        name: Display name.
        org: Operating organization id; several ASes may share one.
        kind: Role label ("stub", "transit", "content", "incumbent").
        location: Coarse geographic placement.
        size: Mass for gravity traffic (subscriber count proxy).
    """

    asn: int
    name: str = ""
    org: str = ""
    kind: str = "stub"
    location: Location = field(default_factory=lambda: Location(0.0, 0.0))
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise ValueError(f"ASN must be non-negative, got {self.asn}")
        if not self.org:
            self.org = f"org-{self.asn}"
        if not self.name:
            self.name = f"AS{self.asn}"

    @property
    def country(self) -> str:
        """Country of the AS's location."""
        return self.location.country


class ASGraph:
    """The interconnection graph: ASes plus typed relationships.

    Example:
        >>> g = ASGraph()
        >>> g.add_as(AS(1, kind="transit"))
        >>> g.add_as(AS(2))
        >>> g.add_customer(provider=1, customer=2)
        >>> g.relationship(2, 1)
        <Relationship.PROVIDER: 'provider'>
    """

    def __init__(self) -> None:
        self._ases: dict[int, AS] = {}
        # _links[a][b] is the relationship of b as seen from a.
        self._links: dict[int, dict[int, Relationship]] = {}
        # (min_asn, max_asn) -> ixp_id for links created at an IXP.
        self._link_ixp: dict[tuple[int, int], str] = {}

    def __len__(self) -> int:
        return len(self._ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __iter__(self) -> Iterator[AS]:
        return iter(sorted(self._ases.values(), key=lambda a: a.asn))

    # -- construction --------------------------------------------------------

    def add_as(self, autonomous_system: AS) -> None:
        """Add an AS; rejects duplicate ASNs."""
        if autonomous_system.asn in self._ases:
            raise ValueError(f"duplicate ASN: {autonomous_system.asn}")
        self._ases[autonomous_system.asn] = autonomous_system
        self._links[autonomous_system.asn] = {}

    def add_customer(self, provider: int, customer: int) -> None:
        """Create a provider->customer transit relationship."""
        self._add_link(provider, customer, Relationship.CUSTOMER)

    def add_peering(self, a: int, b: int, ixp_id: str | None = None) -> None:
        """Create settlement-free peering, optionally tagged with an IXP."""
        self._add_link(a, b, Relationship.PEER)
        if ixp_id is not None:
            self._link_ixp[(min(a, b), max(a, b))] = ixp_id

    def _add_link(self, a: int, b: int, rel_of_b_seen_from_a: Relationship) -> None:
        if a == b:
            raise ValueError(f"self-link on ASN {a}")
        for asn in (a, b):
            if asn not in self._ases:
                raise KeyError(f"unknown ASN: {asn}")
        if b in self._links[a]:
            raise ValueError(f"link {a}-{b} already exists")
        self._links[a][b] = rel_of_b_seen_from_a
        self._links[b][a] = rel_of_b_seen_from_a.inverse()

    def remove_link(self, a: int, b: int) -> None:
        """Remove the a-b link (KeyError when absent)."""
        del self._links[a][b]
        del self._links[b][a]
        self._link_ixp.pop((min(a, b), max(a, b)), None)

    # -- queries ---------------------------------------------------------------

    def get(self, asn: int) -> AS:
        """AS by number (KeyError when absent)."""
        return self._ases[asn]

    def asns(self) -> list[int]:
        """All ASNs, ascending."""
        return sorted(self._ases)

    def relationship(self, a: int, b: int) -> Relationship | None:
        """Relationship of ``b`` as seen from ``a`` (None when unlinked)."""
        return self._links[a].get(b)

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """Neighbor ASN -> relationship as seen from ``asn``."""
        return dict(self._links[asn])

    def customers(self, asn: int) -> list[int]:
        """Direct customers of ``asn``, ascending."""
        return sorted(
            n for n, r in self._links[asn].items() if r is Relationship.CUSTOMER
        )

    def providers(self, asn: int) -> list[int]:
        """Direct providers of ``asn``, ascending."""
        return sorted(
            n for n, r in self._links[asn].items() if r is Relationship.PROVIDER
        )

    def peers(self, asn: int) -> list[int]:
        """Settlement-free peers of ``asn``, ascending."""
        return sorted(
            n for n, r in self._links[asn].items() if r is Relationship.PEER
        )

    def link_ixp(self, a: int, b: int) -> str | None:
        """IXP id tagged on the a-b peering link, if any."""
        return self._link_ixp.get((min(a, b), max(a, b)))

    def customer_cone(self, asn: int) -> set[int]:
        """All ASNs reachable downward through customer links, incl. self.

        The customer cone is the standard measure of an AS's market
        weight — the incumbent in the Telmex scenario is exactly the AS
        with a dominant cone.
        """
        cone = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self.customers(current):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def ases_in_country(self, country: str) -> list[AS]:
        """ASes located in ``country``, by ASN."""
        return [a for a in self if a.country == country]

    def ases_of_org(self, org: str) -> list[AS]:
        """ASes operated by organization ``org``, by ASN."""
        return [a for a in self if a.org == org]

    def validate_hierarchy(self) -> list[str]:
        """Detect customer-provider cycles (which break Gao–Rexford).

        Returns a list of human-readable problem strings; empty when the
        provider graph is a DAG.
        """
        color: dict[int, int] = {}
        problems: list[str] = []

        def visit(asn: int, stack: list[int]) -> None:
            color[asn] = 1
            for customer in self.customers(asn):
                if color.get(customer, 0) == 1:
                    cycle = stack[stack.index(customer):] if customer in stack else []
                    problems.append(
                        f"customer-provider cycle through AS{customer}"
                        + (f": {cycle + [customer]}" if cycle else "")
                    )
                elif color.get(customer, 0) == 0:
                    visit(customer, stack + [customer])
            color[asn] = 2

        for asn in self.asns():
            if color.get(asn, 0) == 0:
                visit(asn, [asn])
        return problems
