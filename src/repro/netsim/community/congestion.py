"""Backhaul capacity allocation: congestion management as a commons.

Community networks share a thin backhaul among households.  Johnson et
al. [28] (cited in the paper's Section 4) frame that capacity as a
common-pool resource and show community-based management working in
practice.  This module implements four allocators over the same fluid
model — per-round demands against a fixed capacity — so experiment E9
can compare them:

- :func:`allocate_fifo` -- first-come-first-served: early arrivals take
  their full demand until capacity runs out (no management at all).
- :func:`allocate_static_cap` -- equal per-member caps with no
  redistribution of unused headroom (naive fairness).
- :func:`allocate_maxmin` -- max-min fair water-filling (the classic
  network-engineering answer).
- :class:`CprAllocator` -- max-min sharing plus Ostrom-style graduated
  sanctions: members who persistently demand far beyond the fair share
  lose allocation weight, and sanctions decay once behaviour normalizes
  (community rules, monitored and enforced by the community).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class AllocationResult:
    """Outcome of one allocation round.

    Attributes:
        allocations: Per-member allocated rate, aligned with the input
            demand order.
        demands: The input demands.
        capacity: The shared capacity.
    """

    allocations: tuple[float, ...]
    demands: tuple[float, ...]
    capacity: float

    @property
    def utilization(self) -> float:
        """Fraction of capacity allocated."""
        return sum(self.allocations) / self.capacity if self.capacity else 0.0

    @property
    def satisfaction(self) -> tuple[float, ...]:
        """Per-member ``min(allocation / demand, 1)``; 1.0 for zero demand."""
        return tuple(
            min(a / d, 1.0) if d > 0 else 1.0
            for a, d in zip(self.allocations, self.demands)
        )

    @property
    def mean_satisfaction(self) -> float:
        """Average member satisfaction."""
        sats = self.satisfaction
        return sum(sats) / len(sats) if sats else 1.0

    @property
    def starved_count(self) -> int:
        """Members receiving under 10% of their (positive) demand."""
        return sum(
            1
            for a, d in zip(self.allocations, self.demands)
            if d > 0 and a < 0.1 * d
        )


def _validate(demands: Sequence[float], capacity: float) -> None:
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if any(d < 0 for d in demands):
        raise ValueError("demands must be non-negative")


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when all values are equal; approaches ``1/n`` as one member
    takes everything.  An all-zero vector is defined as perfectly fair.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("need at least one value")
    # The index is scale-invariant, so normalize by the peak first:
    # squaring tiny values (e.g. 1e-162) directly underflows to
    # denormals and breaks the [1/n, 1] bounds.
    peak = float(np.max(array))
    if peak == 0:
        return 1.0
    scaled = array / peak
    denominator = array.size * float(np.sum(scaled**2))
    if denominator == 0:
        return 1.0
    return float(np.sum(scaled)) ** 2 / denominator


def allocate_fifo(
    demands: Sequence[float],
    capacity: float,
    arrival_order: Sequence[int] | None = None,
) -> AllocationResult:
    """First-come-first-served allocation.

    Members take their full demand in ``arrival_order`` (default: input
    order) until capacity is exhausted; the member at the boundary gets
    the remainder, later members get nothing.
    """
    _validate(demands, capacity)
    order = list(arrival_order) if arrival_order is not None else list(
        range(len(demands))
    )
    if sorted(order) != list(range(len(demands))):
        raise ValueError("arrival_order must be a permutation of member indices")
    remaining = capacity
    allocations = [0.0] * len(demands)
    for index in order:
        grant = min(demands[index], remaining)
        allocations[index] = grant
        remaining -= grant
        if remaining <= 0:
            break
    return AllocationResult(tuple(allocations), tuple(demands), capacity)


def allocate_static_cap(
    demands: Sequence[float], capacity: float
) -> AllocationResult:
    """Equal static caps: each member gets ``min(demand, capacity / n)``.

    Unused headroom under light demand is wasted — the cost this policy
    pays for simplicity.
    """
    _validate(demands, capacity)
    n = len(demands)
    if n == 0:
        return AllocationResult((), (), capacity)
    cap = capacity / n
    allocations = tuple(min(d, cap) for d in demands)
    return AllocationResult(allocations, tuple(demands), capacity)


def allocate_maxmin(
    demands: Sequence[float],
    capacity: float,
    weights: Sequence[float] | None = None,
) -> AllocationResult:
    """(Weighted) max-min fair allocation by progressive water-filling.

    Repeatedly gives every unsatisfied member an equal (weighted) share
    of the remaining capacity; members whose demand is met drop out and
    their surplus is redistributed.
    """
    _validate(demands, capacity)
    n = len(demands)
    if n == 0:
        return AllocationResult((), (), capacity)
    weight_list = list(weights) if weights is not None else [1.0] * n
    if len(weight_list) != n:
        raise ValueError("weights length must match demands")
    if any(w < 0 for w in weight_list):
        raise ValueError("weights must be non-negative")

    allocations = [0.0] * n
    active = [
        i for i in range(n) if demands[i] > 0 and weight_list[i] > 0
    ]
    remaining = capacity
    while active and remaining > 1e-12:
        total_weight = sum(weight_list[i] for i in active)
        fill = remaining / total_weight
        satisfied = []
        for i in active:
            headroom = demands[i] - allocations[i]
            grant = min(headroom, fill * weight_list[i])
            allocations[i] += grant
            remaining -= grant
            if allocations[i] >= demands[i] - 1e-12:
                satisfied.append(i)
        if not satisfied:
            break  # everyone limited by capacity: done
        active = [i for i in active if i not in satisfied]
    return AllocationResult(tuple(allocations), tuple(demands), capacity)


@dataclass
class CprAllocator:
    """Common-pool-resource allocation with graduated sanctions.

    Members share via weighted max-min.  A member whose demand exceeds
    ``overuse_factor`` times the equal share accumulates a sanction
    level; each level multiplies their weight by ``sanction_factor``.
    Sanctions decay by one level after ``forgiveness_rounds`` consecutive
    rounds of normal behaviour — Ostrom's graduated sanctions, where the
    response to overuse is proportional and reversible, keeping the
    commons governable without expelling anyone.

    Attributes:
        overuse_factor: Demand / equal-share ratio that counts as overuse.
        sanction_factor: Per-level weight multiplier (< 1).
        max_level: Sanction level cap.
        forgiveness_rounds: Normal rounds needed to shed one level.
    """

    overuse_factor: float = 2.0
    sanction_factor: float = 0.5
    max_level: int = 3
    forgiveness_rounds: int = 2

    _levels: dict[int, int] = field(default_factory=dict, init=False)
    _normal_streak: dict[int, int] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.sanction_factor < 1.0:
            raise ValueError("sanction_factor must be in (0, 1)")
        if self.overuse_factor <= 1.0:
            raise ValueError("overuse_factor must exceed 1")

    def sanction_level(self, member: int) -> int:
        """Current sanction level of ``member`` (0 = unsanctioned)."""
        return self._levels.get(member, 0)

    def allocate(
        self, demands: Sequence[float], capacity: float
    ) -> AllocationResult:
        """Run one round: update sanctions from demands, then share."""
        _validate(demands, capacity)
        n = len(demands)
        if n == 0:
            return AllocationResult((), (), capacity)
        equal_share = capacity / n

        for member, demand in enumerate(demands):
            if demand > self.overuse_factor * equal_share:
                self._levels[member] = min(
                    self.max_level, self._levels.get(member, 0) + 1
                )
                self._normal_streak[member] = 0
            else:
                streak = self._normal_streak.get(member, 0) + 1
                if (
                    streak >= self.forgiveness_rounds
                    and self._levels.get(member, 0) > 0
                ):
                    self._levels[member] -= 1
                    streak = 0
                self._normal_streak[member] = streak

        weights = [
            self.sanction_factor ** self._levels.get(i, 0) for i in range(n)
        ]
        return allocate_maxmin(demands, capacity, weights=weights)


def run_congestion_study(
    n_members: int = 24,
    n_rounds: int = 200,
    capacity: float = 50.0,
    heavy_user_share: float = 0.2,
    seed: int = 0,
    sanction_factor: float = 0.5,
) -> dict[str, dict]:
    """Experiment E9: compare allocators over a bursty demand process.

    Most members draw light lognormal demand; ``heavy_user_share`` of
    them are persistent heavy users demanding several times the equal
    share (the overload regime where management matters).  Heavy users
    respond to CPR sanctions by moderating demand in later rounds with
    some probability — communities change behaviour, not just weights.

    Returns:
        policy -> dict with ``mean_jain`` (fairness of satisfaction
        ratios), ``mean_satisfaction``, ``mean_utilization``,
        ``starved_rounds_share`` (rounds with at least one starved
        member), and ``heavy_user_satisfaction``.
    """
    if not 0.0 <= heavy_user_share <= 1.0:
        raise ValueError("heavy_user_share must be in [0, 1]")
    rng = random.Random(seed)
    n_heavy = round(n_members * heavy_user_share)
    heavy = set(rng.sample(range(n_members), k=n_heavy))
    equal_share = capacity / n_members

    def demands_for_round(moderated: set[int]) -> list[float]:
        values = []
        for member in range(n_members):
            if member in heavy and member not in moderated:
                values.append(equal_share * rng.uniform(3.0, 6.0))
            elif member in heavy:
                values.append(equal_share * rng.uniform(1.0, 2.0))
            else:
                values.append(equal_share * rng.lognormvariate(-0.3, 0.6))
        return values

    policies = ("fifo", "static_cap", "maxmin", "cpr")
    stats = {
        p: {"jain": [], "sat": [], "util": [], "starved": 0, "heavy_sat": []}
        for p in policies
    }
    cpr = CprAllocator(sanction_factor=sanction_factor)
    moderated: set[int] = set()

    for _ in range(n_rounds):
        demands = demands_for_round(moderated)
        arrival = list(range(n_members))
        rng.shuffle(arrival)
        results = {
            "fifo": allocate_fifo(demands, capacity, arrival_order=arrival),
            "static_cap": allocate_static_cap(demands, capacity),
            "maxmin": allocate_maxmin(demands, capacity),
            "cpr": cpr.allocate(demands, capacity),
        }
        # Sanctioned heavy users moderate next round with probability 0.3;
        # moderated users relapse with probability 0.05.
        for member in heavy:
            if cpr.sanction_level(member) > 0 and rng.random() < 0.3:
                moderated.add(member)
            elif member in moderated and rng.random() < 0.05:
                moderated.discard(member)

        for policy, result in results.items():
            record = stats[policy]
            record["jain"].append(jain_fairness(result.satisfaction))
            record["sat"].append(result.mean_satisfaction)
            record["util"].append(result.utilization)
            if result.starved_count > 0:
                record["starved"] += 1
            heavy_sats = [
                s for i, s in enumerate(result.satisfaction) if i in heavy
            ]
            if heavy_sats:
                record["heavy_sat"].append(sum(heavy_sats) / len(heavy_sats))

    def mean(xs: list[float]) -> float:
        return sum(xs) / len(xs) if xs else 0.0

    return {
        policy: {
            "mean_jain": mean(record["jain"]),
            "mean_satisfaction": mean(record["sat"]),
            "mean_utilization": mean(record["util"]),
            "starved_rounds_share": record["starved"] / n_rounds,
            "heavy_user_satisfaction": mean(record["heavy_sat"]),
        }
        for policy, record in stats.items()
    }
