"""Failures, volunteers, and repair.

Hardware fails; who notices and who climbs the roof determines uptime.
Garrison et al. ("The Network Is an Excuse", cited in the paper's
Section 4 [16]) document community-network maintenance as social labour;
this module gives that labour a cost model:

- failures arrive per node per month (weather multiplies the rate),
- repair time depends on detection latency, travel/coordination
  overhead, volunteer skill, and spare-parts logistics,
- participatory operations detect faster (members report their own
  infrastructure), field more local volunteers, and pre-position spares;
  top-down operations dispatch from a central queue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netsim.community.members import MemberPool


@dataclass
class Failure:
    """One node failure.

    Attributes:
        node_id: The failed node.
        month: Month the failure occurred.
        repaired: Whether it has been fixed.
        repair_days: Days the repair took (set when repaired).
    """

    node_id: str
    month: int
    repaired: bool = False
    repair_days: float = 0.0


@dataclass
class VolunteerPool:
    """Maintenance labour available to the operation.

    Attributes:
        n_volunteers: People willing to do repairs this month.
        mean_skill: Average skill in [0, 1].
        local: Whether volunteers live in the served community
            (participatory) or dispatch from outside (top-down).
    """

    n_volunteers: int
    mean_skill: float
    local: bool

    @classmethod
    def from_members(cls, members: MemberPool, local: bool = True) -> "VolunteerPool":
        """Build the pool from a member roster's volunteers."""
        volunteers = members.volunteers()
        if not volunteers:
            return cls(n_volunteers=0, mean_skill=0.0, local=local)
        mean_skill = sum(v.skill for v in volunteers) / len(volunteers)
        return cls(n_volunteers=len(volunteers), mean_skill=mean_skill, local=local)


def repair_time_days(
    pool: VolunteerPool,
    pending_repairs: int,
    spare_parts_delay_days: float,
    rng: random.Random,
    detection_days_local: float = 0.5,
    detection_days_remote: float = 4.0,
) -> float:
    """Sample the days one repair takes under current conditions.

    Components:

    - detection: locals notice within a day; a remote NOC hears when a
      ticket finally lands.
    - queueing: pending repairs divided by the volunteer count (plus 1
      so an empty pool means weeks, not infinity).
    - work: base 1 day scaled down by skill.
    - parts: the logistics delay applies with probability 0.3 (most
      repairs are reseat/reboot/re-aim; some need hardware).

    Returns total days (>= 0.25).
    """
    if pending_repairs < 0:
        raise ValueError("pending_repairs must be >= 0")
    if spare_parts_delay_days < 0:
        raise ValueError("spare_parts_delay_days must be >= 0")
    detection = (
        detection_days_local if pool.local else detection_days_remote
    ) * rng.uniform(0.5, 1.5)
    effective_crew = max(pool.n_volunteers, 0)
    queueing = pending_repairs / (effective_crew + 1.0) * 2.0
    skill = max(0.05, pool.mean_skill if effective_crew else 0.05)
    work = rng.uniform(0.5, 1.5) / skill
    parts = spare_parts_delay_days if rng.random() < 0.3 else 0.0
    return max(0.25, detection + queueing + work + parts)


def sample_failures(
    node_ids: list[str],
    month: int,
    rng: random.Random,
    base_rate: float = 0.08,
    weather_multiplier: float = 1.0,
) -> list[Failure]:
    """Draw this month's failures.

    Each node fails independently with probability ``base_rate *
    weather_multiplier`` (clamped to 1).  Returns failures sorted by
    node id for determinism.
    """
    if base_rate < 0 or weather_multiplier < 0:
        raise ValueError("rates must be non-negative")
    probability = min(1.0, base_rate * weather_multiplier)
    failures = [
        Failure(node_id=node_id, month=month)
        for node_id in sorted(node_ids)
        if rng.random() < probability
    ]
    return failures
