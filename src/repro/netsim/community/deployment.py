"""The deployment study: participatory vs top-down operation (E8).

Simulates a community network month by month — siting, failures,
repairs, congestion, churn, growth — under two operating modes:

- **PAR-engaged** (the Seattle Community Network mode of the paper's
  Section 4): nodes sited where the community actually lives, repairs
  done by local member-volunteers who notice outages immediately, and
  quarterly feedback iterations that re-site hardware to cover the
  people it misses, with community-managed (CPR) congestion control.
- **Top-down**: the same hardware budget sited on a uniform grid by an
  external team, repairs dispatched from outside on ticket latency, no
  iteration, FIFO congestion.

The three PAR ingredients are independent switches so the E8 ablation
can ask which one carries the effect.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.netsim.community.congestion import CprAllocator, allocate_fifo
from repro.netsim.community.maintenance import (
    VolunteerPool,
    repair_time_days,
    sample_failures,
)
from repro.netsim.community.members import Member, MemberPool
from repro.netsim.community.mesh import MeshNetwork, MeshNode
from repro.netsim.topology import Location, distance_km

DAYS_PER_MONTH = 30.0


@dataclass(frozen=True, slots=True)
class DeploymentConfig:
    """Parameters of one deployment simulation.

    Attributes:
        community_siting: Site nodes on the community's actual clusters
            (PAR) instead of a uniform grid.
        local_maintenance: Repairs by local member-volunteers instead of
            an external two-person crew.
        feedback_iteration: Quarterly re-siting of the worst relay to
            cover unserved members, plus CPR (vs FIFO) congestion
            management.
        n_initial_members: Households at launch.
        n_relays: Relay budget (plus one gateway, always); deliberately
            scarce relative to the community's footprint, so siting
            choices matter.
        months: Simulated months.
        radio_range_km: Node radio range.
        backhaul_mbps: Shared backhaul capacity.
        failure_rate: Monthly per-node failure probability (weather
            modulates it seasonally).
        initial_volunteer_rate: Probability a founding member volunteers
            (doubled under community siting — engagement starts at the
            design meetings).
        seed: RNG seed.
    """

    community_siting: bool
    local_maintenance: bool
    feedback_iteration: bool
    n_initial_members: int = 60
    n_relays: int = 8
    months: int = 24
    radio_range_km: float = 1.2
    backhaul_mbps: float = 60.0
    failure_rate: float = 0.08
    initial_volunteer_rate: float = 0.1
    seed: int = 0

    @classmethod
    def par(cls, **overrides) -> "DeploymentConfig":
        """The fully participatory preset."""
        return cls(
            community_siting=True,
            local_maintenance=True,
            feedback_iteration=True,
            **overrides,
        )

    @classmethod
    def top_down(cls, **overrides) -> "DeploymentConfig":
        """The fully top-down preset."""
        return cls(
            community_siting=False,
            local_maintenance=False,
            feedback_iteration=False,
            **overrides,
        )


@dataclass
class DeploymentOutcome:
    """Aggregated results of one simulation run.

    Attributes:
        mean_uptime: Mean monthly node uptime across the run.
        mean_coverage: Mean share of active members within range of a
            serving node.
        mean_service_quality: Mean member-experienced quality (coverage x
            uptime x congestion satisfaction).
        median_repair_days: Median repair time over all failures.
        retention: Share of ever-members still active at the end.
        final_members: Active members at the end.
        final_volunteers: Active volunteers at the end.
        n_failures: Total failures over the run.
        monthly_quality: Per-month mean service quality (the time series
            E8 plots).
    """

    mean_uptime: float
    mean_coverage: float
    mean_service_quality: float
    median_repair_days: float
    retention: float
    final_members: int
    final_volunteers: int
    n_failures: int
    monthly_quality: list[float] = field(default_factory=list)


def _clustered_locations(
    n: int, rng: random.Random, n_clusters: int = 4, spread_km: float = 0.7
) -> list[Location]:
    """Member households in a few hamlet clusters over a ~10x10 km area."""
    centers = [
        Location(rng.uniform(0, 10), rng.uniform(0, 10))
        for _ in range(n_clusters)
    ]
    locations = []
    for i in range(n):
        center = centers[i % n_clusters]
        locations.append(
            Location(
                center.x + rng.gauss(0, spread_km),
                center.y + rng.gauss(0, spread_km),
            )
        )
    return locations


def _centroid(locations: list[Location]) -> Location:
    return Location(
        sum(p.x for p in locations) / len(locations),
        sum(p.y for p in locations) / len(locations),
    )


def _site_nodes(
    config: DeploymentConfig,
    member_locations: list[Location],
    rng: random.Random,
) -> MeshNetwork:
    """Place one gateway plus ``n_relays`` relays.

    Community siting: gateway at the overall demand centroid, relays by
    a greedy k-median-style sweep — each relay goes to the centroid of
    the members farthest from existing coverage.  Top-down siting: the
    same budget on a uniform grid over the bounding box, blind to where
    households cluster.
    """
    network = MeshNetwork(radio_range_km=config.radio_range_km)
    reach = config.radio_range_km

    def neighborhood(anchor: Location, pool: list[Location]) -> list[Location]:
        return [loc for loc in pool if distance_km(loc, anchor) <= reach]

    if config.community_siting:
        # The community sites the gateway where the most households are.
        gateway_anchor = max(
            member_locations,
            key=lambda loc: len(neighborhood(loc, member_locations)),
        )
        gateway_location = _centroid(neighborhood(gateway_anchor, member_locations))
        network.add_node(MeshNode("gw0", gateway_location, kind="gateway"))
        placed = [gateway_location]
        budget = config.n_relays
        relay_index = 0
        while budget > 0:
            uncovered = [
                loc
                for loc in member_locations
                if all(distance_km(loc, p) > reach for p in placed)
            ]
            if not uncovered:
                break
            # Pick the dark hamlet with the best members-per-relay payoff:
            # households reachable there divided by the chain hops needed
            # to get there from existing infrastructure.
            def payoff(anchor: Location) -> float:
                gain = len(neighborhood(anchor, uncovered))
                hops = max(
                    1,
                    -(-min(distance_km(anchor, p) for p in placed)
                      // (reach * 0.95)),
                )
                return gain / hops

            anchor = max(uncovered, key=payoff)
            target = _centroid(neighborhood(anchor, uncovered))
            # Chain relays from the nearest placed node toward the target,
            # one radio hop at a time, until it is reached or budget ends.
            while budget > 0:
                nearest = min(placed, key=lambda p: distance_km(p, target))
                gap = distance_km(nearest, target)
                if gap <= reach * 0.95:
                    spot = target
                else:
                    ratio = reach * 0.95 / gap
                    spot = Location(
                        nearest.x + (target.x - nearest.x) * ratio,
                        nearest.y + (target.y - nearest.y) * ratio,
                    )
                network.add_node(MeshNode(f"r{relay_index}", spot, kind="relay"))
                placed.append(spot)
                relay_index += 1
                budget -= 1
                if spot is target:
                    break
        # Spend any leftover budget densifying the gateway hamlet.
        while budget > 0:
            spot = Location(
                gateway_location.x + (0.5 + 0.1 * relay_index),
                gateway_location.y,
            )
            network.add_node(MeshNode(f"r{relay_index}", spot, kind="relay"))
            relay_index += 1
            budget -= 1
    else:
        xs = [loc.x for loc in member_locations]
        ys = [loc.y for loc in member_locations]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        network.add_node(
            MeshNode(
                "gw0",
                Location((min_x + max_x) / 2, (min_y + max_y) / 2),
                kind="gateway",
            )
        )
        # Grid placement, but chained for radio connectivity: the external
        # team knows RF engineering; what it lacks is knowledge of where
        # households cluster.
        gateway_location = network.node("gw0").location
        placed = [gateway_location]
        side = max(1, round(config.n_relays ** 0.5))
        placed_count = 0
        for row in range(side + 1):
            for col in range(side + 1):
                if placed_count >= config.n_relays:
                    break
                x = min_x + (max_x - min_x) * (col + 0.5) / (side + 1)
                y = min_y + (max_y - min_y) * (row + 0.5) / (side + 1)
                target = Location(x, y)
                nearest = min(placed, key=lambda p: distance_km(p, target))
                gap = distance_km(nearest, target)
                if gap > config.radio_range_km:
                    ratio = config.radio_range_km * 0.95 / gap
                    target = Location(
                        nearest.x + (target.x - nearest.x) * ratio,
                        nearest.y + (target.y - nearest.y) * ratio,
                    )
                network.add_node(
                    MeshNode(f"r{placed_count}", target, kind="relay")
                )
                placed.append(target)
                placed_count += 1
    return network


def _seasonal_weather(month: int) -> float:
    """Weather failure multiplier: storms in months 10..12 of each year."""
    return 2.0 if month % 12 >= 9 else 1.0


def _resite_worst_relay(
    network: MeshNetwork, members: MemberPool, radio_range_km: float
) -> None:
    """Feedback iteration: move the least useful relay to unserved members."""
    active_locations = [m.location for m in members.active_members()]
    if not active_locations:
        return
    connected = network.connected_node_ids()
    serving = [network.node(nid) for nid in connected]
    uncovered = [
        loc
        for loc in active_locations
        if all(
            distance_km(node.location, loc) > radio_range_km for node in serving
        )
    ]
    if not uncovered:
        return
    relays = network.nodes(kind="relay")
    if not relays:
        return

    def usefulness(node: MeshNode) -> int:
        return sum(
            1
            for loc in active_locations
            if distance_km(node.location, loc) <= radio_range_km
        )

    worst = min(relays, key=lambda n: (usefulness(n), n.node_id))
    target = _centroid(uncovered)
    anchors = [n for n in serving if n.node_id != worst.node_id]
    if anchors:
        nearest = min(anchors, key=lambda n: distance_km(n.location, target))
        gap = distance_km(nearest.location, target)
        if gap > radio_range_km:
            ratio = radio_range_km * 0.95 / gap
            target = Location(
                nearest.location.x + (target.x - nearest.location.x) * ratio,
                nearest.location.y + (target.y - nearest.location.y) * ratio,
            )
    worst.location = target


def simulate_deployment(config: DeploymentConfig) -> DeploymentOutcome:
    """Run one deployment simulation (deterministic in ``config.seed``)."""
    rng = random.Random(config.seed)
    locations = _clustered_locations(config.n_initial_members, rng)
    volunteer_rate = config.initial_volunteer_rate * (
        2.0 if config.community_siting else 1.0
    )
    members = MemberPool(
        [
            Member(
                member_id=f"m{i:04d}",
                location=location,
                demand_mbps=rng.uniform(1.0, 4.0),
                is_volunteer=rng.random() < volunteer_rate,
                skill=rng.uniform(0.1, 0.9),
            )
            for i, location in enumerate(locations)
        ]
    )
    network = _site_nodes(config, locations, rng)
    cpr = CprAllocator()

    downtime_backlog: dict[str, float] = {}
    repair_days_log: list[float] = []
    monthly_uptime: list[float] = []
    monthly_coverage: list[float] = []
    monthly_quality: list[float] = []
    n_failures = 0

    for month in range(config.months):
        # -- failures arrive -------------------------------------------------
        weather = _seasonal_weather(month)
        failures = sample_failures(
            [n.node_id for n in network.nodes()],
            month,
            rng,
            base_rate=config.failure_rate,
            weather_multiplier=weather,
        )
        n_failures += len(failures)

        if config.local_maintenance:
            pool = VolunteerPool.from_members(members, local=True)
        else:
            pool = VolunteerPool(n_volunteers=2, mean_skill=0.6, local=False)
        spare_delay = 2.0 if config.local_maintenance else 10.0

        pending = len(failures) + sum(1 for v in downtime_backlog.values() if v > 0)
        for failure in failures:
            days = repair_time_days(pool, pending, spare_delay, rng)
            repair_days_log.append(days)
            downtime_backlog[failure.node_id] = (
                downtime_backlog.get(failure.node_id, 0.0) + days
            )

        # -- uptime accounting ----------------------------------------------
        node_uptime: dict[str, float] = {}
        for node in network.nodes():
            backlog = downtime_backlog.get(node.node_id, 0.0)
            down_days = min(DAYS_PER_MONTH, backlog)
            downtime_backlog[node.node_id] = backlog - down_days
            node_uptime[node.node_id] = 1.0 - down_days / DAYS_PER_MONTH
            node.up = downtime_backlog[node.node_id] <= 0.0
        gateway_uptime = node_uptime.get("gw0", 1.0)
        mean_uptime = sum(node_uptime.values()) / len(node_uptime)
        monthly_uptime.append(mean_uptime)

        # -- coverage & congestion -------------------------------------------
        active = members.active_members()
        active_locations = [m.location for m in active]
        # Structural coverage uses the full topology; outages enter
        # through the uptime factors below.
        for node in network.nodes():
            node.up = True
        coverage = network.coverage_share(active_locations)
        monthly_coverage.append(coverage)
        connected_ids = network.connected_node_ids()
        serving_nodes = [network.node(nid) for nid in sorted(connected_ids)]

        covered_members = []
        for member in active:
            reachable = [
                node
                for node in serving_nodes
                if distance_km(node.location, member.location)
                <= config.radio_range_km
            ]
            if reachable:
                nearest = min(
                    reachable,
                    key=lambda n: distance_km(n.location, member.location),
                )
                covered_members.append((member, nearest))

        demands = [m.demand_mbps for m, _ in covered_members]
        if demands:
            if config.feedback_iteration:
                allocation = cpr.allocate(demands, config.backhaul_mbps)
            else:
                order = list(range(len(demands)))
                rng.shuffle(order)
                allocation = allocate_fifo(
                    demands, config.backhaul_mbps, arrival_order=order
                )
            congestion_satisfaction = dict(
                zip(
                    (m.member_id for m, _ in covered_members),
                    allocation.satisfaction,
                )
            )
        else:
            congestion_satisfaction = {}

        covered_ids = {m.member_id for m, _ in covered_members}
        serving_uptime = {
            m.member_id: node_uptime[node.node_id] * gateway_uptime
            for m, node in covered_members
        }

        qualities = []
        for member in active:
            if member.member_id in covered_ids:
                quality = (
                    serving_uptime[member.member_id]
                    * congestion_satisfaction.get(member.member_id, 1.0)
                )
            else:
                quality = 0.0
            member.update_satisfaction(min(1.0, max(0.0, quality)))
            qualities.append(quality)
        monthly_quality.append(
            sum(qualities) / len(qualities) if qualities else 0.0
        )

        # -- community dynamics ----------------------------------------------
        members.apply_churn(month, rng)
        members.recruit(
            month,
            rng,
            base_rate=0.02,
            volunteer_rate=volunteer_rate,
        )
        if config.feedback_iteration and month % 3 == 2:
            _resite_worst_relay(network, members, config.radio_range_km)

    return DeploymentOutcome(
        mean_uptime=sum(monthly_uptime) / len(monthly_uptime),
        mean_coverage=sum(monthly_coverage) / len(monthly_coverage),
        mean_service_quality=sum(monthly_quality) / len(monthly_quality),
        median_repair_days=(
            statistics.median(repair_days_log) if repair_days_log else 0.0
        ),
        retention=members.retention(),
        final_members=len(members.active_members()),
        final_volunteers=len(members.volunteers()),
        n_failures=n_failures,
        monthly_quality=monthly_quality,
    )


def run_deployment_study(
    n_seeds: int = 5,
    months: int = 24,
    ablations: bool = False,
) -> dict[str, dict]:
    """Experiment E8: PAR vs top-down across seeds (optionally ablated).

    Returns:
        policy -> dict of seed-averaged outcome fields (``mean_uptime``,
        ``mean_coverage``, ``mean_service_quality``,
        ``median_repair_days``, ``retention``, ``final_members``,
        ``final_volunteers``).  With ``ablations=True``, adds one policy
        per single PAR ingredient enabled alone.
    """
    variants: dict[str, dict] = {
        "par": {"community_siting": True, "local_maintenance": True,
                "feedback_iteration": True},
        "top_down": {"community_siting": False, "local_maintenance": False,
                     "feedback_iteration": False},
    }
    if ablations:
        variants.update(
            {
                "siting_only": {"community_siting": True,
                                "local_maintenance": False,
                                "feedback_iteration": False},
                "maintenance_only": {"community_siting": False,
                                     "local_maintenance": True,
                                     "feedback_iteration": False},
                "iteration_only": {"community_siting": False,
                                   "local_maintenance": False,
                                   "feedback_iteration": True},
            }
        )

    fields = (
        "mean_uptime",
        "mean_coverage",
        "mean_service_quality",
        "median_repair_days",
        "retention",
        "final_members",
        "final_volunteers",
    )
    results: dict[str, dict] = {}
    for name, switches in variants.items():
        accumulator = {f: 0.0 for f in fields}
        for seed in range(n_seeds):
            config = DeploymentConfig(months=months, seed=seed, **switches)
            outcome = simulate_deployment(config)
            for f in fields:
                accumulator[f] += float(getattr(outcome, f))
        results[name] = {f: accumulator[f] / n_seeds for f in fields}
    return results
