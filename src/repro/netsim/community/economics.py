"""Community-network economics: fees, costs, sustainability.

The problem catalog behind E10 includes ``backhaul-cost`` ("backhaul
transit costs dominate operating budgets") and ``affordability``
("service prices exceed what households can pay") — the two jaws of the
vise every community network operates in.  This module models the
squeeze:

- :class:`CostModel` -- monthly costs: fixed backhaul, per-Mbps
  transit, per-node power, and a parts budget proportional to failures.
- :class:`FeePolicy` -- flat or income-scaled member fees.
- :func:`simulate_finances` -- month-by-month cash flow with
  affordability churn: members whose fee exceeds their willingness to
  pay leave, shrinking revenue (the death-spiral risk).
- :func:`fee_sweep` -- the inverted-U: revenue first rises with the
  fee, then collapses as affordability churn bites; the sweep finds
  the sustainable window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostModel:
    """Monthly cost structure.

    Attributes:
        backhaul_fixed: Fixed monthly backhaul/transit charge.
        backhaul_per_mbps: Charge per Mbps of provisioned capacity.
        power_per_node: Monthly power cost per mesh node.
        parts_per_failure: Average parts cost per hardware failure.
    """

    backhaul_fixed: float = 150.0
    backhaul_per_mbps: float = 3.0
    power_per_node: float = 5.0
    parts_per_failure: float = 60.0

    def monthly_cost(
        self, capacity_mbps: float, n_nodes: int, n_failures: int
    ) -> float:
        """Total cost for one month."""
        if capacity_mbps < 0 or n_nodes < 0 or n_failures < 0:
            raise ValueError("cost inputs must be non-negative")
        return (
            self.backhaul_fixed
            + self.backhaul_per_mbps * capacity_mbps
            + self.power_per_node * n_nodes
            + self.parts_per_failure * n_failures
        )


@dataclass(frozen=True, slots=True)
class FeePolicy:
    """Member fee policy.

    Attributes:
        base_fee: Monthly fee for a median-income household.
        income_scaled: When True, each member pays
            ``base_fee * (income_factor)`` — wealthier households
            subsidize poorer ones (a common cooperative arrangement);
            when False everyone pays ``base_fee``.
    """

    base_fee: float = 10.0
    income_scaled: bool = False

    def fee_for(self, income_factor: float) -> float:
        """Fee charged to a member with the given relative income."""
        if income_factor <= 0:
            raise ValueError("income_factor must be positive")
        if self.income_scaled:
            return self.base_fee * income_factor
        return self.base_fee


@dataclass
class FinanceOutcome:
    """Result of a finance simulation.

    Attributes:
        months_survived: Months before the reserve went negative
            (equals the horizon when the network stays solvent).
        final_reserve: Cash at the end (or at failure).
        final_members: Members remaining.
        mean_monthly_margin: Average revenue minus cost per month
            survived.
        solvent: True when the run ended with members and cash.
    """

    months_survived: int
    final_reserve: float
    final_members: int
    mean_monthly_margin: float
    solvent: bool


def simulate_finances(
    fee_policy: FeePolicy,
    cost_model: CostModel | None = None,
    n_members: int = 60,
    capacity_mbps: float = 50.0,
    n_nodes: int = 10,
    months: int = 36,
    initial_reserve: float = 500.0,
    failure_rate_per_node: float = 0.08,
    seed: int = 0,
) -> FinanceOutcome:
    """Run the monthly cash-flow simulation.

    Members carry lognormal relative incomes (median 1.0) and a
    willingness to pay of ``15 * income`` (a median household accepts a
    fee up to 15 units).  Each month, members whose fee exceeds their
    willingness leave with probability 0.5; revenue, costs, and failures
    are then settled against the reserve.  The network fails when the
    reserve goes negative or membership empties.

    Note the income-scaled policy's structural property: because the
    fee scales with the same income that sets willingness, it prices
    nobody out as long as ``base_fee <= 15`` — the cooperative
    cross-subsidy eliminates affordability churn rather than balancing
    it.
    """
    if months < 1:
        raise ValueError("months must be >= 1")
    if n_members < 1:
        raise ValueError("n_members must be >= 1")
    cost_model = cost_model or CostModel()
    rng = random.Random(seed)
    incomes = [rng.lognormvariate(0.0, 0.5) for _ in range(n_members)]
    willingness = [15.0 * income for income in incomes]

    reserve = initial_reserve
    margins = []
    month = 0
    for month in range(1, months + 1):
        # Affordability churn first: the bill arrives, some can't pay.
        keep_incomes = []
        keep_willingness = []
        for income, limit in zip(incomes, willingness):
            fee = fee_policy.fee_for(income)
            if fee > limit and rng.random() < 0.5:
                continue
            keep_incomes.append(income)
            keep_willingness.append(limit)
        incomes, willingness = keep_incomes, keep_willingness
        if not incomes:
            return FinanceOutcome(
                months_survived=month - 1,
                final_reserve=reserve,
                final_members=0,
                mean_monthly_margin=(
                    sum(margins) / len(margins) if margins else 0.0
                ),
                solvent=False,
            )

        revenue = sum(fee_policy.fee_for(income) for income in incomes)
        n_failures = sum(
            1 for _ in range(n_nodes) if rng.random() < failure_rate_per_node
        )
        cost = cost_model.monthly_cost(capacity_mbps, n_nodes, n_failures)
        margin = revenue - cost
        margins.append(margin)
        reserve += margin
        if reserve < 0:
            return FinanceOutcome(
                months_survived=month,
                final_reserve=reserve,
                final_members=len(incomes),
                mean_monthly_margin=sum(margins) / len(margins),
                solvent=False,
            )
    return FinanceOutcome(
        months_survived=months,
        final_reserve=reserve,
        final_members=len(incomes),
        mean_monthly_margin=sum(margins) / len(margins) if margins else 0.0,
        solvent=True,
    )


def fee_sweep(
    fees: tuple[float, ...] = (4.0, 8.0, 12.0, 16.0, 24.0, 40.0),
    income_scaled: bool = False,
    seed: int = 0,
    **simulate_kwargs,
) -> list[dict]:
    """Sweep the base fee; returns one record per fee level.

    Each record carries ``fee``, ``solvent``, ``months_survived``,
    ``final_members``, ``mean_monthly_margin``.  The classic shape is an
    inverted U: too-low fees bleed the reserve, too-high fees bleed the
    membership; the sustainable window sits between.
    """
    records = []
    for fee in fees:
        outcome = simulate_finances(
            FeePolicy(base_fee=fee, income_scaled=income_scaled),
            seed=seed,
            **simulate_kwargs,
        )
        records.append(
            {
                "fee": fee,
                "solvent": outcome.solvent,
                "months_survived": outcome.months_survived,
                "final_members": outcome.final_members,
                "mean_monthly_margin": outcome.mean_monthly_margin,
            }
        )
    return records
