"""Community mesh-network simulator.

Backs the paper's Section 4 material: the Seattle Community Network
study of researcher/mobilizer positionality in an operational community
network [23], and the "network capacity as common pool resource" work on
community-based congestion management [28].

Modules:

- :mod:`repro.netsim.community.mesh` -- nodes, radio links, connectivity.
- :mod:`repro.netsim.community.members` -- households, demand, churn.
- :mod:`repro.netsim.community.maintenance` -- failures, volunteers,
  repair policies.
- :mod:`repro.netsim.community.congestion` -- backhaul allocation:
  FIFO vs static caps vs max-min vs common-pool-resource management.
- :mod:`repro.netsim.community.deployment` -- the month-by-month
  deployment simulation comparing PAR-engaged and top-down operation.
"""

from repro.netsim.community.mesh import MeshNode, MeshNetwork
from repro.netsim.community.members import Member, MemberPool
from repro.netsim.community.maintenance import (
    Failure,
    VolunteerPool,
    repair_time_days,
)
from repro.netsim.community.congestion import (
    AllocationResult,
    allocate_fifo,
    allocate_static_cap,
    allocate_maxmin,
    CprAllocator,
    jain_fairness,
    run_congestion_study,
)
from repro.netsim.community.deployment import (
    DeploymentConfig,
    DeploymentOutcome,
    simulate_deployment,
    run_deployment_study,
)
from repro.netsim.community.economics import (
    CostModel,
    FeePolicy,
    FinanceOutcome,
    simulate_finances,
    fee_sweep,
)

__all__ = [
    "MeshNode",
    "MeshNetwork",
    "Member",
    "MemberPool",
    "Failure",
    "VolunteerPool",
    "repair_time_days",
    "AllocationResult",
    "allocate_fifo",
    "allocate_static_cap",
    "allocate_maxmin",
    "CprAllocator",
    "jain_fairness",
    "run_congestion_study",
    "DeploymentConfig",
    "DeploymentOutcome",
    "simulate_deployment",
    "run_deployment_study",
    "CostModel",
    "FeePolicy",
    "FinanceOutcome",
    "simulate_finances",
    "fee_sweep",
]
