"""Mesh topology: nodes, radio links, connectivity, coverage.

The physical layer of the community-network model.  Nodes are gateways
(backhaul uplinks), relays, or CPE; links form between nodes within
radio range; a node has service only while it can reach an *up* gateway
through *up* nodes.  Coverage asks the complementary question: which
member locations are within range of a serving node at all — the siting
question participatory deployment gets right and top-down siting gets
wrong (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.topology import Location, distance_km

NODE_KINDS = ("gateway", "relay", "cpe")


@dataclass
class MeshNode:
    """One mesh device.

    Attributes:
        node_id: Unique id.
        location: Placement.
        kind: "gateway", "relay", or "cpe".
        up: Whether the device is currently operational.
        installed_month: Simulation month the node went in.
    """

    node_id: str
    location: Location
    kind: str = "relay"
    up: bool = True
    installed_month: int = 0

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind: {self.kind!r}")


class MeshNetwork:
    """A set of mesh nodes with distance-threshold radio links.

    Example:
        >>> net = MeshNetwork(radio_range_km=1.0)
        >>> net.add_node(MeshNode("gw", Location(0, 0), kind="gateway"))
        >>> net.add_node(MeshNode("n1", Location(0.5, 0)))
        >>> net.has_service("n1")
        True
    """

    def __init__(self, radio_range_km: float = 1.0) -> None:
        if radio_range_km <= 0:
            raise ValueError("radio_range_km must be positive")
        self.radio_range_km = radio_range_km
        self._nodes: dict[str, MeshNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def add_node(self, node: MeshNode) -> None:
        """Add a node; rejects duplicate ids."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node.node_id!r}")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> MeshNode:
        """Node by id (KeyError when absent)."""
        return self._nodes[node_id]

    def nodes(self, kind: str | None = None, up_only: bool = False) -> list[MeshNode]:
        """Nodes filtered by kind and/or up state, sorted by id."""
        return sorted(
            (
                n
                for n in self._nodes.values()
                if (kind is None or n.kind == kind) and (not up_only or n.up)
            ),
            key=lambda n: n.node_id,
        )

    def in_range(self, a: str, b: str) -> bool:
        """True when nodes ``a`` and ``b`` are within radio range."""
        return (
            distance_km(self._nodes[a].location, self._nodes[b].location)
            <= self.radio_range_km
        )

    def neighbors(self, node_id: str, up_only: bool = True) -> list[str]:
        """Ids of nodes in radio range of ``node_id`` (excluding itself)."""
        origin = self._nodes[node_id]
        return sorted(
            other.node_id
            for other in self._nodes.values()
            if other.node_id != node_id
            and (not up_only or other.up)
            and distance_km(origin.location, other.location)
            <= self.radio_range_km
        )

    def connected_node_ids(self) -> set[str]:
        """Ids of up nodes that can reach an up gateway through up nodes."""
        gateways = [
            n.node_id for n in self._nodes.values() if n.kind == "gateway" and n.up
        ]
        reached: set[str] = set()
        frontier = list(gateways)
        reached.update(gateways)
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current, up_only=True):
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        return reached

    def has_service(self, node_id: str) -> bool:
        """True when ``node_id`` is up and gateway-connected."""
        node = self._nodes[node_id]
        return node.up and node.node_id in self.connected_node_ids()

    def service_share(self) -> float:
        """Fraction of all nodes currently holding service."""
        if not self._nodes:
            return 0.0
        connected = self.connected_node_ids()
        return len(connected) / len(self._nodes)

    def covers(self, location: Location) -> bool:
        """True when some *serving* node is within radio range of ``location``."""
        connected = self.connected_node_ids()
        return any(
            distance_km(self._nodes[nid].location, location)
            <= self.radio_range_km
            for nid in connected
        )

    def coverage_share(self, locations: list[Location]) -> float:
        """Fraction of ``locations`` within range of a serving node."""
        if not locations:
            return 1.0
        connected = self.connected_node_ids()
        serving = [self._nodes[nid].location for nid in connected]
        covered = 0
        for location in locations:
            if any(
                distance_km(s, location) <= self.radio_range_km for s in serving
            ):
                covered += 1
        return covered / len(locations)

    def articulation_nodes(self) -> set[str]:
        """Up nodes whose single failure disconnects some served node.

        The maintenance-priority set: a participatory operation knows
        these are the hills to defend.
        """
        baseline = self.connected_node_ids()
        critical: set[str] = set()
        for node in self.nodes(up_only=True):
            node.up = False
            try:
                if len(self.connected_node_ids()) < len(baseline) - 1:
                    critical.add(node.node_id)
            finally:
                node.up = True
        return critical
