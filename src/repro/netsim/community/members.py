"""Community members: households, demand, satisfaction, churn.

Members experience the network month by month: outages and congestion
erode satisfaction, good service restores it, and members whose
satisfaction stays low leave (churn).  Engaged members can volunteer —
the labour pool maintenance runs on — and satisfied members recruit
neighbors, which is how community networks actually grow.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netsim.topology import Location


@dataclass
class Member:
    """One household on the network.

    Attributes:
        member_id: Unique id.
        location: Where the household is.
        joined_month: Simulation month of joining.
        demand_mbps: Typical peak demand.
        is_volunteer: Whether the member contributes maintenance labour.
        skill: Volunteer skill in [0, 1] (repair speed multiplier).
        satisfaction: Rolling satisfaction in [0, 1].
        active: False after churning out.
        left_month: Month of leaving, or None while active.
    """

    member_id: str
    location: Location
    joined_month: int = 0
    demand_mbps: float = 2.0
    is_volunteer: bool = False
    skill: float = 0.3
    satisfaction: float = 0.7
    active: bool = True
    left_month: int | None = None

    def update_satisfaction(self, service_quality: float, inertia: float = 0.7) -> None:
        """Blend this month's service quality into rolling satisfaction.

        Args:
            service_quality: This month's experienced quality in [0, 1]
                (uptime times congestion satisfaction).
            inertia: Weight on the existing satisfaction.
        """
        if not 0.0 <= service_quality <= 1.0:
            raise ValueError("service_quality must be in [0, 1]")
        self.satisfaction = (
            inertia * self.satisfaction + (1.0 - inertia) * service_quality
        )


class MemberPool:
    """The member roster with churn and recruitment dynamics."""

    def __init__(self, members: list[Member] | None = None) -> None:
        self._members: dict[str, Member] = {}
        for member in members or []:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(sorted(self._members.values(), key=lambda m: m.member_id))

    def add(self, member: Member) -> None:
        """Add a member; rejects duplicate ids."""
        if member.member_id in self._members:
            raise ValueError(f"duplicate member id: {member.member_id!r}")
        self._members[member.member_id] = member

    def get(self, member_id: str) -> Member:
        """Member by id (KeyError when absent)."""
        return self._members[member_id]

    def active_members(self) -> list[Member]:
        """Members still on the network, sorted by id."""
        return [m for m in self if m.active]

    def volunteers(self) -> list[Member]:
        """Active volunteers, sorted by id."""
        return [m for m in self.active_members() if m.is_volunteer]

    def retention(self) -> float:
        """Fraction of all ever-members still active."""
        if not self._members:
            return 1.0
        return len(self.active_members()) / len(self._members)

    def apply_churn(
        self,
        month: int,
        rng: random.Random,
        threshold: float = 0.35,
        churn_probability: float = 0.5,
    ) -> list[str]:
        """Let low-satisfaction members leave.

        Each active member with satisfaction below ``threshold`` leaves
        this month with ``churn_probability``.  Returns the ids that
        left (sorted, for determinism).
        """
        left = []
        for member in self.active_members():
            if member.satisfaction < threshold and rng.random() < churn_probability:
                member.active = False
                member.left_month = month
                left.append(member.member_id)
        return sorted(left)

    def recruit(
        self,
        month: int,
        rng: random.Random,
        base_rate: float,
        volunteer_rate: float,
        spread_km: float = 1.5,
        id_prefix: str = "m",
    ) -> list[Member]:
        """Word-of-mouth growth around satisfied members.

        Each active member with satisfaction above 0.7 recruits a new
        neighbor household with probability ``base_rate``; the recruit
        lands near the recruiter and volunteers with ``volunteer_rate``.
        Returns the new members (already added to the pool).
        """
        recruits = []
        counter = len(self._members)
        for member in self.active_members():
            if member.satisfaction > 0.7 and rng.random() < base_rate:
                location = Location(
                    member.location.x + rng.uniform(-spread_km, spread_km),
                    member.location.y + rng.uniform(-spread_km, spread_km),
                    member.location.region,
                    member.location.country,
                )
                recruit = Member(
                    member_id=f"{id_prefix}{counter:04d}",
                    location=location,
                    joined_month=month,
                    demand_mbps=rng.uniform(1.0, 4.0),
                    is_volunteer=rng.random() < volunteer_rate,
                    skill=rng.uniform(0.1, 0.9),
                    satisfaction=0.7,
                )
                counter += 1
                self.add(recruit)
                recruits.append(recruit)
        return recruits
