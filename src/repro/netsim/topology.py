"""Shared geometry and topology helpers.

Both simulators need coarse geography: the BGP simulator to decide what
"keeping traffic local" means, the community simulator to place mesh
nodes.  Locations are planar kilometre coordinates — great-circle math
would add precision the case studies do not need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Location:
    """A point in a planar km coordinate system.

    Attributes:
        x: East-west kilometres.
        y: North-south kilometres.
        region: Coarse region label ("south-america", "europe", ...).
        country: Country label ("BR", "DE", "MX", ...).
    """

    x: float
    y: float
    region: str = ""
    country: str = ""


def distance_km(a: Location, b: Location) -> float:
    """Euclidean distance between two locations in kilometres."""
    return math.hypot(a.x - b.x, a.y - b.y)


def gravity_weight(
    size_a: float, size_b: float, distance: float, decay: float = 1.0
) -> float:
    """Gravity-model interaction weight between two endpoints.

    ``weight = size_a * size_b / (1 + distance) ** decay`` — the standard
    traffic-matrix prior: big endpoints exchange more, far endpoints less.

    Args:
        size_a: Mass of one endpoint (users, customer-cone size, ...).
        size_b: Mass of the other.
        distance: Distance in km (any non-negative scale).
        decay: Distance-decay exponent; 0 disables geography.
    """
    if size_a < 0 or size_b < 0:
        raise ValueError("sizes must be non-negative")
    if distance < 0:
        raise ValueError("distance must be non-negative")
    return size_a * size_b / (1.0 + distance) ** decay
