"""Sender behaviours: the pre-Tahoe counterfactual and the AIMD family.

Senders transmit sequence-numbered packets under a window, retransmit
on timeout, and (for the AIMD family) adapt the window to loss signals.
Three behaviours span the paper's Section-2 historical argument:

- :class:`FixedWindowSender` — the open-loop counterfactual: a constant
  window, a *static* retransmission timeout with no RTT estimation, and
  no reaction to loss.  When queueing delay exceeds its timeout it
  re-sends packets that were never lost; the shared queue fills with
  duplicates and goodput collapses (Jacobson 1988's diagnosis).
- :class:`TahoeSender` — slow start + congestion avoidance + adaptive
  timeout (EWMA RTT estimation); any loss event resets the window to 1.
  Built from deployment experience — the paper's example of action
  research shipped into the Internet.
- :class:`RenoSender` — Tahoe plus fast recovery: a loss tick on which
  ACKs still arrived halves the window instead of resetting it (the
  next deployment iteration).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FlowStats:
    """Lifetime statistics for one sender.

    Attributes:
        transmitted: Packets put on the wire (including retransmissions).
        retransmissions: Of those, how many were re-sends.
        acked: Distinct sequence numbers acknowledged.
    """

    transmitted: int = 0
    retransmissions: int = 0
    acked: int = 0


class SenderBase:
    """Window, in-flight tracking, timeout retransmission.

    Subclasses set the window policy via :meth:`window` and react to
    loss signals in :meth:`on_tick_feedback`.
    """

    def __init__(self, flow_id: str, demand_per_tick: int) -> None:
        if demand_per_tick < 0:
            raise ValueError("demand_per_tick must be >= 0")
        self.flow_id = flow_id
        self.demand_per_tick = demand_per_tick
        self.stats = FlowStats()
        self._next_seq = 0
        self._app_backlog = 0          # sequence numbers not yet created
        self._in_flight: dict[int, int] = {}  # seq -> last transmission tick
        self._timeouts_this_tick = 0

    # -- policy hooks --------------------------------------------------------

    def window(self) -> int:
        """Current window size in packets."""
        raise NotImplementedError

    def timeout_ticks(self, now: int) -> int:
        """Current retransmission timeout in ticks."""
        raise NotImplementedError

    def on_tick_feedback(
        self, acked: int, spurious_acks: int, timeouts: int, now: int
    ) -> None:
        """React to this tick's signals (AIMD subclasses adjust cwnd)."""

    def record_rtt(self, rtt: float) -> None:
        """Observe one packet's round-trip time (adaptive-RTO hook)."""

    # -- mechanics -----------------------------------------------------------

    def transmit(self, now: int) -> list[int]:
        """Sequence numbers to put on the wire this tick.

        Timed-out in-flight packets are retransmitted first; new
        sequence numbers fill the remaining window.  The count of
        timeout retransmissions this tick is exposed through the return
        of :meth:`collect_timeouts` (already folded into stats here).
        """
        self._app_backlog += self.demand_per_tick
        timeout = self.timeout_ticks(now)
        window = max(1, self.window())

        sends: list[int] = []
        timeouts = 0
        for seq in sorted(self._in_flight):
            if len(sends) >= window:
                break
            if now - self._in_flight[seq] >= timeout:
                self._in_flight[seq] = now
                sends.append(seq)
                timeouts += 1
        self._timeouts_this_tick = timeouts

        while (
            len(self._in_flight) < window
            and len(sends) < window
            and self._app_backlog > 0
        ):
            seq = self._next_seq
            self._next_seq += 1
            self._app_backlog -= 1
            self._in_flight[seq] = now
            sends.append(seq)

        self.stats.transmitted += len(sends)
        self.stats.retransmissions += timeouts
        return sends

    def deliver_acks(self, seqs: list[int], now: int) -> tuple[int, int]:
        """Process ACKs for served packets.

        Returns ``(fresh, spurious)``: ACKs for packets still considered
        in flight vs duplicates of already-acknowledged data.
        """
        fresh = 0
        spurious = 0
        for seq in seqs:
            sent_at = self._in_flight.pop(seq, None)
            if sent_at is None:
                spurious += 1
            else:
                fresh += 1
                self.stats.acked += 1
                self.record_rtt(now - sent_at + 1)
        self.on_tick_feedback(
            fresh, spurious, self._timeouts_this_tick, now
        )
        self._timeouts_this_tick = 0
        return fresh, spurious


class FixedWindowSender(SenderBase):
    """Open-loop sender: constant window, static timeout, no adaptation."""

    def __init__(
        self,
        flow_id: str,
        demand_per_tick: int,
        window_size: int,
        static_timeout: int = 2,
    ) -> None:
        super().__init__(flow_id, demand_per_tick)
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if static_timeout < 1:
            raise ValueError("static_timeout must be >= 1")
        self._window = window_size
        self._timeout = static_timeout

    def window(self) -> int:
        return self._window

    def timeout_ticks(self, now: int) -> int:
        return self._timeout


class AdaptiveRtoMixin:
    """EWMA RTT estimation feeding the retransmission timeout.

    Jacobson's companion fix to AIMD: the timeout tracks measured RTT
    (here ``2 * srtt + 1``, floored at 3 ticks), so a standing queue
    does not trigger spurious retransmission.
    """

    def __init__(self) -> None:
        self._srtt = 2.0

    def record_rtt(self, rtt: float) -> None:
        self._srtt = 0.875 * self._srtt + 0.125 * rtt

    def timeout_ticks(self, now: int) -> int:
        return max(3, int(2 * self._srtt + 1))


class TahoeSender(AdaptiveRtoMixin, SenderBase):
    """Slow start + congestion avoidance; loss resets the window to 1."""

    def __init__(
        self, flow_id: str, demand_per_tick: int, max_window: int = 1 << 10
    ) -> None:
        SenderBase.__init__(self, flow_id, demand_per_tick)
        AdaptiveRtoMixin.__init__(self)
        self.cwnd = 1.0
        self.ssthresh = float(max_window)
        self.max_window = max_window

    def window(self) -> int:
        return max(1, int(self.cwnd))

    def on_tick_feedback(
        self, acked: int, spurious_acks: int, timeouts: int, now: int
    ) -> None:
        if timeouts > 0:
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = 1.0
        elif acked > 0:
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd * 2.0, float(self.max_window))
            else:
                self.cwnd = min(self.cwnd + 1.0, float(self.max_window))


class RenoSender(TahoeSender):
    """Tahoe plus fast recovery.

    A loss tick on which fresh ACKs still arrived is the
    triple-duplicate-ACK analogue: halve instead of resetting.  A loss
    tick with no ACK progress is a timeout: reset to 1 as in Tahoe.
    """

    def on_tick_feedback(
        self, acked: int, spurious_acks: int, timeouts: int, now: int
    ) -> None:
        if timeouts > 0 and acked > 0:
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = max(1.0, self.ssthresh)
        elif timeouts > 0:
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = 1.0
        elif acked > 0:
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd * 2.0, float(self.max_window))
            else:
                self.cwnd = min(self.cwnd + 1.0, float(self.max_window))


def make_sender(
    protocol: str,
    flow_id: str,
    demand_per_tick: int,
    window_size: int = 32,
) -> SenderBase:
    """Factory: "fixed", "tahoe", or "reno".

    Args:
        protocol: Sender behaviour name.
        flow_id: Flow identifier.
        demand_per_tick: New packets the application produces per tick.
        window_size: Fixed window (fixed) / max window (tahoe, reno).
    """
    if protocol == "fixed":
        return FixedWindowSender(flow_id, demand_per_tick, window_size)
    if protocol == "tahoe":
        return TahoeSender(flow_id, demand_per_tick, max_window=window_size)
    if protocol == "reno":
        return RenoSender(flow_id, demand_per_tick, max_window=window_size)
    raise ValueError(f"unknown protocol: {protocol!r}")
