"""The bottleneck link: a drop-tail FIFO of real packets.

Packets are ``(flow_index, sequence_number)`` pairs.  Each tick, flows'
transmissions are interleaved round-robin (so no flow gets priority by
list position), admitted up to the free buffer (drop-tail beyond), and
the head ``capacity`` packets are served.  Queueing delay — the number
of ticks a packet waits — is what drives the congestion-collapse
mechanism: when delay exceeds a sender's retransmission timeout, the
sender re-sends packets that were never lost, and the link fills with
duplicates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

Packet = tuple[int, int]  # (flow_index, sequence_number)


def interleave(per_flow: list[list[Packet]]) -> list[Packet]:
    """Round-robin interleave per-flow packet lists.

    >>> interleave([[(0, 1), (0, 2)], [(1, 9)]])
    [(0, 1), (1, 9), (0, 2)]
    """
    result: list[Packet] = []
    cursors = [0] * len(per_flow)
    remaining = sum(len(packets) for packets in per_flow)
    while remaining:
        for i, packets in enumerate(per_flow):
            if cursors[i] < len(packets):
                result.append(packets[cursors[i]])
                cursors[i] += 1
                remaining -= 1
    return result


@dataclass
class Link:
    """A shared drop-tail bottleneck.

    Attributes:
        capacity: Packets served per tick.
        buffer_size: Maximum packets held in the queue between ticks.
    """

    capacity: int
    buffer_size: int
    _fifo: deque = field(default_factory=deque, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.buffer_size < 0:
            raise ValueError(f"buffer_size must be >= 0, got {self.buffer_size}")

    @property
    def queue(self) -> int:
        """Current queue occupancy."""
        return len(self._fifo)

    @property
    def queue_delay_ticks(self) -> float:
        """Ticks a packet arriving now would wait before service."""
        return self.queue / self.capacity

    def tick(self, per_flow_transmissions: list[list[Packet]]) -> tuple[
        list[Packet], list[Packet]
    ]:
        """Run one tick: admit arrivals, then serve the head of the queue.

        Args:
            per_flow_transmissions: Each flow's packets this tick.

        Returns:
            ``(served, dropped)`` packet lists.  Served packets left the
            link this tick (their ACKs arrive now); dropped packets were
            tail-dropped at admission.
        """
        arrivals = interleave(per_flow_transmissions)
        free = self.buffer_size + self.capacity - self.queue
        admitted = arrivals[: max(0, free)]
        dropped = arrivals[max(0, free):]
        self._fifo.extend(admitted)
        served = [
            self._fifo.popleft()
            for _ in range(min(self.capacity, len(self._fifo)))
        ]
        return served, dropped

    def reset(self) -> None:
        """Empty the queue."""
        self._fifo.clear()
