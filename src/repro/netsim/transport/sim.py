"""Shared-bottleneck simulation and the congestion-collapse study (E13).

``simulate_shared_link`` runs N senders of one protocol over one
:class:`~repro.netsim.transport.link.Link` for T ticks.  The receiver
counts each sequence number once: re-deliveries of already-received
data are duplicates — wire capacity spent without progress.  Goodput is
unique deliveries per tick over capacity.

``run_collapse_study`` sweeps offered load per protocol and produces
the classic curve: open-loop goodput rises to capacity, then *falls* as
load grows (spurious retransmissions crowd out fresh data once queueing
delay exceeds the static timeout); AIMD senders hold the plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.community.congestion import jain_fairness
from repro.netsim.transport.flows import make_sender
from repro.netsim.transport.link import Link


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one shared-link run.

    Attributes:
        protocol: Sender behaviour used.
        offered_load: Application demand per tick / link capacity.
        goodput: Unique deliveries per tick / capacity.
        duplicate_share: Duplicate deliveries / all deliveries — the
            collapse signature.
        loss_rate: Tail-dropped / transmitted.
        retransmission_share: Retransmissions / transmissions.
        fairness: Jain index over per-flow unique deliveries.
        mean_queue_delay: Average queueing delay in ticks.
    """

    protocol: str
    offered_load: float
    goodput: float
    duplicate_share: float
    loss_rate: float
    retransmission_share: float
    fairness: float
    mean_queue_delay: float


def simulate_shared_link(
    protocol: str,
    n_flows: int = 8,
    demand_per_flow: int = 4,
    capacity: int = 16,
    buffer_size: int = 32,
    window_size: int = 64,
    ticks: int = 400,
    warmup: int = 50,
) -> SimulationResult:
    """Run one protocol over a shared bottleneck (deterministic).

    Statistics exclude the first ``warmup`` ticks so slow start and the
    initial queue ramp do not blur the steady state.
    """
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    if ticks <= warmup:
        raise ValueError("ticks must exceed warmup")
    link = Link(capacity=capacity, buffer_size=buffer_size)
    senders = [
        make_sender(protocol, f"f{i}", demand_per_flow, window_size)
        for i in range(n_flows)
    ]
    received: list[set[int]] = [set() for _ in range(n_flows)]

    unique = [0] * n_flows
    duplicates = 0
    transmitted = 0
    dropped_count = 0
    delay_samples: list[float] = []

    for tick in range(ticks):
        per_flow = [
            [(i, seq) for seq in sender.transmit(tick)]
            for i, sender in enumerate(senders)
        ]
        if tick >= warmup:
            delay_samples.append(link.queue_delay_ticks)
        served, dropped = link.tick(per_flow)

        acks_by_flow: list[list[int]] = [[] for _ in range(n_flows)]
        for flow_index, seq in served:
            acks_by_flow[flow_index].append(seq)
            if seq in received[flow_index]:
                if tick >= warmup:
                    duplicates += 1
            else:
                received[flow_index].add(seq)
                if tick >= warmup:
                    unique[flow_index] += 1
        for i, sender in enumerate(senders):
            sender.deliver_acks(acks_by_flow[i], tick)

        if tick >= warmup:
            transmitted += sum(len(p) for p in per_flow)
            dropped_count += len(dropped)

    # Retransmission share is computed over lifetime sender stats (the
    # slow-start transient retransmits little, so the warmup skew is
    # negligible and the lifetime counters are exact).
    total_retx = sum(s.stats.retransmissions for s in senders)
    total_tx = sum(s.stats.transmitted for s in senders)

    measured = ticks - warmup
    total_unique = sum(unique)
    total_delivered = total_unique + duplicates
    return SimulationResult(
        protocol=protocol,
        offered_load=n_flows * demand_per_flow / capacity,
        goodput=total_unique / (capacity * measured),
        duplicate_share=(
            duplicates / total_delivered if total_delivered else 0.0
        ),
        loss_rate=dropped_count / transmitted if transmitted else 0.0,
        retransmission_share=total_retx / total_tx if total_tx else 0.0,
        fairness=jain_fairness(unique),
        mean_queue_delay=(
            sum(delay_samples) / len(delay_samples) if delay_samples else 0.0
        ),
    )


def run_collapse_study(
    load_levels: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0),
    protocols: tuple[str, ...] = ("fixed", "tahoe", "reno"),
    capacity: int = 16,
    n_flows: int = 8,
    ticks: int = 400,
) -> list[SimulationResult]:
    """Sweep offered load for each protocol (experiment E13).

    ``load_levels`` are in units of link capacity; per-flow demand is
    derived (at least 1 packet/tick).  The fixed-window sender's window
    is sized to its own demand times the nominal RTT (open-loop
    engineering with no regard for sharing); AIMD senders get a large
    maximum window and regulate themselves.
    """
    results = []
    for protocol in protocols:
        for load in load_levels:
            demand = max(1, round(load * capacity / n_flows))
            results.append(
                simulate_shared_link(
                    protocol,
                    n_flows=n_flows,
                    demand_per_flow=demand,
                    capacity=capacity,
                    window_size=(
                        max(4, 3 * demand) if protocol == "fixed" else 1 << 10
                    ),
                    ticks=ticks,
                )
            )
    return results
