"""Flow-level transport simulator: the Section-2 historical exhibit.

The paper's Action-Research argument leans on congestion control as its
canonical example: innovations "such as congestion control algorithms
(e.g., TCP Tahoe) being relatively small extensions over existing
designs and deployed first into the Internet", developed hand-in-hand
with operators — and "we know what would have happened without these
use-focused 'action' methods".  What would have happened is congestion
collapse (Jacobson 1988): open-loop senders retransmitting into a
saturated network until goodput dies.

This package reproduces that exhibit with a discrete-time fluid/packet
simulator:

- :mod:`repro.netsim.transport.link` -- a bottleneck link with a finite
  buffer (drop-tail).
- :mod:`repro.netsim.transport.flows` -- sender behaviours: open-loop
  fixed-window (the pre-Tahoe counterfactual), Tahoe-style slow start +
  AIMD with timeout, and Reno-style fast recovery.
- :mod:`repro.netsim.transport.sim` -- the shared-bottleneck simulation
  and the E13 congestion-collapse study.
"""

from repro.netsim.transport.link import Link, interleave
from repro.netsim.transport.flows import (
    FlowStats,
    SenderBase,
    FixedWindowSender,
    TahoeSender,
    RenoSender,
    make_sender,
)
from repro.netsim.transport.sim import (
    SimulationResult,
    simulate_shared_link,
    run_collapse_study,
)

__all__ = [
    "Link",
    "interleave",
    "FlowStats",
    "SenderBase",
    "FixedWindowSender",
    "TahoeSender",
    "RenoSender",
    "make_sender",
    "SimulationResult",
    "simulate_shared_link",
    "run_collapse_study",
]
