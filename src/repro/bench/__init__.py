"""``repro.bench`` — the perf-regression ledger and its gate.

``benchmarks/results/*.json`` are point-in-time artifacts; this package
turns them into a *trajectory*.  Every benchmark run appends one
normalized, schema-validated record per measured hot path to
``BENCH_history.json`` (the ledger), and ``repro bench gate`` compares
the newest record for each named hot path against a rolling baseline of
its predecessors — failing loudly on a >20% regression.  The speed
story stops being "the numbers in the last PR looked fine" and becomes
an enforced invariant, measured against the ledger, never against an
arbitrary commit.

- :mod:`repro.bench.ledger` — the record schema, validation, and the
  append/load path (JSONL through the crash-safe ``append_jsonl``).
- :mod:`repro.bench.gate` — baseline selection (median of a trailing
  window), the regression check, and the trajectory report.
- :mod:`repro.bench.hotpaths` — the named hot-path runners (`scanner`,
  `tfidf`, `suite`, `serve_p95`) behind ``repro bench run``, shared
  with the pytest benchmarks so both append comparable entries.
"""

from repro.bench.gate import GateCheck, GateReport, evaluate_gate, render_trajectory
from repro.bench.ledger import (
    DEFAULT_LEDGER,
    SCHEMA_VERSION,
    append_entries,
    load_ledger,
    make_entry,
    validate_entry,
)

__all__ = [
    "DEFAULT_LEDGER",
    "GateCheck",
    "GateReport",
    "SCHEMA_VERSION",
    "append_entries",
    "evaluate_gate",
    "load_ledger",
    "make_entry",
    "render_trajectory",
    "validate_entry",
]
