"""The perf-regression gate over the bench ledger.

``repro bench gate scanner tfidf`` answers one question per named hot
path: *is the newest ledger entry more than X% worse than its recent
history?*  The baseline is the **median of a trailing window** of prior
entries (default 5) rather than the single previous run — one noisy
run must neither trip the gate on the next honest run nor quietly
become the number everything after it is judged by.  A hot path with
no prior history passes with a ``no baseline yet`` note: the first run
*establishes* the trajectory, it cannot regress from it.

The ledger is append-only and ordered, so "latest" and "window" are
positional — the discipline the related llm-docs repo spells as "do
not benchmark against an arbitrary commit": every comparison is
against the recorded trajectory, reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from repro.io.tables import render_table

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "GateCheck",
    "GateReport",
    "evaluate_gate",
    "render_trajectory",
]

#: Fractional regression that fails the gate (0.20 == >20% worse).
DEFAULT_THRESHOLD = 0.20

#: Prior entries the baseline median is taken over.
DEFAULT_WINDOW = 5


@dataclass
class GateCheck:
    """The verdict for one (bench, metric) hot path.

    Attributes:
        bench: Hot-path name (``scanner``, ``serve_p95``, ...).
        metric: Metric name within the bench (usually ``seconds``).
        latest: Newest recorded value.
        baseline: Median of the trailing window, None on first run.
        ratio: ``latest / baseline`` oriented so > 1 is worse (the
            reciprocal for higher-is-better metrics); None without a
            baseline.
        ok: True unless the ratio exceeds ``1 + threshold``.
        note: Human-readable one-liner for the table.
    """

    bench: str
    metric: str
    latest: float | None
    baseline: float | None
    ratio: float | None
    ok: bool
    note: str


@dataclass
class GateReport:
    """Every requested check plus the overall verdict."""

    threshold: float
    window: int
    checks: list[GateCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def summary(self) -> dict:
        """The machine-readable form (``repro bench gate --json``)."""
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "window": self.window,
            "checks": [
                {
                    "bench": c.bench,
                    "metric": c.metric,
                    "latest": c.latest,
                    "baseline": c.baseline,
                    "ratio": c.ratio,
                    "ok": c.ok,
                    "note": c.note,
                }
                for c in self.checks
            ],
        }

    def render(self) -> str:
        return render_table(
            ["bench", "metric", "latest", "baseline", "ratio", "verdict"],
            [
                [
                    c.bench,
                    c.metric,
                    c.latest if c.latest is not None else "-",
                    c.baseline if c.baseline is not None else "-",
                    f"{c.ratio:.3f}" if c.ratio is not None else "-",
                    ("ok" if c.ok else "REGRESSED") + f" ({c.note})",
                ]
                for c in self.checks
            ],
            title=(
                f"bench gate (fail above {1 + self.threshold:.2f}x the "
                f"median of the last {self.window})"
            ),
            precision=6,
        )


def _series(entries: list[dict]) -> dict[tuple[str, str], list[dict]]:
    grouped: dict[tuple[str, str], list[dict]] = {}
    for entry in entries:
        grouped.setdefault((entry["bench"], entry["metric"]), []).append(entry)
    return grouped


def evaluate_gate(
    entries: list[dict],
    benches: list[str],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> GateReport:
    """Gate the named ``benches`` against the ledger ``entries``.

    A named bench with no ledger entries at all fails — a gate that
    passes because the benchmark silently stopped recording would be
    worse than no gate.
    """
    grouped = _series(entries)
    report = GateReport(threshold=threshold, window=window)
    for bench in benches:
        keys = sorted(key for key in grouped if key[0] == bench)
        if not keys:
            report.checks.append(GateCheck(
                bench=bench, metric="-", latest=None, baseline=None,
                ratio=None, ok=False, note="no ledger entries",
            ))
            continue
        for key in keys:
            series = grouped[key]
            latest = series[-1]
            prior = [e["value"] for e in series[:-1]][-window:]
            if not prior:
                report.checks.append(GateCheck(
                    bench=bench, metric=key[1], latest=latest["value"],
                    baseline=None, ratio=None, ok=True,
                    note="no baseline yet (first entry)",
                ))
                continue
            baseline = median(prior)
            if baseline <= 0:
                ratio = None
                ok = True
                note = "baseline is zero; not comparable"
            else:
                ratio = latest["value"] / baseline
                if latest.get("better") == "higher":
                    ratio = baseline / latest["value"] if latest["value"] else float("inf")
                ok = ratio <= 1 + threshold
                note = (
                    f"{len(prior)}-run baseline"
                    if ok
                    else f"{(ratio - 1) * 100:.1f}% worse than baseline"
                )
            report.checks.append(GateCheck(
                bench=bench, metric=key[1], latest=latest["value"],
                baseline=baseline, ratio=ratio, ok=ok, note=note,
            ))
    return report


def render_trajectory(
    entries: list[dict], benches: list[str] | None = None
) -> str:
    """The ledger as a per-hot-path trajectory table (``bench report``).

    Shows, for every (bench, metric) series: how many runs the ledger
    holds, the newest value, the rolling baseline the gate would use,
    the best value ever recorded, and latest-vs-baseline drift.
    """
    grouped = _series(entries)
    if benches:
        grouped = {k: v for k, v in grouped.items() if k[0] in benches}
    if not grouped:
        return "(ledger has no entries)"
    rows = []
    for (bench, metric), series in sorted(grouped.items()):
        values = [e["value"] for e in series]
        latest = values[-1]
        prior = values[:-1][-DEFAULT_WINDOW:]
        baseline = median(prior) if prior else None
        best = min(values) if series[-1].get("better") != "higher" else max(values)
        drift = (
            f"{(latest / baseline - 1) * 100:+.1f}%"
            if baseline else "-"
        )
        rows.append([
            bench, metric, len(series), latest,
            baseline if baseline is not None else "-",
            best, drift,
            series[-1].get("git_rev") or "-",
        ])
    return render_table(
        ["bench", "metric", "runs", "latest", "baseline", "best", "drift",
         "rev"],
        rows,
        title="bench ledger trajectory",
        precision=6,
    )
