"""The bench ledger: normalized perf records with a validated schema.

One ledger row is one measurement of one named benchmark metric:

.. code-block:: json

    {"schema": 1, "bench": "scanner", "metric": "seconds",
     "value": 0.00042, "unit": "seconds", "better": "lower",
     "config_hash": null, "git_rev": "a73b0af", "recorded": 1754650000.0,
     "context": {"cpu_count": 1, "repeats": 5}}

The file is line-delimited JSON appended through the crash-safe
:func:`repro.io.jsonl.append_jsonl` path (a torn final line is
detectable and salvageable like every other JSONL dataset here), and
every row is validated against the schema both on append and on load —
a ledger that silently accumulated malformed rows would poison every
future gate comparison.
"""

from __future__ import annotations

import subprocess
import time
from pathlib import Path

from repro.errors import DataFormatError
from repro.io.jsonl import append_jsonl, read_jsonl

__all__ = [
    "DEFAULT_LEDGER",
    "SCHEMA_VERSION",
    "append_entries",
    "git_rev",
    "load_ledger",
    "make_entry",
    "validate_entry",
]

#: Bumped when a field is added/renamed; old rows stay readable because
#: validation is keyed on the row's own ``schema`` value.
SCHEMA_VERSION = 1

#: Where the repository's ledger lives (relative to the repo root /
#: working directory; the CLI and Makefile both default to this).
DEFAULT_LEDGER = Path("benchmarks") / "results" / "BENCH_history.json"

#: field name -> (accepted types, required)
_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "schema": ((int,), True),
    "bench": ((str,), True),
    "metric": ((str,), True),
    "value": ((int, float), True),
    "unit": ((str,), True),
    "better": ((str,), True),
    "config_hash": ((str, type(None)), True),
    "git_rev": ((str, type(None)), True),
    "recorded": ((int, float), True),
    "context": ((dict,), False),
}


def git_rev() -> str | None:
    """The current short git revision, or None outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def make_entry(
    bench: str,
    value: float,
    *,
    metric: str = "seconds",
    unit: str = "seconds",
    better: str = "lower",
    config_hash: str | None = None,
    context: dict | None = None,
    rev: str | None = None,
) -> dict:
    """One schema-complete ledger row, stamped with rev + wall time."""
    entry = {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "metric": metric,
        "value": float(value),
        "unit": unit,
        "better": better,
        "config_hash": config_hash,
        "git_rev": rev if rev is not None else git_rev(),
        "recorded": time.time(),
        "context": dict(context or {}),
    }
    validate_entry(entry)
    return entry


def validate_entry(entry: dict, *, where: str = "ledger entry") -> None:
    """Raise :class:`DataFormatError` unless ``entry`` fits the schema."""
    if not isinstance(entry, dict):
        raise DataFormatError(
            f"{where}: expected an object, got {type(entry).__name__}",
            stage="validate",
        )
    for field, (types, required) in _SCHEMA.items():
        if field not in entry:
            if required:
                raise DataFormatError(
                    f"{where}: missing required field {field!r}",
                    stage="validate",
                )
            continue
        value = entry[field]
        if isinstance(value, bool) or not isinstance(value, types):
            raise DataFormatError(
                f"{where}: field {field!r} has {type(value).__name__} "
                f"value {value!r}; expected "
                f"{'/'.join(t.__name__ for t in types)}",
                stage="validate",
            )
    if entry["better"] not in ("lower", "higher"):
        raise DataFormatError(
            f"{where}: 'better' must be 'lower' or 'higher', "
            f"got {entry['better']!r}",
            stage="validate",
        )
    unknown = set(entry) - set(_SCHEMA)
    if unknown:
        raise DataFormatError(
            f"{where}: unknown fields {sorted(unknown)}", stage="validate"
        )


def append_entries(path: str | Path, entries: list[dict]) -> int:
    """Validate and append ``entries``; returns how many were written."""
    for index, entry in enumerate(entries):
        validate_entry(entry, where=f"entry {index}")
    return append_jsonl(path, entries)


def load_ledger(path: str | Path) -> list[dict]:
    """Read and validate the ledger at ``path`` (empty list when absent).

    Rows come back in append order — the order the gate's trailing
    baseline window depends on.  A malformed row fails the load: the
    gate must never silently compare against garbage.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries = list(read_jsonl(path))
    for index, entry in enumerate(entries):
        validate_entry(entry, where=f"{path}: row {index}")
    return entries
