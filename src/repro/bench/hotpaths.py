"""Named hot-path runners behind ``repro bench run``.

Each hot path is a self-contained measurement of one thing the ROADMAP
calls out as a speed claim — the method-mention scanner, the tf-idf
vectorizer, suite wall-clock, and the serve hot path's tail latency —
with a *fixed* workload, so ledger entries from different commits are
comparable.  The pytest benchmarks (``benchmarks/bench_primitives.py``,
``bench_serve.py``) call the same runners for their ledger appends:
one definition of "the scanner benchmark", wherever it is measured.

Micro paths (and the fast suite run, which is itself only tens of
milliseconds) record the **minimum** over ``repeats`` runs — the
standard microbenchmark estimator, least contaminated by scheduler
noise; the serve path takes the best p95 over a few load passes
against one warm server — each pass already aggregates hundreds of
requests, and the min rejects the pass a CI neighbor stole cycles
from.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable

from repro.bench.ledger import make_entry

__all__ = ["HOT_PATHS", "hot_path_names", "run_hot_path"]

#: The deterministic scanner workload: method-dense prose, ~2.4 KB.
_SCANNER_TEXT = (
    "This paper studies peering policies and the practices surrounding "
    "them. We conducted semi-structured interviews with 24 operators and "
    "complement the findings with a measurement study spanning 12 months "
    "of packet traces collected from 9 vantage points. A testbed "
    "deployment validates the design. Participatory action research "
    "with the community network's volunteers grounded the survey design. "
) * 8


def _tfidf_docs() -> list[str]:
    rng = random.Random(0)
    vocabulary = (
        "mesh", "community", "network", "peering", "transit", "ixp",
        "backhaul", "datacenter", "latency", "operator",
    )
    return [
        " ".join(rng.choice(vocabulary) for _ in range(120))
        for _ in range(200)
    ]


def _time_min(fn: Callable[[], object], repeats: int, inner: int = 1) -> float:
    """Min over ``repeats`` of the mean of ``inner`` back-to-back calls.

    The inner loop amortizes timer granularity and interrupt noise for
    sub-millisecond paths; the outer min rejects scheduler outliers.
    Sub-20% regressions are what the gate must resolve, so the
    estimator's own jitter has to sit well below that.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def _run_scanner(repeats: int) -> list[dict]:
    from repro.bibliometrics.methods_detect import detect_methods

    assert detect_methods(_SCANNER_TEXT), "scanner workload found no mentions"
    value = _time_min(lambda: detect_methods(_SCANNER_TEXT), repeats, inner=50)
    return [make_entry(
        "scanner", value,
        context={"repeats": repeats, "inner": 50, "chars": len(_SCANNER_TEXT),
                 "cpu_count": os.cpu_count()},
    )]


def _run_tfidf(repeats: int) -> list[dict]:
    from repro.textmine.tfidf import TfidfVectorizer

    docs = _tfidf_docs()
    value = _time_min(
        lambda: TfidfVectorizer().fit_transform(docs), repeats, inner=3
    )
    return [make_entry(
        "tfidf", value,
        context={"repeats": repeats, "inner": 3, "docs": len(docs),
                 "cpu_count": os.cpu_count()},
    )]


def _run_suite(repeats: int) -> list[dict]:
    from repro.experiments.registry import make_spec
    from repro.runtime.runner import SuiteRunner

    spec = make_spec("E7", "fast", seed=0)

    def run_once():
        report = SuiteRunner().run_points([spec])
        record = report.records[0]
        assert record.status == "ok", f"E7 failed: {record.error}"

    value = _time_min(run_once, repeats)
    return [make_entry(
        "suite", value,
        metric="e7_fast_wall_seconds",
        config_hash=spec.config_hash(),
        context={"experiment_id": "E7", "preset": "fast",
                 "repeats": repeats, "cpu_count": os.cpu_count()},
    )]


def _run_serve_p95(repeats: int) -> list[dict]:
    from repro.obs.metrics import MetricsRegistry, percentile
    from repro.serve.client import fetch, run_load
    from repro.serve.service import ResultService, ServeConfig, ServerThread

    import tempfile

    clients, per_client = 8, 25
    passes = max(1, min(repeats, 3))
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        service = ResultService(
            ServeConfig(
                cache_dir=os.path.join(tmp, "cache"),
                deadline=120.0,
                max_inflight=128,
            ),
            metrics=MetricsRegistry(),
        )
        best = float("inf")
        with ServerThread(service) as server:
            warm = fetch(
                "127.0.0.1", server.port, "/v1/result/E7?seed=0", timeout=120
            )
            assert warm.status == 200, warm.status
            for _ in range(passes):
                report = run_load(
                    "127.0.0.1", server.port, "/v1/result/E7?seed=0",
                    clients=clients, requests_per_client=per_client,
                    timeout=120,
                )
                ok = report.statuses.get(200, 0)
                assert ok == clients * per_client, report.statuses
                best = min(best, percentile(report.latencies, 0.95))
    return [make_entry(
        "serve_p95", best,
        metric="hot_p95_seconds",
        context={"clients": clients, "requests_per_client": per_client,
                 "passes": passes, "cpu_count": os.cpu_count()},
    )]


#: Fixed workload for the corpus-generation hot path: big enough that
#: per-shard vectorized work dominates, small enough for CI (~0.5 s per
#: repeat at the seed-commit rate).
_SYNTHGEN_PAPERS = 20_000
_SYNTHGEN_SHARD = 5_000

#: Fixed workload for the per-shard scan hot path.
_SCAN_PAPERS = 4_000


def _synthgen_config():
    from repro.bibliometrics.shardgen import ShardedCorpusConfig

    return ShardedCorpusConfig(
        start_year=2016, end_year=2025, seed=0,
        total_papers=_SYNTHGEN_PAPERS, shard_size=_SYNTHGEN_SHARD,
    )


def _run_synthgen(repeats: int) -> list[dict]:
    """Columnar shard generation, papers/second (higher is better).

    Sequential (workers=1) on purpose: the ledger tracks the per-shard
    generation kernel itself, not pool dispatch — and a fixed workload
    must mean the same thing on 1-core CI and a 32-core laptop.
    """
    from repro.bibliometrics.shardgen import generate_columnar_corpus

    config = _synthgen_config()

    def generate() -> None:
        corpus = generate_columnar_corpus(config)
        assert len(corpus) == _SYNTHGEN_PAPERS

    seconds = _time_min(generate, repeats)
    return [make_entry(
        "synthgen", _SYNTHGEN_PAPERS / seconds,
        metric="papers_per_second", unit="papers/second", better="higher",
        context={"repeats": repeats, "papers": _SYNTHGEN_PAPERS,
                 "shard_size": _SYNTHGEN_SHARD, "workers": 1,
                 "best_seconds": seconds, "cpu_count": os.cpu_count()},
    )]


def _run_corpus_scan(repeats: int) -> list[dict]:
    """Per-shard methods_detect over a fixed corpus, papers/second."""
    from repro.bibliometrics.shardgen import (
        ShardedCorpusConfig,
        generate_columnar_corpus,
    )
    from repro.bibliometrics.shardscan import scan_corpus

    config = ShardedCorpusConfig(
        start_year=2016, end_year=2025, seed=0,
        total_papers=_SCAN_PAPERS, shard_size=_SCAN_PAPERS // 4,
    )
    corpus = generate_columnar_corpus(config)

    def scan() -> None:
        aggregates = scan_corpus(corpus)
        assert aggregates.n_papers == _SCAN_PAPERS

    seconds = _time_min(scan, repeats)
    return [make_entry(
        "corpus_scan", _SCAN_PAPERS / seconds,
        metric="papers_per_second", unit="papers/second", better="higher",
        context={"repeats": repeats, "papers": _SCAN_PAPERS,
                 "shards": corpus.n_shards, "best_seconds": seconds,
                 "cpu_count": os.cpu_count()},
    )]


def _run_experiment_scan(repeats: int) -> list[dict]:
    """The experiment suite's columnar analytics fold, papers/second.

    Measures exactly what E1/E2/E3/E12 pay on the columnar backend: one
    :func:`scan_corpus` pass (method classification, positionality
    detection, venue/topic/sector/author/citation rollups) over the
    stock fast-preset experiment corpus re-encoded as columnar shards.
    Generation and columnarization happen once outside the timed
    region — the series tracks the scan kernel, the path the routing
    layer puts every bibliometric experiment on.
    """
    from repro.bibliometrics.columnar import ColumnarCorpus
    from repro.bibliometrics.columnarize import columnarize_corpus
    from repro.bibliometrics.shardscan import scan_corpus
    from repro.bibliometrics.synthgen import generate_corpus
    from repro.experiments._corpus import corpus_config

    vocab, shards = columnarize_corpus(
        *generate_corpus(corpus_config(seed=0, fast=True)), 1_000
    )
    corpus = ColumnarCorpus(
        vocab, [shard.n_papers for shard in shards], shards.__getitem__
    )
    papers = len(corpus)

    def scan() -> None:
        aggregates = scan_corpus(corpus)
        assert aggregates.n_papers == papers

    seconds = _time_min(scan, repeats)
    return [make_entry(
        "experiment_scan", papers / seconds,
        metric="papers_per_second", unit="papers/second", better="higher",
        context={"repeats": repeats, "papers": papers,
                 "shards": corpus.n_shards, "preset": "fast",
                 "best_seconds": seconds, "cpu_count": os.cpu_count()},
    )]


#: Fixed workload for the scrub hot path: enough entries that the
#: per-entry walk/parse overhead shows, small bodies so the workload
#: builds in well under a second.
_SCRUB_ENTRIES = 48
_SCRUB_RECORDS_PER_ENTRY = 40


def _run_scrub(repeats: int) -> list[dict]:
    """End-to-end cache verification, entries/second (higher is better).

    Scrub throughput bounds how big a cache the self-healing story can
    cover on a maintenance cadence — a regression here quietly shrinks
    the data plane we can afford to verify.  The workload is a warm
    cache of fixed shape (entry count, records per entry, record size),
    scrubbed clean; classification cost on damaged entries is bounded
    by the same read path.
    """
    import tempfile

    from repro.integrity.scrub import scrub_cache
    from repro.io.artifacts import ArtifactCache

    with tempfile.TemporaryDirectory(prefix="bench-scrub-") as tmp:
        cache = ArtifactCache(tmp, version=1, sweep=False)
        for index in range(_SCRUB_ENTRIES):
            cache.put(
                "bench-entry",
                {"index": index},
                [
                    {"record": record, "payload": f"{index:04d}-{record:04d}" * 8}
                    for record in range(_SCRUB_RECORDS_PER_ENTRY)
                ],
            )

        def scrub() -> None:
            report = scrub_cache(tmp)
            assert report.entries == _SCRUB_ENTRIES, report.entries
            assert not report.damaged, report.damage_counts()

        seconds = _time_min(scrub, repeats, inner=3)
    return [make_entry(
        "scrub", _SCRUB_ENTRIES / seconds,
        metric="entries_per_second", unit="entries/second", better="higher",
        context={"repeats": repeats, "inner": 3, "entries": _SCRUB_ENTRIES,
                 "records_per_entry": _SCRUB_RECORDS_PER_ENTRY,
                 "best_seconds": seconds, "cpu_count": os.cpu_count()},
    )]


#: name -> runner(repeats) -> validated ledger entries
HOT_PATHS: dict[str, Callable[[int], list[dict]]] = {
    "scanner": _run_scanner,
    "tfidf": _run_tfidf,
    "suite": _run_suite,
    "serve_p95": _run_serve_p95,
    "synthgen": _run_synthgen,
    "corpus_scan": _run_corpus_scan,
    "experiment_scan": _run_experiment_scan,
    "scrub": _run_scrub,
}


def hot_path_names() -> list[str]:
    return sorted(HOT_PATHS)


def run_hot_path(name: str, *, repeats: int = 5) -> list[dict]:
    """Measure one named hot path; returns its ledger entries."""
    try:
        runner = HOT_PATHS[name]
    except KeyError:
        raise ValueError(
            f"unknown hot path {name!r}; known: {', '.join(hot_path_names())}"
        ) from None
    return runner(repeats)
