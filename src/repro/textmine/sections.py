"""Research-paper section splitting.

Positionality statements live in specific places — introductions, method
sections, explicit "Positionality" headers (paper, Section 4).  To detect
them we first need to carve a paper's plain text into titled sections.
The splitter recognizes numbered headers ("3 Ethnographic Methods",
"5.1 Include and document..."), markdown-style headers, and a small set
of conventional unnumbered headers (Abstract, Acknowledgments, ...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_HEADER_RE = re.compile(
    r"^(?:#{1,4}\s+)?"  # optional markdown hashes
    r"(?P<number>\d+(?:\.\d+)*)?\s*"
    r"(?P<title>[A-Z][^\n]{0,80})$"
)

_KNOWN_UNNUMBERED = frozenset(
    {
        "abstract",
        "acknowledgments",
        "acknowledgements",
        "appendix",
        "conclusion",
        "discussion",
        "introduction",
        "references",
        "related work",
        "methods",
        "methodology",
        "positionality",
        "positionality statement",
        "ethics",
        "ethics statement",
        "limitations",
    }
)


@dataclass(frozen=True, slots=True)
class Section:
    """A titled slice of a paper.

    Attributes:
        number: Dotted section number ("5.1") or "" for unnumbered headers.
        title: Header text without the number.
        body: Text between this header and the next.
    """

    number: str
    title: str
    body: str

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for "3", 2 for "5.1", 1 for unnumbered."""
        if not self.number:
            return 1
        return self.number.count(".") + 1


def _is_header(line: str) -> tuple[str, str] | None:
    """Return ``(number, title)`` when ``line`` looks like a section header."""
    stripped = line.strip()
    if not stripped or len(stripped) > 90:
        return None
    match = _HEADER_RE.match(stripped)
    if not match:
        return None
    number = match.group("number") or ""
    title = match.group("title").strip()
    if stripped.startswith("#"):
        return number, title
    if number:
        # Numbered header: short title, no terminal period, mostly title-case.
        if title.endswith((".", ",", ";", ":")):
            return None
        if len(title.split()) > 10:
            return None
        return number, title
    if title.lower().rstrip(".") in _KNOWN_UNNUMBERED:
        return "", title.rstrip(".")
    return None


def split_sections(text: str) -> list[Section]:
    """Split a paper's plain text into :class:`Section` objects.

    Text before the first recognized header is returned as a section with
    title "(front matter)".  The split is line-oriented: headers must sit
    on their own line, which matches how paper text extractions arrive.
    """
    lines = text.splitlines()
    sections: list[Section] = []
    current_number = ""
    current_title = "(front matter)"
    body_lines: list[str] = []

    def flush() -> None:
        body = "\n".join(body_lines).strip()
        if body or current_title != "(front matter)":
            sections.append(Section(current_number, current_title, body))

    for line in lines:
        header = _is_header(line)
        if header is not None:
            flush()
            current_number, current_title = header
            body_lines = []
        else:
            body_lines.append(line)
    flush()
    return sections


def find_section(sections: list[Section], title_substring: str) -> Section | None:
    """Return the first section whose title contains ``title_substring``.

    Matching is case-insensitive.  Returns None when absent.
    """
    needle = title_substring.lower()
    for section in sections:
        if needle in section.title.lower():
            return section
    return None
