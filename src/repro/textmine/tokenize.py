"""Sentence and word tokenization.

Rule-based tokenizers sufficient for research-paper prose and interview
transcripts.  The design goal is determinism and transparency rather than
linguistic perfection: every downstream consumer (method detection,
positionality extraction, TF-IDF) needs stable token boundaries across
runs, not state-of-the-art segmentation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

# Common abbreviations that end with a period but do not end a sentence.
_ABBREVIATIONS = frozenset(
    {
        "al",
        "dr",
        "e.g",
        "eds",
        "et",
        "etc",
        "fig",
        "i.e",
        "jr",
        "mr",
        "mrs",
        "ms",
        "no",
        "p",
        "pp",
        "prof",
        "sec",
        "st",
        "vs",
    }
)

_SENTENCE_BOUNDARY = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9\"'(\[])")
_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*")
_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*|[^\sA-Za-z0-9]")


@dataclass(frozen=True, slots=True)
class Token:
    """A token with its character span in the source text.

    Attributes:
        text: The token surface form, exactly as it appears in the source.
        start: Offset of the first character in the source string.
        end: Offset one past the last character (``source[start:end] == text``).
    """

    text: str
    start: int
    end: int

    def lower(self) -> str:
        """Return the lowercased surface form."""
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        """True when the token is alphanumeric (not punctuation)."""
        return bool(_WORD_RE.fullmatch(self.text))


def normalize(text: str) -> str:
    """Normalize whitespace and unify common unicode punctuation.

    Curly quotes become straight quotes, dashes become hyphens, and runs
    of whitespace collapse to single spaces.  Used before tokenization so
    corpora generated on different platforms compare equal.
    """
    replacements = {
        "‘": "'",
        "’": "'",
        "“": '"',
        "”": '"',
        "–": "-",
        "—": "-",
        " ": " ",
    }
    for src, dst in replacements.items():
        text = text.replace(src, dst)
    return re.sub(r"\s+", " ", text).strip()


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences.

    Splits on terminal punctuation followed by whitespace and an
    upper-case or numeric start, while refusing to split after common
    abbreviations ("et al.", "e.g.", "Fig.").

    >>> sentences("We met operators. They ran IXPs.")
    ['We met operators.', 'They ran IXPs.']
    """
    text = normalize(text)
    if not text:
        return []
    pieces: list[str] = []
    start = 0
    for match in _SENTENCE_BOUNDARY.finditer(text):
        candidate = text[start : match.start()]
        last_word = candidate.rsplit(None, 1)[-1] if candidate.split() else ""
        bare = last_word.rstrip(".").lower()
        if bare in _ABBREVIATIONS:
            continue
        pieces.append(candidate)
        start = match.end()
    tail = text[start:]
    if tail:
        pieces.append(tail)
    return pieces


def tokens(text: str) -> Iterator[Token]:
    """Yield :class:`Token` objects (words and punctuation) with spans."""
    for match in _TOKEN_RE.finditer(text):
        yield Token(match.group(), match.start(), match.end())


def word_tokens(text: str, lowercase: bool = True) -> list[str]:
    """Return the word tokens of ``text`` as plain strings.

    Punctuation is dropped; hyphenated and apostrophe-joined words stay
    single tokens ("community-run", "don't").

    >>> word_tokens("Mesh networks, community-run!")
    ['mesh', 'networks', 'community-run']
    """
    words = (m.group() for m in _WORD_RE.finditer(text))
    if lowercase:
        return [w.lower() for w in words]
    return list(words)


def ngrams(words: Iterable[str], n: int) -> list[tuple[str, ...]]:
    """Return the order-``n`` n-grams of a token sequence.

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seq = list(words)
    return [tuple(seq[i : i + n]) for i in range(len(seq) - n + 1)]
