"""Keyword-in-context (KWIC) concordance.

Ethnographic and bibliometric workflows both need to inspect how a term
is actually used: "peering" in a regulation interview means something
different from "peering" in a routing-table dump.  A KWIC concordance
lists every hit with a window of surrounding text, which is the standard
first step of qualitative corpus inspection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, slots=True)
class KwicHit:
    """One concordance line.

    Attributes:
        keyword: The matched surface form.
        left: Context preceding the match.
        right: Context following the match.
        start: Character offset of the match in the source document.
        doc_id: Index of the source document in the input sequence.
    """

    keyword: str
    left: str
    right: str
    start: int
    doc_id: int

    def line(self, width: int = 30) -> str:
        """Render the hit as a fixed-width concordance line."""
        left = self.left[-width:].rjust(width)
        right = self.right[:width].ljust(width)
        return f"{left} [{self.keyword}] {right}"


def kwic(
    documents: Iterable[str],
    keyword: str,
    window: int = 40,
    whole_word: bool = True,
    case_sensitive: bool = False,
) -> list[KwicHit]:
    """Find every occurrence of ``keyword`` with surrounding context.

    Args:
        documents: Source texts, indexed by position for ``doc_id``.
        keyword: Literal keyword (regex metacharacters are escaped).
        window: Number of context characters on each side.
        whole_word: Require word boundaries around the match.
        case_sensitive: Match case exactly when True.

    Returns:
        Hits in document order, then offset order.
    """
    if not keyword:
        raise ValueError("keyword must be non-empty")
    pattern = re.escape(keyword)
    if whole_word:
        pattern = rf"\b{pattern}\b"
    flags = 0 if case_sensitive else re.IGNORECASE
    compiled = re.compile(pattern, flags)
    hits: list[KwicHit] = []
    for doc_id, text in enumerate(documents):
        for match in compiled.finditer(text):
            hits.append(
                KwicHit(
                    keyword=match.group(),
                    left=text[max(0, match.start() - window) : match.start()],
                    right=text[match.end() : match.end() + window],
                    start=match.start(),
                    doc_id=doc_id,
                )
            )
    return hits
