"""English stopword list and filtering helpers.

A compact, hand-curated stopword list tuned for research-paper prose.
It deliberately keeps domain-bearing words ("network", "community",
"measurement") out of the list so that method-detection and TF-IDF runs
retain the vocabulary the analyses care about.
"""

from __future__ import annotations

from typing import Iterable

STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all also am an and any are aren't as
    at be because been before being below between both but by can cannot
    could couldn't did didn't do does doesn't doing don't down during each
    few for from further had hadn't has hasn't have haven't having he he'd
    he'll he's her here here's hers herself him himself his how how's i
    i'd i'll i'm i've if in into is isn't it it's its itself let's may me
    might more most mustn't my myself no nor not of off on once only or
    other ought our ours ourselves out over own same shan't she she'd
    she'll she's should shouldn't so some such than that that's the their
    theirs them themselves then there there's these they they'd they'll
    they're they've this those through to too under until up upon us very
    was wasn't we we'd we'll we're we've were weren't what what's when
    when's where where's which while who who's whom why why's will with
    within without won't would wouldn't you you'd you'll you're you've
    your yours yourself yourselves
    """.split()
)


def is_stopword(word: str) -> bool:
    """Return True when ``word`` (case-insensitive) is a stopword."""
    return word.lower() in STOPWORDS


def remove_stopwords(words: Iterable[str]) -> list[str]:
    """Filter stopwords out of a token sequence, preserving order.

    >>> remove_stopwords(["the", "community", "ran", "the", "network"])
    ['community', 'ran', 'network']
    """
    return [w for w in words if w.lower() not in STOPWORDS]
