"""From-scratch text-mining substrate.

The paper's bibliometric and positionality analyses need basic natural
language machinery: tokenization, stopword filtering, TF-IDF weighting,
keyword-in-context concordances, section splitting, and document
similarity.  No third-party NLP libraries are available in this
environment, so everything here is implemented directly on the standard
library (plus numpy for the vector math).

Public modules:

- :mod:`repro.textmine.tokenize` -- sentence and word tokenizers.
- :mod:`repro.textmine.stopwords` -- English stopword list and filters.
- :mod:`repro.textmine.tfidf` -- corpus vectorizer with TF-IDF weighting.
- :mod:`repro.textmine.kwic` -- keyword-in-context concordance.
- :mod:`repro.textmine.sections` -- research-paper section splitter.
- :mod:`repro.textmine.similarity` -- cosine/Jaccard document similarity.
"""

from repro.textmine.tokenize import (
    Token,
    sentences,
    tokens,
    word_tokens,
    ngrams,
    normalize,
)
from repro.textmine.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.textmine.tfidf import TfidfVectorizer, TermDocumentMatrix
from repro.textmine.kwic import KwicHit, kwic
from repro.textmine.sections import Section, split_sections, find_section
from repro.textmine.similarity import (
    cosine_similarity,
    jaccard_similarity,
    most_similar,
)
from repro.textmine.collocations import Collocation, collocations

__all__ = [
    "Token",
    "sentences",
    "tokens",
    "word_tokens",
    "ngrams",
    "normalize",
    "STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "TfidfVectorizer",
    "TermDocumentMatrix",
    "KwicHit",
    "kwic",
    "Section",
    "split_sections",
    "find_section",
    "cosine_similarity",
    "jaccard_similarity",
    "most_similar",
    "Collocation",
    "collocations",
]
