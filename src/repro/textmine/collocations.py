"""Collocation extraction (pointwise mutual information).

Qualitative analysts skim a corpus for the phrases that behave like
units — "community network", "route server", "mandatory peering" —
before building a codebook.  PMI over bigrams is the standard first
pass: it scores how much more often two words co-occur than chance.
The discounted variant here (Pantel & Lin 2002) shrinks the score of
rare accidental pairs — raw PMI's notorious failure mode is ranking a
once-seen pair of once-seen words above every real phrase.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.textmine.stopwords import remove_stopwords
from repro.textmine.tokenize import word_tokens


@dataclass(frozen=True, slots=True)
class Collocation:
    """One scored bigram.

    Attributes:
        bigram: The word pair.
        count: Occurrences in the corpus.
        pmi: Discounted pointwise mutual information (bits).
    """

    bigram: tuple[str, str]
    count: int
    pmi: float

    @property
    def text(self) -> str:
        """The bigram as a space-joined phrase."""
        return " ".join(self.bigram)


def collocations(
    documents: Iterable[str],
    min_count: int = 3,
    top_k: int = 20,
    drop_stopwords: bool = True,
) -> list[Collocation]:
    """Top PMI bigrams of a corpus.

    Args:
        documents: Source texts.
        min_count: Bigrams below this count are ignored (rare pairs
            have unreliable PMI even after smoothing).
        top_k: Number of collocations returned.
        drop_stopwords: Remove stopwords before pairing, so "of the"
            never wins.

    Returns:
        Collocations sorted by descending PMI, ties by count then
        alphabetically.

    The score is discounted PMI (Pantel & Lin):
    ``pmi = log2((c_xy * N) / (c_x * c_y)) * (c_xy / (c_xy + 1)) *
    (min(c_x, c_y) / (min(c_x, c_y) + 1))`` with ``N`` the token count —
    both factors approach 1 for frequent pairs and shrink hapax scores.
    """
    if min_count < 1:
        raise ValueError("min_count must be >= 1")
    unigrams: Counter = Counter()
    bigrams: Counter = Counter()
    for document in documents:
        tokens = word_tokens(document)
        if drop_stopwords:
            tokens = remove_stopwords(tokens)
        unigrams.update(tokens)
        bigrams.update(zip(tokens, tokens[1:]))
    total = sum(unigrams.values())
    if total == 0:
        return []
    scored = []
    for (left, right), count in bigrams.items():
        if count < min_count:
            continue
        raw = math.log2(
            (count * total) / (unigrams[left] * unigrams[right])
        )
        rarer = min(unigrams[left], unigrams[right])
        discount = (count / (count + 1.0)) * (rarer / (rarer + 1.0))
        scored.append(Collocation((left, right), count, raw * discount))
    scored.sort(key=lambda c: (-c.pmi, -c.count, c.bigram))
    return scored[:top_k]
