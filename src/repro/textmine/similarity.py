"""Document similarity measures.

Cosine similarity over TF-IDF vectors and Jaccard similarity over token
sets.  Used by the bibliometric deduplicator and by theme extraction in
the qualitative-coding package.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of the angle between vectors ``a`` and ``b``.

    Returns 0.0 when either vector is all-zero (rather than NaN), which
    is the conventional choice for sparse text vectors.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0.0:
        return 0.0
    return float(np.dot(a, b) / norm)


def jaccard_similarity(a: set[str] | Sequence[str], b: set[str] | Sequence[str]) -> float:
    """Jaccard index of two token collections (|A∩B| / |A∪B|).

    Two empty collections are defined to be identical (1.0).
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def most_similar(
    query: np.ndarray, matrix: np.ndarray, k: int = 5
) -> list[tuple[int, float]]:
    """Rows of ``matrix`` most cosine-similar to ``query``.

    Args:
        query: Vector of shape ``(n_terms,)``.
        matrix: Matrix of shape ``(n_docs, n_terms)``.
        k: Number of results.

    Returns:
        ``(row_index, similarity)`` pairs, best first; ties broken by
        ascending row index for determinism.
    """
    query = np.asarray(query, dtype=float)
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or query.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"incompatible shapes: query {query.shape}, matrix {matrix.shape}"
        )
    query_norm = np.linalg.norm(query)
    row_norms = np.linalg.norm(matrix, axis=1)
    denominator = query_norm * row_norms
    safe = np.where(denominator == 0, 1.0, denominator)
    scores = np.where(denominator == 0, 0.0, matrix @ query / safe)
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], i))[:k]
    return [(i, float(scores[i])) for i in order]
