"""Term-document matrices and TF-IDF weighting.

Implements the standard smoothed TF-IDF scheme used by scikit-learn
(``idf = ln((1 + N) / (1 + df)) + 1`` with L2-normalized rows) so results
are comparable to the wider ecosystem, without depending on it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.textmine.stopwords import remove_stopwords
from repro.textmine.tokenize import word_tokens

Tokenizer = Callable[[str], list[str]]


def _default_tokenizer(text: str) -> list[str]:
    return remove_stopwords(word_tokens(text))


@dataclass
class TermDocumentMatrix:
    """A dense term-document count matrix with a fixed vocabulary.

    Attributes:
        vocabulary: Term -> column index.
        counts: ``(n_docs, n_terms)`` integer count matrix.
    """

    vocabulary: dict[str, int]
    counts: np.ndarray

    @property
    def n_docs(self) -> int:
        """Number of documents (rows)."""
        return self.counts.shape[0]

    @property
    def n_terms(self) -> int:
        """Vocabulary size (columns)."""
        return self.counts.shape[1]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (0 if out of vocabulary)."""
        column = self.vocabulary.get(term)
        if column is None:
            return 0
        return int((self.counts[:, column] > 0).sum())

    def term_frequency(self, term: str, doc: int) -> int:
        """Raw count of ``term`` in document ``doc`` (0 if out of vocabulary)."""
        column = self.vocabulary.get(term)
        if column is None:
            return 0
        return int(self.counts[doc, column])

    def top_terms(self, doc: int, k: int = 10) -> list[tuple[str, int]]:
        """The ``k`` highest-count terms of document ``doc``."""
        inverse = {i: t for t, i in self.vocabulary.items()}
        row = self.counts[doc]
        order = np.argsort(row)[::-1][:k]
        return [(inverse[int(i)], int(row[i])) for i in order if row[i] > 0]


@dataclass
class TfidfVectorizer:
    """Fit a vocabulary on a corpus and transform documents to TF-IDF rows.

    Args:
        tokenizer: Callable mapping raw text to a token list.  Defaults to
            lowercased word tokens with stopwords removed.
        min_df: Drop terms appearing in fewer than this many documents.
        max_vocabulary: Keep at most this many terms, preferring high
            document frequency (ties broken alphabetically for determinism).

    Example:
        >>> v = TfidfVectorizer()
        >>> m = v.fit_transform(["mesh community network", "datacenter fabric"])
        >>> m.shape[0]
        2
    """

    tokenizer: Tokenizer = field(default=_default_tokenizer)
    min_df: int = 1
    max_vocabulary: int | None = None

    vocabulary_: dict[str, int] = field(default_factory=dict, init=False)
    idf_: np.ndarray = field(default_factory=lambda: np.empty(0), init=False)

    def build_matrix(self, documents: Sequence[str]) -> TermDocumentMatrix:
        """Tokenize ``documents`` and build a raw count matrix."""
        tokenized = [self.tokenizer(doc) for doc in documents]
        df_counter: Counter[str] = Counter()
        for doc_tokens in tokenized:
            df_counter.update(set(doc_tokens))
        terms = sorted(t for t, df in df_counter.items() if df >= self.min_df)
        if self.max_vocabulary is not None and len(terms) > self.max_vocabulary:
            terms = sorted(
                terms, key=lambda t: (-df_counter[t], t)
            )[: self.max_vocabulary]
            terms.sort()
        vocabulary = {term: i for i, term in enumerate(terms)}
        counts = np.zeros((len(documents), len(terms)), dtype=np.int64)
        for row, doc_tokens in enumerate(tokenized):
            for term, count in Counter(doc_tokens).items():
                column = vocabulary.get(term)
                if column is not None:
                    counts[row, column] = count
        return TermDocumentMatrix(vocabulary=vocabulary, counts=counts)

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``documents``."""
        matrix = self.build_matrix(documents)
        self.vocabulary_ = matrix.vocabulary
        n_docs = max(matrix.n_docs, 1)
        df = (matrix.counts > 0).sum(axis=0)
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Map ``documents`` into the fitted TF-IDF space (L2-normalized)."""
        if not self.vocabulary_:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        rows = np.zeros((len(documents), len(self.vocabulary_)))
        for row, doc in enumerate(documents):
            for term, count in Counter(self.tokenizer(doc)).items():
                column = self.vocabulary_.get(term)
                if column is not None:
                    rows[row, column] = count
        weighted = rows * self.idf_
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return weighted / norms

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Equivalent to ``fit(documents)`` followed by ``transform(documents)``."""
        return self.fit(documents).transform(documents)

    def feature_names(self) -> list[str]:
        """Vocabulary terms ordered by column index."""
        return sorted(self.vocabulary_, key=self.vocabulary_.__getitem__)
