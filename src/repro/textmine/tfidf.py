"""Term-document matrices and TF-IDF weighting.

Implements the standard smoothed TF-IDF scheme used by scikit-learn
(``idf = ln((1 + N) / (1 + df)) + 1`` with L2-normalized rows) so results
are comparable to the wider ecosystem, without depending on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.textmine.stopwords import remove_stopwords
from repro.textmine.tokenize import word_tokens

Tokenizer = Callable[[str], list[str]]


def _default_tokenizer(text: str) -> list[str]:
    return remove_stopwords(word_tokens(text))


@dataclass
class TermDocumentMatrix:
    """A dense term-document count matrix with a fixed vocabulary.

    Attributes:
        vocabulary: Term -> column index.
        counts: ``(n_docs, n_terms)`` integer count matrix.
    """

    vocabulary: dict[str, int]
    counts: np.ndarray

    @property
    def n_docs(self) -> int:
        """Number of documents (rows)."""
        return self.counts.shape[0]

    @property
    def n_terms(self) -> int:
        """Vocabulary size (columns)."""
        return self.counts.shape[1]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (0 if out of vocabulary)."""
        column = self.vocabulary.get(term)
        if column is None:
            return 0
        return int((self.counts[:, column] > 0).sum())

    def term_frequency(self, term: str, doc: int) -> int:
        """Raw count of ``term`` in document ``doc`` (0 if out of vocabulary)."""
        column = self.vocabulary.get(term)
        if column is None:
            return 0
        return int(self.counts[doc, column])

    def top_terms(self, doc: int, k: int = 10) -> list[tuple[str, int]]:
        """The ``k`` highest-count terms of document ``doc``."""
        inverse = {i: t for t, i in self.vocabulary.items()}
        row = self.counts[doc]
        order = np.argsort(row)[::-1][:k]
        return [(inverse[int(i)], int(row[i])) for i in order if row[i] > 0]


@dataclass
class TfidfVectorizer:
    """Fit a vocabulary on a corpus and transform documents to TF-IDF rows.

    Args:
        tokenizer: Callable mapping raw text to a token list.  Defaults to
            lowercased word tokens with stopwords removed.
        min_df: Drop terms appearing in fewer than this many documents.
        max_vocabulary: Keep at most this many terms, preferring high
            document frequency (ties broken alphabetically for determinism).

    Example:
        >>> v = TfidfVectorizer()
        >>> m = v.fit_transform(["mesh community network", "datacenter fabric"])
        >>> m.shape[0]
        2
    """

    tokenizer: Tokenizer = field(default=_default_tokenizer)
    min_df: int = 1
    max_vocabulary: int | None = None

    vocabulary_: dict[str, int] = field(default_factory=dict, init=False)
    idf_: np.ndarray = field(default_factory=lambda: np.empty(0), init=False)

    def _tokenize_flat(
        self, documents: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tokenize ``documents`` into one flat token array plus the
        row index of every token."""
        tokenized = [self.tokenizer(doc) for doc in documents]
        lengths = [len(tokens) for tokens in tokenized]
        flat = [token for tokens in tokenized for token in tokens]
        rows = np.repeat(np.arange(len(tokenized), dtype=np.int64), lengths)
        return np.asarray(flat, dtype=str), rows

    def build_matrix(self, documents: Sequence[str]) -> TermDocumentMatrix:
        """Tokenize ``documents`` and build a raw count matrix.

        Assembly is vectorized: the corpus is flattened to one token
        array, ``np.unique(return_inverse=True)`` yields the sorted term
        set and per-token term ids, document frequencies come from the
        unique ``(row, term)`` pairs, and the count matrix is one
        ``np.bincount`` over linearized ``row * n_terms + column``
        indices — no per-token Python dictionary loop.
        """
        n_docs = len(documents)
        flat, rows = self._tokenize_flat(documents)
        if flat.size == 0:
            return TermDocumentMatrix(
                vocabulary={}, counts=np.zeros((n_docs, 0), dtype=np.int64)
            )
        terms, inverse = np.unique(flat, return_inverse=True)
        # Document frequency: count each (row, term) pair once.
        pairs = np.unique(rows * np.int64(terms.size) + inverse)
        df = np.bincount(pairs % terms.size, minlength=terms.size)
        selected = np.flatnonzero(df >= self.min_df)
        if self.max_vocabulary is not None and selected.size > self.max_vocabulary:
            # Keep the highest-df terms, ties alphabetical (lexsort's
            # primary key is the last one), then restore column order.
            order = np.lexsort((terms[selected], -df[selected]))
            selected = np.sort(selected[order[: self.max_vocabulary]])
        vocabulary = {str(terms[i]): col for col, i in enumerate(selected)}
        column_of = np.full(terms.size, -1, dtype=np.int64)
        column_of[selected] = np.arange(selected.size, dtype=np.int64)
        columns = column_of[inverse]
        keep = columns >= 0
        linear = rows[keep] * np.int64(selected.size) + columns[keep]
        counts = np.bincount(linear, minlength=n_docs * selected.size)
        return TermDocumentMatrix(
            vocabulary=vocabulary,
            counts=counts.reshape(n_docs, selected.size).astype(np.int64),
        )

    def _fit_matrix(self, matrix: TermDocumentMatrix) -> None:
        self.vocabulary_ = matrix.vocabulary
        n_docs = max(matrix.n_docs, 1)
        df = (matrix.counts > 0).sum(axis=0)
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + df)) + 1.0

    def _weight(self, counts: np.ndarray) -> np.ndarray:
        """Apply IDF weights and L2-normalize rows of ``counts``."""
        weighted = counts * self.idf_
        norms = np.linalg.norm(weighted, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return weighted / norms

    def fit(self, documents: Sequence[str]) -> "TfidfVectorizer":
        """Learn the vocabulary and IDF weights from ``documents``."""
        self._fit_matrix(self.build_matrix(documents))
        return self

    def transform(self, documents: Sequence[str]) -> np.ndarray:
        """Map ``documents`` into the fitted TF-IDF space (L2-normalized).

        Counting is vectorized: tokens are mapped to columns with one
        ``np.searchsorted`` against the sorted vocabulary and counted
        with one ``np.bincount``; out-of-vocabulary tokens are dropped.
        """
        if not self.vocabulary_:
            raise RuntimeError("vectorizer is not fitted; call fit() first")
        n_terms = len(self.vocabulary_)
        terms_by_column = np.asarray(self.feature_names(), dtype=str)
        # fit() assigns columns alphabetically, but vocabulary_ is a
        # public field — sort defensively so searchsorted stays valid.
        alpha_order = np.argsort(terms_by_column)
        sorted_terms = terms_by_column[alpha_order]
        flat, rows = self._tokenize_flat(documents)
        counts = np.zeros((len(documents), n_terms))
        if flat.size:
            positions = np.minimum(
                np.searchsorted(sorted_terms, flat), n_terms - 1
            )
            keep = sorted_terms[positions] == flat
            columns = alpha_order[positions[keep]]
            linear = rows[keep] * np.int64(n_terms) + columns
            counts = np.bincount(
                linear, minlength=len(documents) * n_terms
            ).reshape(len(documents), n_terms).astype(float)
        return self._weight(counts)

    def fit_transform(self, documents: Sequence[str]) -> np.ndarray:
        """Equivalent to ``fit(documents)`` followed by ``transform(documents)``
        but tokenizes and counts the corpus only once."""
        matrix = self.build_matrix(documents)
        self._fit_matrix(matrix)
        return self._weight(matrix.counts)

    def feature_names(self) -> list[str]:
        """Vocabulary terms ordered by column index."""
        return sorted(self.vocabulary_, key=self.vocabulary_.__getitem__)
