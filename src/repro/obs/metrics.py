"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named instruments, snapshots to a
plain dict, and merges snapshots associatively — so per-shard (or
per-process) registries can be combined in any grouping and produce the
same totals.  Rendering goes through :mod:`repro.io.tables`, the same
renderer every other report in the toolkit uses, plus
:func:`render_prometheus` for the ``/metrics`` text exposition.

Instrument names are opaque strings to the registry.  By convention a
name may carry Prometheus-style labels — ``serve.request_seconds
{route="/v1/result/{id}",status="200"}`` — built with :func:`labeled`;
the JSON snapshot keeps the full key, and :func:`render_prometheus`
splits it back into a metric family plus a label set.

The process-wide default is a :class:`NullMetrics` whose every method
is a no-op, so instrumented hot paths (``read_jsonl`` row counting, the
suite runner's retry accounting) cost one lookup and one call until a
real registry is installed with :func:`use_metrics`.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.io.tables import render_table

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "current_metrics",
    "labeled",
    "merge_snapshots",
    "parse_metric_key",
    "percentile",
    "render_prometheus",
    "sanitize_metric_name",
    "set_metrics",
    "use_metrics",
]

#: Default histogram bucket upper edges, in seconds — spans the
#: microbenchmark-to-suite range the experiment runtime produces.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A named last-written value (None until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with ``value <= edge`` bucket semantics.

    A value lands in the first bucket whose upper edge is >= the value
    (so a value exactly on an edge belongs to that edge's bucket), or
    in the overflow bucket past the last edge.  ``counts`` therefore
    has ``len(buckets) + 1`` cells.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        edges = tuple(buckets)
        if not edges:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket edge")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} bucket edges must be strictly increasing: "
                f"{edges}"
            )
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Estimate the ``fraction``-quantile from the bucket counts.

        Standard fixed-bucket estimator (what a Prometheus
        ``histogram_quantile`` does): find the bucket the target rank
        falls in, then interpolate linearly inside it, treating the
        first bucket's lower edge as 0.0.  Observations past the last
        edge cannot be located inside the overflow bucket, so the last
        edge is returned for ranks landing there — a deliberate
        underestimate rather than a guess.  Returns 0.0 when empty.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        cumulative = 0
        for index, cell in enumerate(self.counts):
            previous = cumulative
            cumulative += cell
            if cumulative >= rank and cell:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lo = self.buckets[index - 1] if index else 0.0
                hi = self.buckets[index]
                return lo + (hi - lo) * (max(0.0, rank - previous) / cell)
        return self.buckets[-1]


class MetricsRegistry:
    """Named instruments with a snapshot/merge API and two renderers.

    Thread-safe for the suite runner's worker threads: instrument
    creation is locked, and instrument updates are single bytecode-level
    mutations on plain ints/floats.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created on first use.

        The bucket edges are fixed at creation; a later caller passing
        different edges gets the original instrument unchanged.
        """
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, buckets)
            return self._histograms[name]

    # -- one-shot conveniences (the instrumentation-site API) ----------

    def count(self, name: str, amount: int = 1) -> None:
        """Shorthand: increment counter ``name``."""
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Shorthand: set gauge ``name``."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Shorthand: record ``value`` into histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable copy of every instrument."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.sum,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram cells add; gauges take the incoming
        value when it is set (last-write-wins, which is associative).
        Histograms with the same name must share bucket edges.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket edges differ "
                    f"({list(histogram.buckets)} vs {list(data['buckets'])})"
                )
            for i, cell in enumerate(data["counts"]):
                histogram.counts[i] += cell
            histogram.count += data["count"]
            histogram.sum += data["sum"]

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        """All instruments as aligned plain-text tables."""
        snapshot = self.snapshot()
        parts = []
        if snapshot["counters"]:
            parts.append(render_table(
                ["counter", "value"],
                sorted(snapshot["counters"].items()),
                title="counters",
            ))
        if snapshot["gauges"]:
            parts.append(render_table(
                ["gauge", "value"],
                sorted(snapshot["gauges"].items()),
                title="gauges",
            ))
        if snapshot["histograms"]:
            rows = [
                [name, data["count"], data["sum"],
                 data["sum"] / data["count"] if data["count"] else 0.0]
                for name, data in sorted(snapshot["histograms"].items())
            ]
            parts.append(render_table(
                ["histogram", "count", "sum", "mean"], rows, title="histograms",
            ))
        if not parts:
            return "(no metrics recorded)"
        return "\n\n".join(parts)

    def render_json(self) -> str:
        """The snapshot as a stable, indented JSON document."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def write(self, path) -> None:
        """Write :meth:`render_json` to ``path`` (parents created)."""
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_json() + "\n", encoding="utf-8")


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshot dicts left-to-right; associative by construction."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` (nearest-rank; 0 if empty).

    The one quantile definition the toolkit uses: the serve client's
    load reports, the benchmark harness, and ``repro obs report`` all
    call this, so a "p95" means the same thing everywhere.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


# ---------------------------------------------------------------------------
# Prometheus text exposition

#: Characters legal in an exposition metric name (labels have no colon).
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
#: One ``key="value"`` pair inside a labeled instrument key.
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def labeled(name: str, **labels: object) -> str:
    """An instrument key carrying Prometheus-style labels.

    ``labeled("serve.request_seconds", route="/v1/corpus", status=200)``
    → ``serve.request_seconds{route="/v1/corpus",status="200"}``.  The
    registry treats the whole string as an opaque key (so snapshot and
    merge just work); :func:`render_prometheus` splits it back apart.
    Labels are sorted so the same label set always produces the same
    key.
    """
    pairs = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{pairs}}}"


def parse_metric_key(key: str) -> tuple[str, list[tuple[str, str]]]:
    """Split an instrument key into (base name, label pairs).

    The inverse of :func:`labeled` (label values stay escaped, ready to
    re-emit); a key without a label block comes back with no labels.
    """
    if key.endswith("}") and "{" in key:
        base, _, rest = key.partition("{")
        return base, _LABEL_PAIR.findall(rest[:-1])
    return key, []


def sanitize_metric_name(name: str) -> str:
    """Map an instrument name onto the exposition grammar.

    Dots (and anything else outside ``[a-zA-Z0-9_:]``) become
    underscores — ``serve.request`` → ``serve_request`` — and a name
    that would start with a digit gains a leading underscore.
    """
    cleaned = _NAME_OK.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_block(pairs: list[tuple[str, str]], extra: str | None = None) -> str:
    rendered = [
        f'{_LABEL_NAME_OK.sub("_", key)}="{value}"' for key, value in pairs
    ]
    if extra is not None:
        rendered.append(extra)
    return "{" + ",".join(rendered) + "}" if rendered else ""


def render_prometheus(snapshot: dict) -> str:
    """A :meth:`MetricsRegistry.snapshot` as Prometheus text exposition.

    Emits one ``# TYPE`` line per metric family (labeled variants of
    the same base name share it), sanitized names, and histograms in
    the exposition's cumulative form: ``_bucket`` series with ``le``
    upper-bound labels (including the ``+Inf`` overflow), plus ``_sum``
    and ``_count``.  Gauges that were never set are omitted — "no
    value" has no exposition representation.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(family: str, kind: str) -> None:
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        base, pairs = parse_metric_key(key)
        family = sanitize_metric_name(base)
        emit_type(family, "counter")
        lines.append(f"{family}{_label_block(pairs)} {_format_value(value)}")

    for key, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        base, pairs = parse_metric_key(key)
        family = sanitize_metric_name(base)
        emit_type(family, "gauge")
        lines.append(f"{family}{_label_block(pairs)} {_format_value(value)}")

    for key, data in snapshot.get("histograms", {}).items():
        base, pairs = parse_metric_key(key)
        family = sanitize_metric_name(base)
        emit_type(family, "histogram")
        cumulative = 0
        for edge, cell in zip(data["buckets"], data["counts"]):
            cumulative += cell
            block = _label_block(pairs, f'le="{edge:g}"')
            lines.append(f"{family}_bucket{block} {cumulative}")
        block = _label_block(pairs, 'le="+Inf"')
        lines.append(f"{family}_bucket{block} {data['count']}")
        labels = _label_block(pairs)
        lines.append(f"{family}_sum{labels} {_format_value(data['sum'])}")
        lines.append(f"{family}_count{labels} {data['count']}")

    return "\n".join(lines) + "\n" if lines else ""


class NullMetrics:
    """The do-nothing default registry.

    Instrumented call sites hit these no-ops until a real registry is
    installed, so always-on counting in hot paths stays free.
    """

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        """Discard ``snapshot`` — worker shards merge into nothing when
        metrics were never requested."""


#: The process-wide registry instrumented call sites consult.
_metrics: MetricsRegistry | NullMetrics = NullMetrics()


def current_metrics() -> MetricsRegistry | NullMetrics:
    """The active process-wide registry (:class:`NullMetrics` by default)."""
    return _metrics


def set_metrics(
    metrics: MetricsRegistry | NullMetrics | None,
) -> MetricsRegistry | NullMetrics:
    """Install ``metrics`` globally (None restores the null registry).

    Returns the previously installed registry; prefer
    :func:`use_metrics`, which restores it automatically.
    """
    global _metrics
    previous = _metrics
    _metrics = metrics if metrics is not None else NullMetrics()
    return previous


@contextmanager
def use_metrics(
    metrics: MetricsRegistry | NullMetrics,
) -> Iterator[MetricsRegistry | NullMetrics]:
    """Install ``metrics`` for the duration of the ``with`` block."""
    previous = set_metrics(metrics)
    try:
        yield metrics
    finally:
        set_metrics(previous)
