"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named instruments, snapshots to a
plain dict, and merges snapshots associatively — so per-shard (or
per-process) registries can be combined in any grouping and produce the
same totals.  Rendering goes through :mod:`repro.io.tables`, the same
renderer every other report in the toolkit uses.

The process-wide default is a :class:`NullMetrics` whose every method
is a no-op, so instrumented hot paths (``read_jsonl`` row counting, the
suite runner's retry accounting) cost one lookup and one call until a
real registry is installed with :func:`use_metrics`.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.io.tables import render_table

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "current_metrics",
    "merge_snapshots",
    "set_metrics",
    "use_metrics",
]

#: Default histogram bucket upper edges, in seconds — spans the
#: microbenchmark-to-suite range the experiment runtime produces.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A named last-written value (None until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram with ``value <= edge`` bucket semantics.

    A value lands in the first bucket whose upper edge is >= the value
    (so a value exactly on an edge belongs to that edge's bucket), or
    in the overflow bucket past the last edge.  ``counts`` therefore
    has ``len(buckets) + 1`` cells.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        edges = tuple(buckets)
        if not edges:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket edge")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} bucket edges must be strictly increasing: "
                f"{edges}"
            )
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments with a snapshot/merge API and two renderers.

    Thread-safe for the suite runner's worker threads: instrument
    creation is locked, and instrument updates are single bytecode-level
    mutations on plain ints/floats.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created on first use.

        The bucket edges are fixed at creation; a later caller passing
        different edges gets the original instrument unchanged.
        """
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, buckets)
            return self._histograms[name]

    # -- one-shot conveniences (the instrumentation-site API) ----------

    def count(self, name: str, amount: int = 1) -> None:
        """Shorthand: increment counter ``name``."""
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Shorthand: set gauge ``name``."""
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Shorthand: record ``value`` into histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable copy of every instrument."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.sum,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram cells add; gauges take the incoming
        value when it is set (last-write-wins, which is associative).
        Histograms with the same name must share bucket edges.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["buckets"])
            if list(histogram.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket edges differ "
                    f"({list(histogram.buckets)} vs {list(data['buckets'])})"
                )
            for i, cell in enumerate(data["counts"]):
                histogram.counts[i] += cell
            histogram.count += data["count"]
            histogram.sum += data["sum"]

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        """All instruments as aligned plain-text tables."""
        snapshot = self.snapshot()
        parts = []
        if snapshot["counters"]:
            parts.append(render_table(
                ["counter", "value"],
                sorted(snapshot["counters"].items()),
                title="counters",
            ))
        if snapshot["gauges"]:
            parts.append(render_table(
                ["gauge", "value"],
                sorted(snapshot["gauges"].items()),
                title="gauges",
            ))
        if snapshot["histograms"]:
            rows = [
                [name, data["count"], data["sum"],
                 data["sum"] / data["count"] if data["count"] else 0.0]
                for name, data in sorted(snapshot["histograms"].items())
            ]
            parts.append(render_table(
                ["histogram", "count", "sum", "mean"], rows, title="histograms",
            ))
        if not parts:
            return "(no metrics recorded)"
        return "\n\n".join(parts)

    def render_json(self) -> str:
        """The snapshot as a stable, indented JSON document."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def write(self, path) -> None:
        """Write :meth:`render_json` to ``path`` (parents created)."""
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_json() + "\n", encoding="utf-8")


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshot dicts left-to-right; associative by construction."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


class NullMetrics:
    """The do-nothing default registry.

    Instrumented call sites hit these no-ops until a real registry is
    installed, so always-on counting in hot paths stays free.
    """

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        """Discard ``snapshot`` — worker shards merge into nothing when
        metrics were never requested."""


#: The process-wide registry instrumented call sites consult.
_metrics: MetricsRegistry | NullMetrics = NullMetrics()


def current_metrics() -> MetricsRegistry | NullMetrics:
    """The active process-wide registry (:class:`NullMetrics` by default)."""
    return _metrics


def set_metrics(
    metrics: MetricsRegistry | NullMetrics | None,
) -> MetricsRegistry | NullMetrics:
    """Install ``metrics`` globally (None restores the null registry).

    Returns the previously installed registry; prefer
    :func:`use_metrics`, which restores it automatically.
    """
    global _metrics
    previous = _metrics
    _metrics = metrics if metrics is not None else NullMetrics()
    return previous


@contextmanager
def use_metrics(
    metrics: MetricsRegistry | NullMetrics,
) -> Iterator[MetricsRegistry | NullMetrics]:
    """Install ``metrics`` for the duration of the ``with`` block."""
    previous = set_metrics(metrics)
    try:
        yield metrics
    finally:
        set_metrics(previous)
