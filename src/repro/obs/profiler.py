"""Opt-in ``cProfile`` capture for experiment runs.

The suite runner calls :func:`profile_call` around each experiment when
``--profile-out DIR`` is given, dumping one ``pstats`` file per
experiment attempt.  Inspect a dump with the stdlib::

    python -m pstats out/E7.pstats
    % sort cumtime
    % stats 20

Profiling is per-call and opt-in: nothing in the toolkit imports
``cProfile`` until a profile path is requested.
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, TypeVar

__all__ = ["profile_call", "profile_to"]

T = TypeVar("T")


@contextmanager
def profile_to(path: str | Path) -> Iterator[cProfile.Profile]:
    """Profile the ``with`` block, dumping stats to ``path`` on exit.

    The dump happens even when the block raises, so a crashing
    experiment still leaves its profile behind.  Parent directories are
    created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(path))


def profile_call(fn: Callable[..., T], path: str | Path, *args, **kwargs) -> T:
    """Run ``fn(*args, **kwargs)`` under cProfile; dump stats to ``path``."""
    with profile_to(path):
        return fn(*args, **kwargs)
