"""Hierarchical tracing with zero-cost opt-out.

A :class:`Tracer` records :class:`Span` trees — named, monotonic-clocked
intervals with attributes and error capture — and exports them as JSONL
through the same atomic-write path every other dataset uses
(:func:`repro.io.jsonl.write_jsonl`).  The default process-wide tracer
is a :class:`NullTracer` whose ``span()`` returns one shared, inert
context manager, so instrumented call sites cost a single attribute
lookup and allocate nothing until someone opts in::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("e07.gravity_fit", seed=0) as span:
            fit()
            span.set_attribute("iterations", 12)
    tracer.export("trace.jsonl")

Span ids are sequential integers and parentage comes from a stack, so a
seeded run produces the same span structure every time; only the
timings vary (and those are injectable for tests via ``clock=``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]


class Span:
    """One named, timed interval in a trace tree.

    Created by :meth:`Tracer.span`; used as a context manager.  On exit
    the span captures its end time and, when the block raised, the
    exception type and message (``status="error"``) — the exception
    still propagates.
    """

    __slots__ = (
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "error",
        "error_type",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.start: float | None = None
        self.end: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.error_type: str | None = None

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attributes[key] = value

    def to_record(self) -> dict:
        """The JSONL representation of a finished span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "error_type": self.error_type,
            "attributes": self.attributes,
        }

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.status = "error"
            self.error = str(exc)
            self.error_type = exc_type.__name__
        self._tracer._close(self)
        return False


class Tracer:
    """Collects spans into a tree; exports them as JSONL.

    Args:
        clock: Monotonic clock used for span timings (injectable so
            tests can assert exact durations with a fake clock).

    Attributes:
        enabled: True — instrumentation sites may check this to skip
            expensive attribute computation.
        finished: Closed spans, in completion order.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._stack: list[Span] = []
        self._next_id = 1
        self.finished: list[Span] = []

    def span(self, name: str, **attributes) -> Span:
        """A new span context manager; nesting follows ``with`` blocks.

        Parentage crosses threads: the suite runner's deadline worker
        opens its spans under whatever span the coordinating thread has
        open, which is exactly the tree a trace reader wants.
        """
        return Span(self, name, attributes)

    def _open(self, span: Span) -> None:
        span.start = self._clock()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            if self._stack:
                span.parent_id = self._stack[-1].span_id
            self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        with self._lock:
            # Truncate at this span: children abandoned by a hung or
            # killed worker thread must not become parents of later,
            # unrelated spans.
            try:
                index = self._stack.index(span)
            except ValueError:
                pass  # already evicted by an ancestor's close
            else:
                del self._stack[index:]
            self.finished.append(span)

    def adopt(self, records: list[dict], parent_id: int | None = None) -> int:
        """Graft exported span records from another tracer into this one.

        The suite runner uses this to re-parent a worker process's span
        shard under the parent's suite span: every record gets a fresh
        id from this tracer's sequence, parent links *within* the shard
        are remapped to the new ids, and the shard's roots are attached
        to ``parent_id``.  Records are adopted in order, so adopting the
        same shards in the same order yields the same ids.

        Returns the number of spans adopted.
        """
        with self._lock:
            id_map: dict[int, int] = {}
            for record in records:
                id_map[record["span_id"]] = self._next_id
                self._next_id += 1
        for record in records:
            span = Span(self, record["name"], dict(record["attributes"]))
            span.span_id = id_map[record["span_id"]]
            old_parent = record["parent_id"]
            span.parent_id = id_map.get(old_parent, parent_id)
            span.start = record["start"]
            span.end = record["end"]
            span.status = record["status"]
            span.error = record["error"]
            span.error_type = record["error_type"]
            with self._lock:
                self.finished.append(span)
        return len(records)

    def export(self, path) -> int:
        """Write finished spans to ``path`` as JSONL; returns the count.

        Uses the atomic :func:`repro.io.jsonl.write_jsonl` path, so a
        killed process never leaves a torn trace.
        """
        # Imported lazily: repro.io.jsonl counts its rows through
        # repro.obs.metrics, and a module-level import here would close
        # that cycle.
        from repro.io.jsonl import write_jsonl

        return write_jsonl(path, (span.to_record() for span in self.finished))


class _NullSpan:
    """The shared, inert span the :class:`NullTracer` hands out."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing default tracer.

    ``span()`` returns one process-wide inert object, so tracing that
    nobody asked for costs an attribute lookup and a method call —
    no allocation, no lock, no clock read.
    """

    enabled = False

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, records: list[dict], parent_id: int | None = None) -> int:
        """Discard ``records`` — nothing collects spans nobody asked for."""
        return 0


#: The process-wide tracer instrumented call sites consult.
_tracer: Tracer | NullTracer = NullTracer()


def current_tracer() -> Tracer | NullTracer:
    """The active process-wide tracer (a :class:`NullTracer` by default)."""
    return _tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` globally (None restores the null tracer).

    Returns the previously installed tracer so callers can restore it;
    prefer :func:`use_tracer` which does that automatically.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NullTracer()
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` for the duration of the ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
