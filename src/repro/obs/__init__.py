"""Observability: tracing, metrics, profiling, and trace reports.

The perf spine of the toolkit — every future "make it faster" claim is
measured through this package:

- :mod:`repro.obs.tracing` -- hierarchical :class:`Span` trees with
  monotonic timings, attributes, and error capture; JSONL export via
  the atomic-write path.  Off by default through a shared
  :class:`NullTracer` (one attribute lookup, zero allocation).
- :mod:`repro.obs.metrics` -- named counters, gauges, and fixed-bucket
  histograms with an associative snapshot/merge API and plain-text /
  JSON renderers.  Off by default through :class:`NullMetrics`.
- :mod:`repro.obs.profiler` -- opt-in per-experiment ``cProfile``
  capture (``--profile-out``).
- :mod:`repro.obs.report` -- the ``repro obs report`` backend: stage
  time breakdowns, the critical path, slowest stages, and retry
  histograms from an exported trace.

Instrumented call sites (the suite runner, the experiment registry's
stage decorator, JSONL I/O) consult :func:`current_tracer` /
:func:`current_metrics`; install real collectors with
:func:`use_tracer` / :func:`use_metrics` or the CLI's ``--trace-out`` /
``--metrics-out`` flags.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    current_metrics,
    labeled,
    merge_snapshots,
    percentile,
    render_prometheus,
    sanitize_metric_name,
    set_metrics,
    use_metrics,
)
from repro.obs.profiler import profile_call, profile_to
from repro.obs.report import build_report, load_trace, render_report
from repro.obs.tracing import (
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "build_report",
    "current_metrics",
    "current_tracer",
    "labeled",
    "load_trace",
    "merge_snapshots",
    "percentile",
    "profile_call",
    "profile_to",
    "render_prometheus",
    "render_report",
    "sanitize_metric_name",
    "set_metrics",
    "set_tracer",
    "use_metrics",
    "use_tracer",
]
