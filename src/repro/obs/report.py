"""Trace-file analysis: the ``repro obs report`` backend.

Takes the JSONL a :class:`repro.obs.tracing.Tracer` exported and turns
it into the answers a perf investigation starts from:

- per-experiment stage-time breakdown (total, in-experiment run time,
  runner overhead, share of the suite wall clock);
- the critical path (the longest root-to-leaf chain of spans);
- the slowest individual stage spans;
- a retry histogram (attempts consumed per experiment);
- a worker-crash breakdown (which experiments killed workers, by exit
  signal and supervisor verdict) when the trace contains the parallel
  supervisor's ``worker_crash``/``quarantine`` spans;
- a serve section (top routes, status mix, p50/p95/p99 latency per
  route, coalescing and breaker/deadline outcome counts) when the
  trace contains a server's ``serve.request`` spans;
- an integrity section (entries scrubbed, damage found, repair
  outcomes, bytes verified) when the trace contains the scrubber's
  ``integrity.scrub``/``integrity.repair`` spans.

All tables render through :mod:`repro.io.tables` — the same renderer
the registry listing and the benchmarks use.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DataFormatError
from repro.io.jsonl import read_jsonl
from repro.io.tables import render_kv, render_table
from repro.obs.metrics import percentile

__all__ = ["build_report", "load_trace", "render_report"]

#: Keys every exported span record must carry.
_REQUIRED_KEYS = ("span_id", "name", "start", "end", "duration", "status")


def load_trace(path: str | Path) -> list[dict]:
    """Read and validate a trace file; returns its span records.

    Raises :class:`repro.errors.DataFormatError` when a record is
    missing the span fields, so ``repro obs report`` (and the
    ``obs-smoke`` CI target) fails loudly on a malformed trace instead
    of rendering an empty report.
    """
    spans = list(read_jsonl(path))
    if not spans:
        raise DataFormatError(f"{path}: trace file contains no spans", stage="read")
    for index, span in enumerate(spans):
        missing = [key for key in _REQUIRED_KEYS if key not in span]
        if missing:
            raise DataFormatError(
                f"{path}: span {index} is missing {missing}; not a trace file?",
                stage="read",
            )
    return spans


def _children(spans: list[dict]) -> dict[int | None, list[dict]]:
    by_parent: dict[int | None, list[dict]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    return by_parent


def _critical_path(spans: list[dict]) -> list[dict]:
    """The chain of longest spans from the longest root down to a leaf."""
    by_parent = _children(spans)
    roots = by_parent.get(None, [])
    if not roots:
        return []
    path = []
    span = max(roots, key=lambda s: s["duration"])
    while span is not None:
        path.append(span)
        children = by_parent.get(span["span_id"], [])
        span = max(children, key=lambda s: s["duration"]) if children else None
    return path


def build_report(spans: list[dict], top: int = 5) -> dict:
    """Aggregate span records into the report's machine-readable form."""
    experiment_spans = [s for s in spans if s["name"] == "experiment"]
    stage_spans = [s for s in spans if s.get("attributes", {}).get("stage")]
    suite_spans = [s for s in spans if s["name"] == "suite"]
    suite_duration = (
        sum(s["duration"] for s in suite_spans)
        if suite_spans
        else sum(s["duration"] for s in experiment_spans)
    )

    experiments = []
    for span in experiment_spans:
        attrs = span.get("attributes", {})
        experiment_id = attrs.get("experiment_id", "?")
        run_time = sum(
            s["duration"]
            for s in stage_spans
            if s.get("attributes", {}).get("experiment_id") == experiment_id
        )
        experiments.append(
            {
                "experiment_id": experiment_id,
                "status": attrs.get("status", span["status"]),
                "attempts": attrs.get("attempts", 1),
                "duration": span["duration"],
                "run_time": run_time,
                "overhead": max(0.0, span["duration"] - run_time),
                "share": (
                    span["duration"] / suite_duration if suite_duration else 0.0
                ),
            }
        )
    experiments.sort(key=lambda e: e["duration"], reverse=True)

    slowest_stages = [
        {
            "name": s["name"],
            "experiment_id": s.get("attributes", {}).get("experiment_id", "?"),
            "duration": s["duration"],
            "status": s["status"],
        }
        for s in sorted(stage_spans, key=lambda s: s["duration"], reverse=True)
    ][:top]

    retry_histogram: dict[int, int] = {}
    for experiment in experiments:
        attempts = int(experiment["attempts"])
        retry_histogram[attempts] = retry_histogram.get(attempts, 0) + 1

    worker_crashes = _crash_breakdown(spans)
    serve = _serve_breakdown(spans, top=top)
    integrity = _integrity_breakdown(spans)

    critical_path = [
        {
            "name": s["name"],
            "experiment_id": s.get("attributes", {}).get("experiment_id"),
            "duration": s["duration"],
        }
        for s in _critical_path(spans)
    ]

    return {
        "suite_duration": suite_duration,
        "span_count": len(spans),
        "experiments": experiments,
        "slowest_stages": slowest_stages,
        "retry_histogram": retry_histogram,
        "critical_path": critical_path,
        "worker_crashes": worker_crashes,
        "serve": serve,
        "integrity": integrity,
    }


def _crash_breakdown(spans: list[dict]) -> dict:
    """Summarize the supervisor's crash evidence from a trace.

    Groups ``worker_crash`` spans by (experiment, cause) — the cause is
    the exit signal when the worker died by one, the raw exit code
    otherwise — and lists quarantined experiments with their verdicts.
    Empty lists when the run had no crashes (or ran sequentially).
    """
    causes: dict[tuple[str, str], int] = {}
    for span in spans:
        if span["name"] != "worker_crash":
            continue
        attrs = span.get("attributes", {})
        cause = attrs.get("exit_signal")
        if cause is None:
            exit_code = attrs.get("exit_code")
            cause = f"exit {exit_code}" if exit_code is not None else "unknown"
        key = (attrs.get("experiment_id", "?"), cause)
        causes[key] = causes.get(key, 0) + 1
    quarantined = [
        {
            "experiment_id": attrs.get("experiment_id", "?"),
            "exit_signal": attrs.get("exit_signal"),
            "exit_code": attrs.get("exit_code"),
            "crashes": attrs.get("crashes", 0),
        }
        for span in spans
        if span["name"] == "quarantine"
        for attrs in (span.get("attributes", {}),)
    ]
    return {
        "events": sum(causes.values()),
        "causes": [
            {"experiment_id": experiment_id, "cause": cause, "crashes": count}
            for (experiment_id, cause), count in sorted(causes.items())
        ],
        "quarantined": sorted(
            quarantined, key=lambda entry: entry["experiment_id"]
        ),
        "pool_rebuilds": sum(s["name"] == "pool_rebuild" for s in spans),
        "degraded": any(s["name"] == "degrade" for s in spans),
    }


def _serve_breakdown(spans: list[dict], top: int = 5) -> dict:
    """Summarize a server trace's ``serve.request`` spans.

    Per-route request counts, status mix, and latency quantiles, plus
    the degradation-ladder evidence an incident review asks for first:
    how many requests coalesced onto an in-flight compute, and how many
    ended in each failure outcome (deadline, breaker_open, ...).
    Everything is empty when the trace has no serve spans, and the
    renderer skips the section entirely.
    """
    requests = [s for s in spans if s["name"] == "serve.request"]
    routes: dict[str, dict] = {}
    statuses: dict[str, int] = {}
    outcomes: dict[str, int] = {}
    sources: dict[str, int] = {}
    coalesced = 0
    for span in requests:
        attrs = span.get("attributes", {})
        route = attrs.get("route", "(unmatched)")
        entry = routes.setdefault(
            route, {"requests": 0, "durations": [], "statuses": {}}
        )
        entry["requests"] += 1
        entry["durations"].append(span["duration"])
        status = str(attrs.get("status", "?"))
        entry["statuses"][status] = entry["statuses"].get(status, 0) + 1
        statuses[status] = statuses.get(status, 0) + 1
        outcome = attrs.get("outcome")
        if outcome:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        source = attrs.get("source")
        if source:
            sources[source] = sources.get(source, 0) + 1
        if attrs.get("coalesced"):
            coalesced += 1
    route_rows = [
        {
            "route": route,
            "requests": entry["requests"],
            "statuses": dict(sorted(entry["statuses"].items())),
            "p50": percentile(entry["durations"], 0.50),
            "p95": percentile(entry["durations"], 0.95),
            "p99": percentile(entry["durations"], 0.99),
        }
        for route, entry in routes.items()
    ]
    route_rows.sort(key=lambda row: row["requests"], reverse=True)
    return {
        "requests": len(requests),
        "routes": route_rows[:top],
        "statuses": dict(sorted(statuses.items())),
        "outcomes": dict(sorted(outcomes.items())),
        "sources": dict(sorted(sources.items())),
        "coalesced": coalesced,
    }


def _integrity_breakdown(spans: list[dict]) -> dict:
    """Summarize a trace's ``integrity.scrub``/``integrity.repair`` spans.

    Scrub activity belongs in the same report as the campaign it ran
    alongside: how much of the data plane was verified, what damage
    turned up, and what the repairer did about it.  All zeros when the
    trace has no integrity spans, and the renderer skips the section.
    """
    scrubs = [s for s in spans if s["name"] == "integrity.scrub"]
    repairs = [s for s in spans if s["name"] == "integrity.repair"]
    attrs_of = lambda span: span.get("attributes", {})  # noqa: E731
    return {
        "scrubs": len(scrubs),
        "repairs": len(repairs),
        "entries": sum(attrs_of(s).get("entries", 0) for s in scrubs),
        "damaged": sum(attrs_of(s).get("damaged", 0) for s in scrubs),
        "bytes_scanned": sum(
            attrs_of(s).get("bytes_scanned", 0) for s in scrubs
        ),
        "scrub_seconds": sum(s["duration"] for s in scrubs),
        "regenerated": sum(attrs_of(s).get("regenerated", 0) for s in repairs),
        "deleted": sum(attrs_of(s).get("deleted", 0) for s in repairs),
        "failed": sum(attrs_of(s).get("failed", 0) for s in repairs),
    }


def render_report(spans: list[dict], top: int = 5) -> str:
    """Render the full plain-text report for ``repro obs report``."""
    report = build_report(spans, top=top)
    parts = [
        render_kv(
            [
                ("suite wall clock (s)", report["suite_duration"]),
                ("spans", report["span_count"]),
                ("experiments", len(report["experiments"])),
            ],
            title="trace summary",
        )
    ]

    if report["experiments"]:
        parts.append(render_table(
            ["experiment", "status", "attempts", "total_s", "run_s",
             "overhead_s", "share"],
            [
                [e["experiment_id"], e["status"], e["attempts"], e["duration"],
                 e["run_time"], e["overhead"], e["share"]]
                for e in report["experiments"]
            ],
            title="per-experiment stage-time breakdown (slowest first)",
            precision=4,
        ))

    if report["critical_path"]:
        parts.append(render_table(
            ["span", "experiment", "duration_s"],
            [
                [step["name"], step["experiment_id"] or "-", step["duration"]]
                for step in report["critical_path"]
            ],
            title="critical path (longest chain, root to leaf)",
            precision=4,
        ))

    if report["slowest_stages"]:
        parts.append(render_table(
            ["stage", "experiment", "duration_s", "status"],
            [
                [s["name"], s["experiment_id"], s["duration"], s["status"]]
                for s in report["slowest_stages"]
            ],
            title=f"slowest stages (top {top})",
            precision=4,
        ))

    if report["retry_histogram"]:
        parts.append(render_table(
            ["attempts", "experiments"],
            sorted(report["retry_histogram"].items()),
            title="retry histogram",
        ))

    crashes = report["worker_crashes"]
    if crashes["events"]:
        parts.append(render_table(
            ["experiment", "cause", "crashes"],
            [
                [row["experiment_id"], row["cause"], row["crashes"]]
                for row in crashes["causes"]
            ],
            title=(
                f"worker crashes ({crashes['events']} events, "
                f"{crashes['pool_rebuilds']} pool rebuilds"
                + (", degraded to in-process)" if crashes["degraded"]
                   else ")")
            ),
        ))
        if crashes["quarantined"]:
            parts.append(render_table(
                ["experiment", "exit_signal", "exit_code", "crashes"],
                [
                    [q["experiment_id"], q["exit_signal"] or "-",
                     q["exit_code"] if q["exit_code"] is not None else "-",
                     q["crashes"]]
                    for q in crashes["quarantined"]
                ],
                title="quarantined poison tasks",
            ))

    serve = report["serve"]
    if serve["requests"]:
        parts.append(render_table(
            ["route", "requests", "statuses", "p50_s", "p95_s", "p99_s"],
            [
                [
                    row["route"], row["requests"],
                    " ".join(
                        f"{status}:{count}"
                        for status, count in row["statuses"].items()
                    ),
                    row["p50"], row["p95"], row["p99"],
                ]
                for row in serve["routes"]
            ],
            title=(
                f"serve: top routes ({serve['requests']} requests, "
                f"{serve['coalesced']} coalesced)"
            ),
            precision=4,
        ))
        summary_rows = [
            ("status " + status, count)
            for status, count in serve["statuses"].items()
        ] + [
            ("outcome " + outcome, count)
            for outcome, count in serve["outcomes"].items()
        ] + [
            ("source " + source, count)
            for source, count in serve["sources"].items()
        ]
        parts.append(render_kv(summary_rows, title="serve: status mix"))

    integrity = report["integrity"]
    if integrity["scrubs"] or integrity["repairs"]:
        parts.append(render_kv(
            [
                ("scrub passes", integrity["scrubs"]),
                ("entries verified", integrity["entries"]),
                ("bytes verified", integrity["bytes_scanned"]),
                ("scrub wall clock (s)", round(integrity["scrub_seconds"], 4)),
                ("damaged entries", integrity["damaged"]),
                ("repair passes", integrity["repairs"]),
                ("regenerated", integrity["regenerated"]),
                ("deleted", integrity["deleted"]),
                ("regeneration failures", integrity["failed"]),
            ],
            title="integrity: scrub/repair activity",
        ))

    return "\n\n".join(parts)
