"""Trace-file analysis: the ``repro obs report`` backend.

Takes the JSONL a :class:`repro.obs.tracing.Tracer` exported and turns
it into the answers a perf investigation starts from:

- per-experiment stage-time breakdown (total, in-experiment run time,
  runner overhead, share of the suite wall clock);
- the critical path (the longest root-to-leaf chain of spans);
- the slowest individual stage spans;
- a retry histogram (attempts consumed per experiment).

All tables render through :mod:`repro.io.tables` — the same renderer
the registry listing and the benchmarks use.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DataFormatError
from repro.io.jsonl import read_jsonl
from repro.io.tables import render_kv, render_table

__all__ = ["build_report", "load_trace", "render_report"]

#: Keys every exported span record must carry.
_REQUIRED_KEYS = ("span_id", "name", "start", "end", "duration", "status")


def load_trace(path: str | Path) -> list[dict]:
    """Read and validate a trace file; returns its span records.

    Raises :class:`repro.errors.DataFormatError` when a record is
    missing the span fields, so ``repro obs report`` (and the
    ``obs-smoke`` CI target) fails loudly on a malformed trace instead
    of rendering an empty report.
    """
    spans = list(read_jsonl(path))
    if not spans:
        raise DataFormatError(f"{path}: trace file contains no spans", stage="read")
    for index, span in enumerate(spans):
        missing = [key for key in _REQUIRED_KEYS if key not in span]
        if missing:
            raise DataFormatError(
                f"{path}: span {index} is missing {missing}; not a trace file?",
                stage="read",
            )
    return spans


def _children(spans: list[dict]) -> dict[int | None, list[dict]]:
    by_parent: dict[int | None, list[dict]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    return by_parent


def _critical_path(spans: list[dict]) -> list[dict]:
    """The chain of longest spans from the longest root down to a leaf."""
    by_parent = _children(spans)
    roots = by_parent.get(None, [])
    if not roots:
        return []
    path = []
    span = max(roots, key=lambda s: s["duration"])
    while span is not None:
        path.append(span)
        children = by_parent.get(span["span_id"], [])
        span = max(children, key=lambda s: s["duration"]) if children else None
    return path


def build_report(spans: list[dict], top: int = 5) -> dict:
    """Aggregate span records into the report's machine-readable form."""
    experiment_spans = [s for s in spans if s["name"] == "experiment"]
    stage_spans = [s for s in spans if s.get("attributes", {}).get("stage")]
    suite_spans = [s for s in spans if s["name"] == "suite"]
    suite_duration = (
        sum(s["duration"] for s in suite_spans)
        if suite_spans
        else sum(s["duration"] for s in experiment_spans)
    )

    experiments = []
    for span in experiment_spans:
        attrs = span.get("attributes", {})
        experiment_id = attrs.get("experiment_id", "?")
        run_time = sum(
            s["duration"]
            for s in stage_spans
            if s.get("attributes", {}).get("experiment_id") == experiment_id
        )
        experiments.append(
            {
                "experiment_id": experiment_id,
                "status": attrs.get("status", span["status"]),
                "attempts": attrs.get("attempts", 1),
                "duration": span["duration"],
                "run_time": run_time,
                "overhead": max(0.0, span["duration"] - run_time),
                "share": (
                    span["duration"] / suite_duration if suite_duration else 0.0
                ),
            }
        )
    experiments.sort(key=lambda e: e["duration"], reverse=True)

    slowest_stages = [
        {
            "name": s["name"],
            "experiment_id": s.get("attributes", {}).get("experiment_id", "?"),
            "duration": s["duration"],
            "status": s["status"],
        }
        for s in sorted(stage_spans, key=lambda s: s["duration"], reverse=True)
    ][:top]

    retry_histogram: dict[int, int] = {}
    for experiment in experiments:
        attempts = int(experiment["attempts"])
        retry_histogram[attempts] = retry_histogram.get(attempts, 0) + 1

    critical_path = [
        {
            "name": s["name"],
            "experiment_id": s.get("attributes", {}).get("experiment_id"),
            "duration": s["duration"],
        }
        for s in _critical_path(spans)
    ]

    return {
        "suite_duration": suite_duration,
        "span_count": len(spans),
        "experiments": experiments,
        "slowest_stages": slowest_stages,
        "retry_histogram": retry_histogram,
        "critical_path": critical_path,
    }


def render_report(spans: list[dict], top: int = 5) -> str:
    """Render the full plain-text report for ``repro obs report``."""
    report = build_report(spans, top=top)
    parts = [
        render_kv(
            [
                ("suite wall clock (s)", report["suite_duration"]),
                ("spans", report["span_count"]),
                ("experiments", len(report["experiments"])),
            ],
            title="trace summary",
        )
    ]

    if report["experiments"]:
        parts.append(render_table(
            ["experiment", "status", "attempts", "total_s", "run_s",
             "overhead_s", "share"],
            [
                [e["experiment_id"], e["status"], e["attempts"], e["duration"],
                 e["run_time"], e["overhead"], e["share"]]
                for e in report["experiments"]
            ],
            title="per-experiment stage-time breakdown (slowest first)",
            precision=4,
        ))

    if report["critical_path"]:
        parts.append(render_table(
            ["span", "experiment", "duration_s"],
            [
                [step["name"], step["experiment_id"] or "-", step["duration"]]
                for step in report["critical_path"]
            ],
            title="critical path (longest chain, root to leaf)",
            precision=4,
        ))

    if report["slowest_stages"]:
        parts.append(render_table(
            ["stage", "experiment", "duration_s", "status"],
            [
                [s["name"], s["experiment_id"], s["duration"], s["status"]]
                for s in report["slowest_stages"]
            ],
            title=f"slowest stages (top {top})",
            precision=4,
        ))

    if report["retry_histogram"]:
        parts.append(render_table(
            ["attempts", "experiments"],
            sorted(report["retry_histogram"].items()),
            title="retry histogram",
        ))

    return "\n\n".join(parts)
