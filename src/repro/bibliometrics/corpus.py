"""Corpus data model: authors, venues, papers.

The model is deliberately flat and serializable — the same records could
be populated from DBLP/Semantic-Scholar scrapes when network access is
available, or from :mod:`repro.bibliometrics.synthgen` when it is not.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Author:
    """A researcher.

    Attributes:
        author_id: Stable unique id.
        name: Display name.
        affiliation: Institution name.
        sector: Institution sector ("university", "hyperscaler",
            "operator", "ngo", "government").
        region: Coarse region ("north-america", "europe", "latin-america",
            "africa", "asia", "oceania").
    """

    author_id: str
    name: str
    affiliation: str = ""
    sector: str = "university"
    region: str = "north-america"


@dataclass(frozen=True, slots=True)
class Venue:
    """A publication venue.

    Attributes:
        venue_id: Stable unique id ("sigcomm-like").
        name: Display name.
        kind: Community the venue belongs to ("networking", "hci", "sts").
    """

    venue_id: str
    name: str
    kind: str = "networking"


@dataclass(frozen=True, slots=True)
class Paper:
    """A published paper.

    Attributes:
        paper_id: Stable unique id.
        title: Title text.
        abstract: Abstract text.
        body: Optional full(er) text — sections the detectors scan.
        venue_id: Venue of publication.
        year: Publication year.
        author_ids: Ordered author ids.
        topic: Primary topic label ("datacenter", "community-networks", ...).
        references: Cited paper ids (within-corpus).
    """

    paper_id: str
    title: str
    abstract: str
    venue_id: str
    year: int
    author_ids: tuple[str, ...] = ()
    body: str = ""
    topic: str = ""
    references: tuple[str, ...] = ()

    @property
    def full_text(self) -> str:
        """Title + abstract + body, for text scanning."""
        return "\n\n".join(part for part in (self.title, self.abstract, self.body) if part)


class Corpus:
    """An in-memory publication corpus with indexed lookups.

    Example:
        >>> corpus = Corpus()
        >>> corpus.add_venue(Venue("v1", "SIGCOMM-like"))
        >>> corpus.add_author(Author("a1", "A. Researcher"))
        >>> corpus.add_paper(Paper("p1", "BGP at scale", "We measure...",
        ...                        "v1", 2020, ("a1",)))
        >>> len(corpus)
        1
    """

    def __init__(self) -> None:
        self._papers: dict[str, Paper] = {}
        self._authors: dict[str, Author] = {}
        self._venues: dict[str, Venue] = {}

    def __len__(self) -> int:
        return len(self._papers)

    def __iter__(self) -> Iterator[Paper]:
        return iter(sorted(self._papers.values(), key=lambda p: p.paper_id))

    # -- mutation ----------------------------------------------------------

    def add_author(self, author: Author) -> None:
        """Register an author; rejects duplicate ids."""
        if author.author_id in self._authors:
            raise ValueError(f"duplicate author id: {author.author_id!r}")
        self._authors[author.author_id] = author

    def add_venue(self, venue: Venue) -> None:
        """Register a venue; rejects duplicate ids."""
        if venue.venue_id in self._venues:
            raise ValueError(f"duplicate venue id: {venue.venue_id!r}")
        self._venues[venue.venue_id] = venue

    def add_paper(self, paper: Paper) -> None:
        """Register a paper; validates venue and author references."""
        if paper.paper_id in self._papers:
            raise ValueError(f"duplicate paper id: {paper.paper_id!r}")
        if paper.venue_id not in self._venues:
            raise ValueError(f"unknown venue: {paper.venue_id!r}")
        missing = [a for a in paper.author_ids if a not in self._authors]
        if missing:
            raise ValueError(f"unknown authors: {missing}")
        self._papers[paper.paper_id] = paper

    # -- lookups -----------------------------------------------------------

    def paper(self, paper_id: str) -> Paper:
        """Paper by id (KeyError when absent)."""
        return self._papers[paper_id]

    def author(self, author_id: str) -> Author:
        """Author by id (KeyError when absent)."""
        return self._authors[author_id]

    def venue(self, venue_id: str) -> Venue:
        """Venue by id (KeyError when absent)."""
        return self._venues[venue_id]

    def papers(
        self,
        venue_id: str | None = None,
        year: int | None = None,
        topic: str | None = None,
        predicate: Callable[[Paper], bool] | None = None,
    ) -> list[Paper]:
        """Papers filtered by venue, year, topic, and/or a predicate."""
        result = [
            p
            for p in self
            if (venue_id is None or p.venue_id == venue_id)
            and (year is None or p.year == year)
            and (topic is None or p.topic == topic)
            and (predicate is None or predicate(p))
        ]
        return result

    def venues(self) -> list[Venue]:
        """All venues, sorted by id."""
        return sorted(self._venues.values(), key=lambda v: v.venue_id)

    def authors(self) -> list[Author]:
        """All authors, sorted by id."""
        return sorted(self._authors.values(), key=lambda a: a.author_id)

    def years(self) -> list[int]:
        """Distinct publication years, ascending."""
        return sorted({p.year for p in self._papers.values()})

    # -- aggregates ---------------------------------------------------------

    def papers_per_author(self) -> Counter:
        """Counter of paper counts keyed by author id."""
        counts: Counter = Counter()
        for paper in self._papers.values():
            counts.update(paper.author_ids)
        return counts

    def citation_counts(self) -> Counter:
        """Counter of within-corpus citations keyed by cited paper id."""
        counts: Counter = Counter()
        for paper in self._papers.values():
            counts.update(paper.references)
        return counts

    def topic_counts(self, venue_id: str | None = None) -> Counter:
        """Counter of paper counts keyed by topic."""
        return Counter(
            p.topic for p in self.papers(venue_id=venue_id) if p.topic
        )

    # -- serialization -------------------------------------------------------

    def to_records(self) -> dict[str, list[dict]]:
        """Serialize to JSONL-ready record lists."""
        return {
            "venues": [
                {"venue_id": v.venue_id, "name": v.name, "kind": v.kind}
                for v in self.venues()
            ],
            "authors": [
                {
                    "author_id": a.author_id,
                    "name": a.name,
                    "affiliation": a.affiliation,
                    "sector": a.sector,
                    "region": a.region,
                }
                for a in self.authors()
            ],
            "papers": [
                {
                    "paper_id": p.paper_id,
                    "title": p.title,
                    "abstract": p.abstract,
                    "body": p.body,
                    "venue_id": p.venue_id,
                    "year": p.year,
                    "author_ids": list(p.author_ids),
                    "topic": p.topic,
                    "references": list(p.references),
                }
                for p in self
            ],
        }

    @classmethod
    def from_records(cls, records: dict[str, Iterable[dict]]) -> "Corpus":
        """Inverse of :meth:`to_records`."""
        corpus = cls()
        for venue in records.get("venues", []):
            corpus.add_venue(Venue(**venue))
        for author in records.get("authors", []):
            corpus.add_author(Author(**author))
        for paper in records.get("papers", []):
            payload = dict(paper)
            payload["author_ids"] = tuple(payload.get("author_ids", ()))
            payload["references"] = tuple(payload.get("references", ()))
            corpus.add_paper(Paper(**payload))
        return corpus
