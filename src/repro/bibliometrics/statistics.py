"""Statistical comparisons for bibliometric claims.

Venue-adoption differences should carry uncertainty, not just point
estimates.  This module wraps the standard machinery (scipy under the
hood) in the shapes the experiments use:

- :func:`two_proportion_test` -- z-test for "venue A's human-method
  share differs from venue B's".
- :func:`proportion_confint` -- Wilson confidence interval for one
  adoption share.
- :func:`chi_squared_independence` -- venue-kind x method-use
  independence test over a contingency table.
- :func:`bootstrap_mean_ci` -- seed-deterministic bootstrap CI for any
  per-paper statistic.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from scipy import stats


def proportion_confint(
    successes: int, total: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because adoption shares sit
    near 0 at networking venues, exactly where the naive interval
    breaks.

    >>> low, high = proportion_confint(5, 100)
    >>> 0.0 < low < 0.05 < high < 0.12
    True
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes must be in [0, total]")
    z = float(stats.norm.ppf(0.5 + confidence / 2))
    p = successes / total
    denominator = 1 + z**2 / total
    center = (p + z**2 / (2 * total)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / total + z**2 / (4 * total**2))
        / denominator
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def two_proportion_test(
    successes_a: int, total_a: int, successes_b: int, total_b: int
) -> dict:
    """Two-proportion z-test (pooled).

    Returns:
        Dict with ``p_a``, ``p_b``, ``z``, ``p_value`` (two-sided), and
        ``significant_at_01``.
    """
    for successes, total in ((successes_a, total_a), (successes_b, total_b)):
        if total <= 0:
            raise ValueError("totals must be positive")
        if not 0 <= successes <= total:
            raise ValueError("successes must be in [0, total]")
    p_a = successes_a / total_a
    p_b = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    se = math.sqrt(pooled * (1 - pooled) * (1 / total_a + 1 / total_b))
    if se == 0.0:
        z = 0.0
        p_value = 1.0
    else:
        z = (p_a - p_b) / se
        p_value = float(2 * (1 - stats.norm.cdf(abs(z))))
    return {
        "p_a": p_a,
        "p_b": p_b,
        "z": float(z),
        "p_value": float(p_value),
        "significant_at_01": p_value < 0.01,
    }


def chi_squared_independence(table: Sequence[Sequence[int]]) -> dict:
    """Chi-squared test of independence over a contingency table.

    Args:
        table: ``table[i][j]`` counts (e.g. rows = venue kinds, columns
            = uses-human-methods yes/no).

    Returns:
        Dict with ``chi2``, ``p_value``, ``dof``, ``cramers_v``.
    """
    import numpy as np

    array = np.asarray(table, dtype=float)
    if array.ndim != 2 or array.shape[0] < 2 or array.shape[1] < 2:
        raise ValueError("need a table with at least 2 rows and 2 columns")
    chi2, p_value, dof, _ = stats.chi2_contingency(array)
    n = array.sum()
    min_dim = min(array.shape) - 1
    cramers_v = math.sqrt(chi2 / (n * min_dim)) if n > 0 and min_dim > 0 else 0.0
    return {
        "chi2": float(chi2),
        "p_value": float(p_value),
        "dof": int(dof),
        "cramers_v": float(cramers_v),
    }


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Seed-deterministic percentile bootstrap CI for the mean."""
    if not values:
        raise ValueError("need at least one value")
    rng = random.Random(seed)
    data = list(values)
    n = len(data)
    means = sorted(
        sum(rng.choice(data) for _ in range(n)) / n for _ in range(n_resamples)
    )
    alpha = (1 - confidence) / 2
    low_index = int(alpha * n_resamples)
    high_index = min(n_resamples - 1, int((1 - alpha) * n_resamples))
    return (means[low_index], means[high_index])
