"""Re-encode a classic dataclass corpus as columnar shards.

The experiment suite's backend routing (DESIGN.md §15) promises that
``backend=classic`` and ``backend=columnar`` produce *identical* result
fingerprints for the same :class:`~repro.bibliometrics.synthgen.SyntheticCorpusConfig`.
The shard-parallel generator in :mod:`repro.bibliometrics.shardgen`
draws from per-shard numpy streams — different content by construction —
so it cannot back that promise.  This module closes the gap the other
way: take the classic generator's output (papers, authors, ground
truth) and lay the *same content* out as :class:`ColumnarShard` columns
plus a :class:`CorpusVocab`, so the per-shard analytics in
:mod:`repro.bibliometrics.shardscan` stream it at columnar cost.

Equality-relevant invariants:

- papers keep generation order (classic iteration sorts ``p%06d`` ids,
  which *is* generation order), so global paper index ``i`` is the
  classic corpus's ``i``-th paper and citation/author multisets line up
  element for element;
- author pools are grouped per venue in local-index order, matching the
  classic ``{venue_id}-a{n:04d}`` ids, so :meth:`CorpusVocab.author`
  rebuilds every sector/region/name/affiliation attribute byte-exactly
  (ids themselves differ in zero-padding — experiments never emit ids
  into result tables, and every id-keyed computation is
  bijection-invariant);
- ground truth travels in the ``human_mask``/``positionality`` columns,
  so no side table is needed at scan time.

Shards serialize through the existing :func:`columnar.encode_shard`
format and the vocab through :func:`vocab_to_records` /
:func:`vocab_from_records`, both artifact-cache-ready (JSON-safe, no
pickle).
"""

from __future__ import annotations

import numpy as np

from repro.bibliometrics.columnar import (
    HUMAN_FAMILY_ORDER,
    ColumnarShard,
    CorpusVocab,
    TextColumn,
)
from repro.bibliometrics.corpus import Corpus, Venue
from repro.bibliometrics.synthgen import GroundTruth

__all__ = [
    "columnarize_corpus",
    "vocab_from_records",
    "vocab_to_records",
]

_FAMILY_BIT = {family: bit for bit, family in enumerate(HUMAN_FAMILY_ORDER)}


def _build_vocab(corpus: Corpus) -> tuple[CorpusVocab, dict[str, int]]:
    """The vocab for a classic corpus, plus an author-id -> index map."""
    venues = tuple(corpus.venues())
    topics = tuple(sorted({p.topic for p in corpus if p.topic}))
    authors = corpus.authors()

    # Classic author attributes decompose exactly: ids are per-venue
    # local counters, names are "Given Surname" over single-token pools,
    # affiliations are "{region}:{sector}-{NN}".  Index vocabularies are
    # rebuilt from the data so the vocab never depends on generator
    # internals.
    sectors = tuple(sorted({a.sector for a in authors}))
    regions = tuple(sorted({a.region for a in authors}))
    given_names = tuple(sorted({a.name.split(" ", 1)[0] for a in authors}))
    surnames = tuple(sorted({a.name.split(" ", 1)[1] for a in authors}))

    per_venue: dict[str, list] = {venue.venue_id: [] for venue in venues}
    for author in authors:
        venue_id, _, local = author.author_id.rpartition("-a")
        per_venue[venue_id].append((int(local, 10), author))

    n_authors = len(authors)
    author_offsets = np.zeros(len(venues) + 1, dtype=np.int64)
    sector_idx = np.zeros(n_authors, dtype=np.int16)
    region_idx = np.zeros(n_authors, dtype=np.int16)
    given_idx = np.zeros(n_authors, dtype=np.int32)
    surname_idx = np.zeros(n_authors, dtype=np.int32)
    affil_num = np.zeros(n_authors, dtype=np.int16)
    index_of: dict[str, int] = {}
    cursor = 0
    for venue_index, venue in enumerate(venues):
        author_offsets[venue_index] = cursor
        for local, author in sorted(per_venue[venue.venue_id]):
            given, surname = author.name.split(" ", 1)
            sector_idx[cursor] = sectors.index(author.sector)
            region_idx[cursor] = regions.index(author.region)
            given_idx[cursor] = given_names.index(given)
            surname_idx[cursor] = surnames.index(surname)
            affil_num[cursor] = int(author.affiliation.rpartition("-")[2], 10)
            index_of[author.author_id] = cursor
            cursor += 1
    author_offsets[len(venues)] = cursor

    vocab = CorpusVocab(
        venues=venues,
        topics=topics,
        author_offsets=author_offsets,
        author_sector_idx=sector_idx,
        author_region_idx=region_idx,
        author_given_idx=given_idx,
        author_surname_idx=surname_idx,
        author_affil_num=affil_num,
        sectors=sectors,
        regions=regions,
        given_names=given_names,
        surnames=surnames,
    )
    return vocab, index_of


def columnarize_corpus(
    corpus: Corpus,
    truth: GroundTruth,
    shard_size: int,
) -> tuple[CorpusVocab, list[ColumnarShard]]:
    """Lay ``(corpus, truth)`` out as columnar shards of ``shard_size``.

    Papers keep classic iteration order, so shard ``i`` holds global
    papers ``[i * shard_size, ...)`` and the result is a pure function
    of ``(corpus content, shard_size)`` — which is what lets the routing
    layer cache each shard content-addressed by generator config plus
    shard geometry.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    vocab, author_index_of = _build_vocab(corpus)
    topic_index = {topic: i for i, topic in enumerate(vocab.topics)}
    venue_index = {venue.venue_id: i for i, venue in enumerate(vocab.venues)}

    papers = list(corpus)
    paper_index_of = {p.paper_id: i for i, p in enumerate(papers)}

    shards: list[ColumnarShard] = []
    for shard_index, offset in enumerate(range(0, len(papers), shard_size)):
        chunk = papers[offset:offset + shard_size]
        n = len(chunk)
        year = np.zeros(n, dtype=np.int32)
        venue_idx = np.zeros(n, dtype=np.int16)
        topic_idx = np.zeros(n, dtype=np.int16)
        human_mask = np.zeros(n, dtype=np.uint16)
        positionality = np.zeros(n, dtype=np.uint8)
        author_indptr = np.zeros(n + 1, dtype=np.int64)
        ref_indptr = np.zeros(n + 1, dtype=np.int64)
        author_values: list[int] = []
        ref_values: list[int] = []
        for local, paper in enumerate(chunk):
            year[local] = paper.year
            venue_idx[local] = venue_index[paper.venue_id]
            topic_idx[local] = topic_index.get(paper.topic, 0)
            author_values.extend(author_index_of[a] for a in paper.author_ids)
            author_indptr[local + 1] = len(author_values)
            ref_values.extend(paper_index_of[r] for r in paper.references)
            ref_indptr[local + 1] = len(ref_values)
            mask = 0
            for family in truth.human_methods.get(paper.paper_id, ()):
                mask |= 1 << _FAMILY_BIT[family]
            human_mask[local] = mask
            positionality[local] = int(paper.paper_id in truth.positionality)
        shards.append(ColumnarShard(
            index=shard_index,
            paper_offset=offset,
            year=year,
            venue_idx=venue_idx,
            topic_idx=topic_idx,
            author_indptr=author_indptr,
            author_values=np.asarray(author_values, dtype=np.int64),
            ref_indptr=ref_indptr,
            ref_values=np.asarray(ref_values, dtype=np.int64),
            human_mask=human_mask,
            positionality=positionality,
            title=TextColumn.from_strings(p.title for p in chunk),
            abstract=TextColumn.from_strings(p.abstract for p in chunk),
            body=TextColumn.from_strings(p.body for p in chunk),
        ))
    return vocab, shards


# ---------------------------------------------------------------------------
# Vocab serialization (for the columnar-corpus manifest cache entry)

def _b64(array: np.ndarray, dtype: str) -> str:
    import base64

    return base64.b64encode(
        np.ascontiguousarray(array, dtype=dtype).tobytes()
    ).decode("ascii")


def _unb64(data: str, dtype: str) -> np.ndarray:
    import base64

    return np.frombuffer(base64.b64decode(data.encode("ascii")), dtype=dtype).copy()


#: (attribute, dtype) of every numeric vocab column, serialization order.
_VOCAB_COLUMNS: tuple[tuple[str, str], ...] = (
    ("author_offsets", "int64"),
    ("author_sector_idx", "int16"),
    ("author_region_idx", "int16"),
    ("author_given_idx", "int32"),
    ("author_surname_idx", "int32"),
    ("author_affil_num", "int16"),
)


def vocab_to_records(vocab: CorpusVocab) -> list[dict]:
    """Serialize a vocab to artifact-cache records (JSON-safe)."""
    records: list[dict] = [{
        "vocab": True,
        "venues": [
            {"venue_id": v.venue_id, "name": v.name, "kind": v.kind}
            for v in vocab.venues
        ],
        "topics": list(vocab.topics),
        "sectors": list(vocab.sectors),
        "regions": list(vocab.regions),
        "given_names": list(vocab.given_names),
        "surnames": list(vocab.surnames),
    }]
    for name, dtype in _VOCAB_COLUMNS:
        records.append({
            "column": name,
            "dtype": dtype,
            "data": _b64(getattr(vocab, name), dtype),
        })
    return records


def vocab_from_records(records: list[dict]) -> CorpusVocab:
    """Inverse of :func:`vocab_to_records`."""
    if not records or not records[0].get("vocab"):
        raise ValueError("not a vocab record stream: missing header")
    header = records[0]
    columns = {
        record["column"]: _unb64(record["data"], record["dtype"])
        for record in records[1:]
    }
    missing = {name for name, _ in _VOCAB_COLUMNS} - set(columns)
    if missing:
        raise ValueError(f"vocab record stream missing columns: {sorted(missing)}")
    return CorpusVocab(
        venues=tuple(Venue(**venue) for venue in header["venues"]),
        topics=tuple(header["topics"]),
        sectors=tuple(header["sectors"]),
        regions=tuple(header["regions"]),
        given_names=tuple(header["given_names"]),
        surnames=tuple(header["surnames"]),
        **columns,
    )
