"""Community demographics: who is in the room, over time.

Section 1's diagnosis is demographic: "Existing agendas tend to reflect
the views of those who are most easily reachable — researchers with the
right affiliations, invitations, and implicit credibility."  This
module measures a venue's room:

- :func:`newcomer_share` -- fraction of each year's author slots held
  by first-time authors at that venue (an open room admits newcomers).
- :func:`author_retention` -- fraction of one year's authors who
  publish at the venue again within ``horizon`` years.
- :func:`sector_mix` / :func:`region_mix` -- composition of author
  slots by sector/region, with a concentration Gini.
- :func:`gatekeeping_index` -- share of a venue's papers with at least
  one author from its top-decile most-published authors: high values
  mean the same names are on most of the papers.
"""

from __future__ import annotations

from collections import Counter

from repro.bibliometrics.corpus import Corpus
from repro.bibliometrics.metrics import gini


def newcomer_share(corpus: Corpus, venue_id: str) -> dict[int, float]:
    """Per-year share of author slots held by venue first-timers.

    The first year of the corpus is skipped (everyone is a newcomer to
    an empty history, which says nothing).
    """
    seen: set[str] = set()
    shares: dict[int, float] = {}
    years = corpus.years()
    for year in years:
        papers = corpus.papers(venue_id=venue_id, year=year)
        slots = 0
        new = 0
        year_authors: set[str] = set()
        for paper in papers:
            for author_id in paper.author_ids:
                slots += 1
                if author_id not in seen:
                    new += 1
                year_authors.add(author_id)
        if year != years[0] and slots:
            shares[year] = new / slots
        seen |= year_authors
    return shares


def author_retention(
    corpus: Corpus, venue_id: str, year: int, horizon: int = 3
) -> float:
    """Fraction of ``year``'s authors publishing at the venue again
    within ``horizon`` years.

    Returns 0.0 when the year has no papers at the venue.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    cohort: set[str] = set()
    for paper in corpus.papers(venue_id=venue_id, year=year):
        cohort.update(paper.author_ids)
    if not cohort:
        return 0.0
    returned: set[str] = set()
    for later in range(year + 1, year + horizon + 1):
        for paper in corpus.papers(venue_id=venue_id, year=later):
            returned.update(set(paper.author_ids) & cohort)
    return len(returned) / len(cohort)


def _slot_mix(corpus: Corpus, venue_id: str | None, attribute: str) -> dict:
    counts: Counter = Counter()
    for paper in corpus.papers(venue_id=venue_id):
        for author_id in paper.author_ids:
            counts[getattr(corpus.author(author_id), attribute)] += 1
    total = sum(counts.values())
    shares = {
        key: count / total for key, count in sorted(counts.items())
    } if total else {}
    return {
        "shares": shares,
        "gini": gini(list(counts.values())) if counts else 0.0,
        "n_slots": total,
    }


def sector_mix(corpus: Corpus, venue_id: str | None = None) -> dict:
    """Author-slot shares by sector, plus a concentration Gini."""
    return _slot_mix(corpus, venue_id, "sector")


def region_mix(corpus: Corpus, venue_id: str | None = None) -> dict:
    """Author-slot shares by region, plus a concentration Gini."""
    return _slot_mix(corpus, venue_id, "region")


def gatekeeping_index(corpus: Corpus, venue_id: str) -> float:
    """Share of the venue's papers carrying a top-decile frequent author.

    The top decile is computed over the venue's own author publication
    counts (minimum one author).  1.0 means every paper has an
    established name on it — a closed room; low values mean entry
    without sponsorship is normal.
    """
    papers = corpus.papers(venue_id=venue_id)
    if not papers:
        return 0.0
    counts: Counter = Counter()
    for paper in papers:
        counts.update(paper.author_ids)
    ranked = [author for author, _ in counts.most_common()]
    top_n = max(1, len(ranked) // 10)
    top = set(ranked[:top_n])
    with_top = sum(
        1 for paper in papers if any(a in top for a in paper.author_ids)
    )
    return with_top / len(papers)


def room_report(corpus: Corpus, venue_id: str) -> dict:
    """All demographics for one venue in one dict.

    Keys: ``mean_newcomer_share``, ``sector_gini``, ``region_gini``,
    ``hyperscaler_slot_share``, ``global_south_slot_share`` (latin-
    america + africa regions), ``gatekeeping_index``.
    """
    newcomers = newcomer_share(corpus, venue_id)
    sectors = sector_mix(corpus, venue_id)
    regions = region_mix(corpus, venue_id)
    south = (
        regions["shares"].get("latin-america", 0.0)
        + regions["shares"].get("africa", 0.0)
    )
    return {
        "mean_newcomer_share": (
            sum(newcomers.values()) / len(newcomers) if newcomers else 0.0
        ),
        "sector_gini": sectors["gini"],
        "region_gini": regions["gini"],
        "hyperscaler_slot_share": sectors["shares"].get("hyperscaler", 0.0),
        "global_south_slot_share": south,
        "gatekeeping_index": gatekeeping_index(corpus, venue_id),
    }
