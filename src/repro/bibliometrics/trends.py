"""Method-adoption time series.

Turns the detector output into the per-venue, per-year adoption series
that experiment E1 reports: what share of each venue's papers mention
human-centered methods, and how that share moves over time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bibliometrics.corpus import Corpus
from repro.bibliometrics.methods_detect import uses_human_methods


@dataclass(frozen=True, slots=True)
class AdoptionPoint:
    """One (venue, year) observation.

    Attributes:
        venue_id: Venue id.
        year: Year.
        n_papers: Papers published that year at that venue.
        n_human: Papers among them detected as using human methods.
    """

    venue_id: str
    year: int
    n_papers: int
    n_human: int

    @property
    def share(self) -> float:
        """Human-method share (0.0 for an empty year)."""
        return self.n_human / self.n_papers if self.n_papers else 0.0


def adoption_series(
    corpus: Corpus,
    venue_id: str,
    min_mentions: int = 1,
) -> list[AdoptionPoint]:
    """Yearly human-method adoption for one venue, ascending years."""
    points = []
    for year in corpus.years():
        papers = corpus.papers(venue_id=venue_id, year=year)
        if not papers:
            continue
        n_human = sum(
            1 for p in papers if uses_human_methods(p, min_mentions=min_mentions)
        )
        points.append(AdoptionPoint(venue_id, year, len(papers), n_human))
    return points


def venue_adoption_table(
    corpus: Corpus,
    min_mentions: int = 1,
) -> list[dict]:
    """Per-venue adoption summary across the whole corpus.

    Returns:
        One record per venue with ``venue_id``, ``kind``, ``n_papers``,
        ``human_share`` (overall), ``early_share`` and ``late_share``
        (first and last third of the year range), sorted by descending
        ``human_share``.
    """
    years = corpus.years()
    if not years:
        return []
    span = years[-1] - years[0] + 1
    early_cutoff = years[0] + span // 3
    late_cutoff = years[-1] - span // 3
    records = []
    for venue in corpus.venues():
        papers = corpus.papers(venue_id=venue.venue_id)
        if not papers:
            continue
        flags = [
            (p.year, uses_human_methods(p, min_mentions=min_mentions))
            for p in papers
        ]
        total_human = sum(1 for _, flag in flags if flag)
        early = [flag for year, flag in flags if year < early_cutoff]
        late = [flag for year, flag in flags if year > late_cutoff]
        records.append(
            {
                "venue_id": venue.venue_id,
                "kind": venue.kind,
                "n_papers": len(papers),
                "human_share": total_human / len(papers),
                "early_share": (sum(early) / len(early)) if early else 0.0,
                "late_share": (sum(late) / len(late)) if late else 0.0,
            }
        )
    records.sort(key=lambda r: (-r["human_share"], r["venue_id"]))
    return records
