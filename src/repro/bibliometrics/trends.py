"""Method-adoption time series.

Turns the detector output into the per-venue, per-year adoption series
that experiment E1 reports: what share of each venue's papers mention
human-centered methods, and how that share moves over time.

Two equivalent paths produce the series:

- the classic one (:func:`adoption_series`,
  :func:`venue_adoption_table`) classifies materialized
  :class:`~repro.bibliometrics.corpus.Paper` objects, and
- the columnar one (:func:`adoption_series_from_counts`,
  :func:`venue_adoption_table_from_counts`) consumes the per-(venue,
  year) counters a per-shard scan
  (:func:`repro.bibliometrics.shardscan.scan_corpus`) already holds.

Both shares are ratios of per-(venue, year) counts, so the from-counts
builders reproduce the classic output exactly — the oracle tests pin
the equality down.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.bibliometrics.corpus import Corpus
from repro.bibliometrics.methods_detect import uses_human_methods


@dataclass(frozen=True, slots=True)
class AdoptionPoint:
    """One (venue, year) observation.

    Attributes:
        venue_id: Venue id.
        year: Year.
        n_papers: Papers published that year at that venue.
        n_human: Papers among them detected as using human methods.
    """

    venue_id: str
    year: int
    n_papers: int
    n_human: int

    @property
    def share(self) -> float:
        """Human-method share (0.0 for an empty year)."""
        return self.n_human / self.n_papers if self.n_papers else 0.0


def adoption_series(
    corpus: Corpus,
    venue_id: str,
    min_mentions: int = 1,
) -> list[AdoptionPoint]:
    """Yearly human-method adoption for one venue, ascending years."""
    points = []
    for year in corpus.years():
        papers = corpus.papers(venue_id=venue_id, year=year)
        if not papers:
            continue
        n_human = sum(
            1 for p in papers if uses_human_methods(p, min_mentions=min_mentions)
        )
        points.append(AdoptionPoint(venue_id, year, len(papers), n_human))
    return points


def venue_adoption_table(
    corpus: Corpus,
    min_mentions: int = 1,
) -> list[dict]:
    """Per-venue adoption summary across the whole corpus.

    Returns:
        One record per venue with ``venue_id``, ``kind``, ``n_papers``,
        ``human_share`` (overall), ``early_share`` and ``late_share``
        (first and last third of the year range), sorted by descending
        ``human_share``.
    """
    years = corpus.years()
    if not years:
        return []
    span = years[-1] - years[0] + 1
    early_cutoff = years[0] + span // 3
    late_cutoff = years[-1] - span // 3
    records = []
    for venue in corpus.venues():
        papers = corpus.papers(venue_id=venue.venue_id)
        if not papers:
            continue
        flags = [
            (p.year, uses_human_methods(p, min_mentions=min_mentions))
            for p in papers
        ]
        total_human = sum(1 for _, flag in flags if flag)
        early = [flag for year, flag in flags if year < early_cutoff]
        late = [flag for year, flag in flags if year > late_cutoff]
        records.append(
            {
                "venue_id": venue.venue_id,
                "kind": venue.kind,
                "n_papers": len(papers),
                "human_share": total_human / len(papers),
                "early_share": (sum(early) / len(early)) if early else 0.0,
                "late_share": (sum(late) / len(late)) if late else 0.0,
            }
        )
    records.sort(key=lambda r: (-r["human_share"], r["venue_id"]))
    return records


def adoption_series_from_counts(
    venue_year: Mapping[tuple[str, int], Counter],
    venue_id: str,
) -> list[AdoptionPoint]:
    """:func:`adoption_series` from per-(venue, year) scan counters.

    Args:
        venue_year: ``(venue_id, year) -> Counter`` with ``"papers"``
            and ``"human"`` keys, as produced by
            :class:`repro.bibliometrics.shardscan.CorpusAggregates`.
        venue_id: The venue to extract.
    """
    points = []
    for (vid, year), bucket in venue_year.items():
        if vid != venue_id or not bucket["papers"]:
            continue
        points.append(
            AdoptionPoint(venue_id, year, bucket["papers"], bucket["human"])
        )
    points.sort(key=lambda p: p.year)
    return points


def venue_adoption_table_from_counts(
    venue_year: Mapping[tuple[str, int], Counter],
    venue_kinds: Mapping[str, str],
) -> list[dict]:
    """:func:`venue_adoption_table` from per-(venue, year) scan counters.

    The classic table's shares are ratios of per-(venue, year) paper
    and human counts, so this rebuilds the identical records without
    touching a single :class:`~repro.bibliometrics.corpus.Paper`.

    Args:
        venue_year: As in :func:`adoption_series_from_counts`.
        venue_kinds: ``venue_id -> kind`` for the venues in the table.
    """
    years = sorted({year for (_, year), b in venue_year.items() if b["papers"]})
    if not years:
        return []
    span = years[-1] - years[0] + 1
    early_cutoff = years[0] + span // 3
    late_cutoff = years[-1] - span // 3
    records = []
    for venue_id in sorted(venue_kinds):
        totals = Counter()
        early = Counter()
        late = Counter()
        for (vid, year), bucket in venue_year.items():
            if vid != venue_id:
                continue
            totals.update(bucket)
            if year < early_cutoff:
                early.update(bucket)
            if year > late_cutoff:
                late.update(bucket)
        if not totals["papers"]:
            continue
        records.append(
            {
                "venue_id": venue_id,
                "kind": venue_kinds[venue_id],
                "n_papers": totals["papers"],
                "human_share": totals["human"] / totals["papers"],
                "early_share": (
                    early["human"] / early["papers"] if early["papers"] else 0.0
                ),
                "late_share": (
                    late["human"] / late["papers"] if late["papers"] else 0.0
                ),
            }
        )
    records.sort(key=lambda r: (-r["human_share"], r["venue_id"]))
    return records
