"""Collaboration and citation networks.

Coauthorship and citation graphs over a :class:`~repro.bibliometrics.corpus.Corpus`,
plus summary statistics used by E3/E12 (who collaborates with whom across
sectors and regions — the paper's "who is in the room" question made
measurable).
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.bibliometrics.corpus import Corpus


def coauthorship_graph(
    corpus: Corpus,
    venue_id: str | None = None,
    years: tuple[int, int] | None = None,
) -> nx.Graph:
    """Undirected coauthorship graph.

    Nodes are author ids with ``sector``/``region`` attributes; edge
    weights count co-authored papers.

    Args:
        corpus: The corpus.
        venue_id: Restrict to one venue.
        years: Inclusive ``(start, end)`` year window.
    """
    graph = nx.Graph()
    for paper in corpus.papers(venue_id=venue_id):
        if years is not None and not (years[0] <= paper.year <= years[1]):
            continue
        for author_id in paper.author_ids:
            if not graph.has_node(author_id):
                author = corpus.author(author_id)
                graph.add_node(
                    author_id, sector=author.sector, region=author.region
                )
        for a, b in combinations(sorted(paper.author_ids), 2):
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph


def citation_graph(corpus: Corpus) -> nx.DiGraph:
    """Directed citation graph (edge u -> v means u cites v).

    Only within-corpus references are present by construction; dangling
    references (to unknown ids) are dropped.
    """
    graph = nx.DiGraph()
    known = {p.paper_id for p in corpus}
    for paper in corpus:
        graph.add_node(
            paper.paper_id,
            venue=paper.venue_id,
            year=paper.year,
            topic=paper.topic,
        )
    for paper in corpus:
        for ref in paper.references:
            if ref in known:
                graph.add_edge(paper.paper_id, ref)
    return graph


def collaboration_stats(graph: nx.Graph) -> dict:
    """Summary statistics of a coauthorship graph.

    Returns:
        Dict with ``n_authors``, ``n_edges``, ``mean_degree``,
        ``largest_component_share``, ``cross_sector_edge_share`` (fraction
        of edges joining different sectors), and
        ``cross_region_edge_share``.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n == 0:
        return {
            "n_authors": 0,
            "n_edges": 0,
            "mean_degree": 0.0,
            "largest_component_share": 0.0,
            "cross_sector_edge_share": 0.0,
            "cross_region_edge_share": 0.0,
        }
    components = list(nx.connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    cross_sector = 0
    cross_region = 0
    for a, b in graph.edges():
        if graph.nodes[a].get("sector") != graph.nodes[b].get("sector"):
            cross_sector += 1
        if graph.nodes[a].get("region") != graph.nodes[b].get("region"):
            cross_region += 1
    return {
        "n_authors": n,
        "n_edges": m,
        "mean_degree": 2.0 * m / n,
        "largest_component_share": largest / n,
        "cross_sector_edge_share": cross_sector / m if m else 0.0,
        "cross_region_edge_share": cross_region / m if m else 0.0,
    }
