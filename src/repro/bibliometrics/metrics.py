"""Concentration and diversity indices.

The quantitative teeth behind Section 1's claim that research agendas
"mirror the operational realities of dominant players": Gini and Lorenz
for concentration of attention, Herfindahl–Hirschman for market-style
concentration, Shannon diversity for breadth, top-k share for "few
actors cover most of the system" (Section 6.2.1), and the h-index for
author-level impact.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def _as_nonnegative_array(values: Iterable[float]) -> np.ndarray:
    if isinstance(values, np.ndarray):
        # Columnar fast path: aggregate arrays from ColumnarCorpus
        # (papers-per-author, citation counts) skip the Python-level
        # list round-trip entirely.
        array = values.astype(float, copy=False).ravel()
    else:
        array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("need at least one value")
    if np.any(array < 0):
        raise ValueError("values must be non-negative")
    return array


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative distribution.

    0.0 is perfect equality; values approach 1.0 as one unit holds
    everything.  An all-zero distribution is defined as perfectly equal.

    >>> round(gini([1, 1, 1, 1]), 6)
    0.0
    """
    array = np.sort(_as_nonnegative_array(values))
    total = array.sum()
    if total == 0:
        return 0.0
    n = array.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * array)) / (n * total) - (n + 1) / n)


def lorenz_curve(values: Iterable[float]) -> list[tuple[float, float]]:
    """Lorenz curve points ``(population_share, value_share)``.

    Returns ``n + 1`` points starting at (0, 0) and ending at (1, 1),
    with values sorted ascending (the standard construction).
    """
    array = np.sort(_as_nonnegative_array(values))
    total = array.sum()
    n = array.size
    points = [(0.0, 0.0)]
    cumulative = 0.0
    for i, value in enumerate(array, start=1):
        cumulative += float(value)
        share = cumulative / total if total > 0 else i / n
        points.append((i / n, share))
    return points


def hhi(values: Iterable[float]) -> float:
    """Herfindahl–Hirschman index of shares derived from ``values``.

    Ranges from ``1/n`` (even split) to 1.0 (monopoly).
    """
    array = _as_nonnegative_array(values)
    total = array.sum()
    if total == 0:
        return 1.0 / array.size
    shares = array / total
    return float(np.sum(shares**2))


def shannon_diversity(values: Iterable[float], normalized: bool = False) -> float:
    """Shannon entropy of the share distribution (natural log).

    Args:
        values: Non-negative weights (zeros contribute nothing).
        normalized: Divide by ``ln(n_nonzero)`` to land in [0, 1]
            (Pielou evenness).  A single-category distribution yields 0.
    """
    array = _as_nonnegative_array(values)
    total = array.sum()
    if total == 0:
        return 0.0
    shares = array[array > 0] / total
    entropy = float(-np.sum(shares * np.log(shares)))
    if normalized:
        if shares.size <= 1:
            return 0.0
        return entropy / float(np.log(shares.size))
    return entropy


def top_k_share(values: Iterable[float], k: int) -> float:
    """Fraction of the total held by the ``k`` largest units.

    >>> top_k_share([10, 1, 1, 1], 1)
    0.7692307692307693
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    array = np.sort(_as_nonnegative_array(values))[::-1]
    total = array.sum()
    if total == 0:
        return 0.0
    return float(array[: min(k, array.size)].sum() / total)


def h_index(citation_counts: Sequence[int]) -> int:
    """Hirsch h-index: largest h with h papers cited >= h times each.

    >>> h_index([10, 8, 5, 4, 3])
    4
    """
    if isinstance(citation_counts, np.ndarray):
        counts = np.sort(citation_counts.astype(np.int64, copy=False).ravel())[::-1]
        if counts.size and counts[-1] < 0:
            raise ValueError("citation counts must be non-negative")
        return int(
            np.count_nonzero(counts >= np.arange(1, counts.size + 1))
        )
    counts = sorted((int(c) for c in citation_counts), reverse=True)
    if any(c < 0 for c in counts):
        raise ValueError("citation counts must be non-negative")
    h = 0
    for rank, count in enumerate(counts, start=1):
        if count >= rank:
            h = rank
        else:
            break
    return h
