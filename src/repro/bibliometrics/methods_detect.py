"""Method-mention detection in paper text.

Detects which research methods a paper reports using, via a curated
phrase lexicon per method family.  The families cover the three methods
the paper foregrounds (participatory action research, ethnography,
positionality) plus the wider human-methods canon it references
(interviews, surveys, focus groups, diaries, case studies) and the
quantitative baseline families networking papers usually report
(measurement, simulation, testbed).

Detection is lexicon-based on purpose: it is transparent, auditable, and
reproducible — the same properties Section 5 asks of qualitative
practice itself.  Every hit carries its matched phrase and character
offset so a human can audit the classification with a KWIC view.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.bibliometrics.corpus import Paper

# Family -> phrases.  Phrases are matched case-insensitively on word
# boundaries; "*" at the end of a token marks a stem wildcard.
METHOD_FAMILIES: dict[str, tuple[str, ...]] = {
    "participatory": (
        "participatory action research",
        "action research",
        "participatory design",
        "co-design",
        "community-based participatory",
        "participatory method*",
        "community partner*",
        "codesign",
    ),
    "ethnography": (
        "ethnograph*",
        "participant observation",
        "fieldwork",
        "field notes",
        "fieldnotes",
        "patchwork ethnography",
        "rapid ethnography",
        "autoethnograph*",
    ),
    "positionality": (
        "positionality",
        "reflexivity",
        "situated knowledge*",
        "standpoint",
        "we situate ourselves",
        "our own perspectives as researchers",
    ),
    "interviews": (
        "semi-structured interview*",
        "in-depth interview*",
        "we interviewed",
        "interview study",
        "interviews with",
        "interviewee*",
    ),
    "surveys": (
        "survey of",
        "we surveyed",
        "questionnaire*",
        "survey respondent*",
        "likert",
        "survey instrument",
    ),
    "focus_groups": (
        "focus group*",
    ),
    "diaries": (
        "diary stud*",
        "user diaries",
        "diary entries",
        "technology probe*",
    ),
    "case_study": (
        "case study",
        "case studies",
    ),
    "measurement": (
        "we measure*",
        "measurement study",
        "vantage point*",
        "packet trace*",
        "traceroute*",
        "bgp table*",
        "passive measurement*",
        "active measurement*",
        "telemetry",
    ),
    "simulation": (
        "we simulate*",
        "simulation stud*",
        "simulator",
        "ns-3",
        "discrete-event simulation",
        "emulation",
    ),
    "testbed": (
        "testbed",
        "we deploy*",
        "deployment experience*",
        "production deployment",
        "pilot deployment",
    ),
}

# Families that count as "human-centered methods" for the paper's claims.
HUMAN_METHOD_FAMILIES: frozenset[str] = frozenset(
    {
        "participatory",
        "ethnography",
        "positionality",
        "interviews",
        "surveys",
        "focus_groups",
        "diaries",
    }
)


def _phrase_pattern(phrase: str) -> str:
    """Compile one lexicon phrase to a regex fragment.

    Tokens ending in "*" become stem matches; whitespace matches any
    whitespace run; everything is bounded at word edges.
    """
    parts = []
    for token in phrase.split():
        if token.endswith("*"):
            parts.append(re.escape(token[:-1]) + r"\w*")
        else:
            parts.append(re.escape(token))
    return r"\b" + r"\s+".join(parts) + r"\b"


_FAMILY_PATTERNS: dict[str, re.Pattern] = {
    family: re.compile(
        "|".join(_phrase_pattern(p) for p in phrases), re.IGNORECASE
    )
    for family, phrases in METHOD_FAMILIES.items()
}


@dataclass(frozen=True, slots=True)
class MethodMention:
    """One detected method mention.

    Attributes:
        family: Method family key (see :data:`METHOD_FAMILIES`).
        phrase: The matched surface text.
        start: Character offset in the scanned text.
    """

    family: str
    phrase: str
    start: int

    @property
    def is_human_method(self) -> bool:
        """True for the human-centered families."""
        return self.family in HUMAN_METHOD_FAMILIES


def detect_methods(text: str, families: tuple[str, ...] | None = None) -> list[MethodMention]:
    """Scan ``text`` for method mentions.

    Args:
        text: Any paper text (title+abstract+body).
        families: Restrict to these families (default: all).

    Returns:
        Mentions sorted by offset, then family.
    """
    selected = families if families is not None else tuple(METHOD_FAMILIES)
    unknown = [f for f in selected if f not in _FAMILY_PATTERNS]
    if unknown:
        raise KeyError(f"unknown method families: {unknown}")
    mentions: list[MethodMention] = []
    for family in selected:
        for match in _FAMILY_PATTERNS[family].finditer(text):
            mentions.append(MethodMention(family, match.group(), match.start()))
    mentions.sort(key=lambda m: (m.start, m.family))
    return mentions


def classify_paper(paper: Paper) -> dict[str, int]:
    """Count method mentions per family in a paper's full text.

    Families with zero hits are omitted.
    """
    counts: dict[str, int] = {}
    for mention in detect_methods(paper.full_text):
        counts[mention.family] = counts.get(mention.family, 0) + 1
    return counts


def uses_human_methods(paper: Paper, min_mentions: int = 1) -> bool:
    """True when the paper mentions any human-centered family.

    Args:
        paper: The paper to classify.
        min_mentions: Total human-family mentions required (a single
            passing reference can be noise; raise this for precision).
    """
    counts = classify_paper(paper)
    human_total = sum(
        count for family, count in counts.items() if family in HUMAN_METHOD_FAMILIES
    )
    return human_total >= min_mentions
