"""Method-mention detection in paper text.

Detects which research methods a paper reports using, via a curated
phrase lexicon per method family.  The families cover the three methods
the paper foregrounds (participatory action research, ethnography,
positionality) plus the wider human-methods canon it references
(interviews, surveys, focus groups, diaries, case studies) and the
quantitative baseline families networking papers usually report
(measurement, simulation, testbed).

Detection is lexicon-based on purpose: it is transparent, auditable, and
reproducible — the same properties Section 5 asks of qualitative
practice itself.  Every hit carries its matched phrase and character
offset so a human can audit the classification with a KWIC view.

Scanning is single-pass: the text is tokenized once and each token is
hash-dispatched (by the first word of every lexicon phrase) to cheap
anchored per-family checks, instead of running one full regex scan per
family (eleven passes for the default lexicon).  A combined named-group
alternation was tried first and measured *slower* than multipass —
Python's ``re`` attempts every branch at every position, so a big
alternation costs the sum of the per-family scans plus bookkeeping; the
token index skips all positions whose word can't start any phrase.  The
scanner preserves the per-family semantics exactly — each family yields
its own greedy left-to-right non-overlapping matches, families never
consume text from each other — which
:class:`LexiconScanner.detect_multipass` (the naive reference
implementation) pins down in tests and benchmarks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.bibliometrics.corpus import Paper

# Family -> phrases.  Phrases are matched case-insensitively on word
# boundaries; "*" at the end of a token marks a stem wildcard.
METHOD_FAMILIES: dict[str, tuple[str, ...]] = {
    "participatory": (
        "participatory action research",
        "action research",
        "participatory design",
        "co-design",
        "community-based participatory",
        "participatory method*",
        "community partner*",
        "codesign",
    ),
    "ethnography": (
        "ethnograph*",
        "participant observation",
        "fieldwork",
        "field notes",
        "fieldnotes",
        "patchwork ethnography",
        "rapid ethnography",
        "autoethnograph*",
    ),
    "positionality": (
        "positionality",
        "reflexivity",
        "situated knowledge*",
        "standpoint",
        "we situate ourselves",
        "our own perspectives as researchers",
    ),
    "interviews": (
        "semi-structured interview*",
        "in-depth interview*",
        "we interviewed",
        "interview study",
        "interviews with",
        "interviewee*",
    ),
    "surveys": (
        "survey of",
        "we surveyed",
        "questionnaire*",
        "survey respondent*",
        "likert",
        "survey instrument",
    ),
    "focus_groups": (
        "focus group*",
    ),
    "diaries": (
        "diary stud*",
        "user diaries",
        "diary entries",
        "technology probe*",
    ),
    "case_study": (
        "case study",
        "case studies",
    ),
    "measurement": (
        "we measure*",
        "measurement study",
        "vantage point*",
        "packet trace*",
        "traceroute*",
        "bgp table*",
        "passive measurement*",
        "active measurement*",
        "telemetry",
    ),
    "simulation": (
        "we simulate*",
        "simulation stud*",
        "simulator",
        "ns-3",
        "discrete-event simulation",
        "emulation",
    ),
    "testbed": (
        "testbed",
        "we deploy*",
        "deployment experience*",
        "production deployment",
        "pilot deployment",
    ),
}

# Families that count as "human-centered methods" for the paper's claims.
HUMAN_METHOD_FAMILIES: frozenset[str] = frozenset(
    {
        "participatory",
        "ethnography",
        "positionality",
        "interviews",
        "surveys",
        "focus_groups",
        "diaries",
    }
)


#: Tokenizer for the single-pass scan: every lexicon phrase that starts
#: with a word character can only match at one of these token starts.
_WORD_RE = re.compile(r"\w+")


def _phrase_pattern(phrase: str) -> str:
    """Compile one lexicon phrase to a regex fragment.

    Tokens ending in "*" become stem matches; whitespace matches any
    whitespace run; everything is bounded at word edges.
    """
    parts = []
    for token in phrase.split():
        if token.endswith("*"):
            parts.append(re.escape(token[:-1]) + r"\w*")
        else:
            parts.append(re.escape(token))
    return r"\b" + r"\s+".join(parts) + r"\b"


@dataclass(frozen=True, slots=True)
class MethodMention:
    """One detected method mention.

    Attributes:
        family: Method family key (see :data:`METHOD_FAMILIES`).
        phrase: The matched surface text.
        start: Character offset in the scanned text.
    """

    family: str
    phrase: str
    start: int

    @property
    def is_human_method(self) -> bool:
        """True for the human-centered families."""
        return self.family in HUMAN_METHOD_FAMILIES


class LexiconScanner:
    """Single-pass multi-family phrase scanner over a lexicon.

    The text is tokenized once (``\\w+``) and each token is looked up in
    a *first-word index*: a hash from the leading word of every lexicon
    phrase (plus a small prefix table for stem-wildcard first words like
    ``ethnograph*``) to the families whose phrases could start there.
    Only candidate positions pay an anchored per-family ``match`` call;
    every other position costs one dictionary probe.  Each family keeps
    a resume offset so its matches stay non-overlapping, exactly as a
    per-family ``finditer`` would produce.

    A phrase whose first word does not begin with a ``\\w`` character
    cannot be token-indexed; selections containing one fall back to an
    exact (slower) combined-alternation traversal.

    Args:
        families: Family name -> phrase tuple (the lexicon).
    """

    def __init__(self, families: dict[str, tuple[str, ...]]) -> None:
        self.families: tuple[str, ...] = tuple(families)
        self._family_phrases: dict[str, tuple[str, ...]] = {
            family: tuple(phrases) for family, phrases in families.items()
        }
        self._family_patterns: dict[str, re.Pattern] = {
            family: re.compile(
                "|".join(_phrase_pattern(p) for p in phrases), re.IGNORECASE
            )
            for family, phrases in families.items()
        }
        self._phrase_fragments: dict[str, str] = {
            family: "|".join(_phrase_pattern(p) for p in phrases)
            for family, phrases in families.items()
        }
        self._combined: dict[tuple[str, ...], re.Pattern] = {}
        self._indexes: dict[
            tuple[str, ...],
            tuple[dict[str, tuple[str, ...]], dict[str, tuple[str, ...]], tuple[int, ...]] | None,
        ] = {}

    def pattern_for(self, family: str) -> re.Pattern:
        """The compiled single-family pattern (KeyError when unknown)."""
        return self._family_patterns[family]

    def _combined_pattern(self, selected: tuple[str, ...]) -> re.Pattern:
        """The named-group alternation over ``selected``, cached."""
        pattern = self._combined.get(selected)
        if pattern is None:
            pattern = re.compile(
                "|".join(
                    f"(?P<{family}>{self._phrase_fragments[family]})"
                    for family in selected
                ),
                re.IGNORECASE,
            )
            self._combined[selected] = pattern
        return pattern

    def _check_selection(self, selected: tuple[str, ...]) -> None:
        unknown = [f for f in selected if f not in self._family_patterns]
        if unknown:
            raise KeyError(f"unknown method families: {unknown}")

    def _index_for(
        self, selected: tuple[str, ...]
    ) -> tuple[dict[str, tuple[str, ...]], dict[str, tuple[str, ...]], tuple[int, ...]] | None:
        """The first-word index for ``selected``, cached; None when the
        selection contains a phrase the token scan cannot cover."""
        if selected in self._indexes:
            return self._indexes[selected]
        exact: dict[str, list[str]] = {}
        stems: dict[str, list[str]] = {}
        indexable = True
        for family in selected:
            for phrase in self._family_phrases[family]:
                token = phrase.split()[0]
                chunk_match = _WORD_RE.match(token)
                if chunk_match is None:
                    # First word starts with a non-word character: its
                    # matches need not begin at a token start.
                    indexable = False
                    break
                chunk = chunk_match.group().lower()
                if token.endswith("*") and token[:-1].lower() == chunk:
                    # Stem wildcard: any token *starting with* the stem
                    # is a candidate.
                    bucket = stems.setdefault(chunk, [])
                else:
                    # The regex requires a non-word char (or phrase
                    # continuation) right after the chunk, so only a
                    # token *equal to* the chunk can start a match.
                    bucket = exact.setdefault(chunk, [])
                if family not in bucket:
                    bucket.append(family)
            if not indexable:
                break
        index = None
        if indexable:
            index = (
                {chunk: tuple(fams) for chunk, fams in exact.items()},
                {chunk: tuple(fams) for chunk, fams in stems.items()},
                tuple(sorted({len(chunk) for chunk in stems})),
            )
        self._indexes[selected] = index
        return index

    def detect(
        self, text: str, families: tuple[str, ...] | None = None
    ) -> list[MethodMention]:
        """Scan ``text`` once; mentions sorted by offset, then family.

        Semantically identical to :meth:`detect_multipass` (enforced by
        tests), at one tokenizing traversal of ``text`` instead of one
        full regex pass per family.
        """
        selected = tuple(families) if families is not None else self.families
        self._check_selection(selected)
        index = self._index_for(selected)
        if index is None:
            return self._detect_stepping(text, selected)
        exact, stems, stem_lengths = index
        patterns = self._family_patterns
        # Per-family resume offset: a family's next match must start at
        # or after the end of its previous one (finditer semantics).
        resume = dict.fromkeys(selected, 0)
        mentions: list[MethodMention] = []
        exact_get = exact.get
        stems_get = stems.get
        min_stem = stem_lengths[0] if stem_lengths else None
        for token_match in _WORD_RE.finditer(text):
            token = token_match.group().lower()
            candidates = exact_get(token)
            if min_stem is not None and len(token) >= min_stem:
                for length in stem_lengths:
                    if length <= len(token):
                        stem_families = stems_get(token[:length])
                        if stem_families is not None:
                            candidates = (
                                stem_families
                                if candidates is None
                                else candidates + stem_families
                            )
            if candidates is None:
                continue
            start = token_match.start()
            for family in candidates:
                if start < resume[family]:
                    continue
                hit = patterns[family].match(text, start)
                if hit is not None:
                    mentions.append(MethodMention(family, hit.group(), start))
                    resume[family] = hit.end()
        mentions.sort(key=lambda m: (m.start, m.family))
        return mentions

    def _detect_stepping(
        self, text: str, selected: tuple[str, ...]
    ) -> list[MethodMention]:
        """Exact fallback scan via the combined named-group alternation.

        Used when a phrase's first word is not token-indexable.  Visits
        every position where *any* family matches — the combined
        pattern's hits, stepped one character past each hit start — and
        resolves the matching families there with anchored ``match``
        calls.
        """
        combined = self._combined_pattern(selected)
        order = {family: i for i, family in enumerate(selected)}
        anchored = [(family, self._family_patterns[family]) for family in selected]
        resume = dict.fromkeys(selected, 0)
        mentions: list[MethodMention] = []
        search = combined.search
        position = 0
        while (hit := search(text, position)) is not None:
            start = hit.start()
            # The alternation matched its first listed family; families
            # earlier in the selection cannot match at this offset.
            first = hit.lastgroup
            if start >= resume[first]:
                mentions.append(MethodMention(first, hit.group(), start))
                resume[first] = hit.end()
            # Later families may also match here, shadowed by the
            # alternation order — resolve them with anchored matches.
            for family, pattern in anchored[order[first] + 1:]:
                anchored_hit = pattern.match(text, start)
                if anchored_hit is not None and start >= resume[family]:
                    mentions.append(
                        MethodMention(family, anchored_hit.group(), start)
                    )
                    resume[family] = anchored_hit.end()
            # Step one character, not to the hit's end: other families'
            # matches may start inside this one.
            position = start + 1
        mentions.sort(key=lambda m: (m.start, m.family))
        return mentions

    def detect_multipass(
        self, text: str, families: tuple[str, ...] | None = None
    ) -> list[MethodMention]:
        """Reference implementation: one ``finditer`` pass per family.

        Kept as the semantic oracle for the single-pass scanner — the
        equivalence tests and the speedup benchmark compare against it.
        """
        selected = families if families is not None else self.families
        self._check_selection(selected)
        mentions: list[MethodMention] = []
        for family in selected:
            for match in self._family_patterns[family].finditer(text):
                mentions.append(MethodMention(family, match.group(), match.start()))
        mentions.sort(key=lambda m: (m.start, m.family))
        return mentions


#: The default scanner over :data:`METHOD_FAMILIES`.
_SCANNER = LexiconScanner(METHOD_FAMILIES)


def detect_methods(text: str, families: tuple[str, ...] | None = None) -> list[MethodMention]:
    """Scan ``text`` for method mentions.

    Args:
        text: Any paper text (title+abstract+body).
        families: Restrict to these families (default: all).

    Returns:
        Mentions sorted by offset, then family.
    """
    return _SCANNER.detect(text, families)


def classify_text(text: str) -> dict[str, int]:
    """Count method mentions per family in raw text.

    Families with zero hits are omitted.  This is the per-shard entry
    point (:mod:`repro.bibliometrics.shardscan` feeds it text sliced
    straight from a shard's string pools); :func:`classify_paper` is
    the dataclass wrapper over it.
    """
    counts: dict[str, int] = {}
    for mention in detect_methods(text):
        counts[mention.family] = counts.get(mention.family, 0) + 1
    return counts


def classify_paper(paper: Paper) -> dict[str, int]:
    """Count method mentions per family in a paper's full text.

    Families with zero hits are omitted.
    """
    return classify_text(paper.full_text)


def uses_human_methods(paper: Paper, min_mentions: int = 1) -> bool:
    """True when the paper mentions any human-centered family.

    Args:
        paper: The paper to classify.
        min_mentions: Total human-family mentions required (a single
            passing reference can be noise; raise this for precision).
    """
    counts = classify_paper(paper)
    human_total = sum(
        count for family, count in counts.items() if family in HUMAN_METHOD_FAMILIES
    )
    return human_total >= min_mentions
