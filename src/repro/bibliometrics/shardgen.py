"""Shard-parallel, streaming, columnar synthetic-corpus generation.

:func:`repro.bibliometrics.synthgen.generate_corpus` builds one Python
object per paper with one sequential RNG — the right oracle at 10³–10⁴
papers and the scale ceiling past it.  This module generates the same
*kind* of corpus (venue profiles, topic mixes, human-method rates with
yearly trends, positionality statements, author pools, topic-biased
citations) as :class:`~repro.bibliometrics.columnar.ColumnarShard`
columns, in fixed-size shards that are independent of each other and of
the worker count:

- **Deterministic shard seeds.**  Shard ``i`` draws from
  ``SeedSequence([seed, STREAM_SHARD, i])`` (numpy Philox-backed
  generators), so its content is a pure function of ``(config, i)``.
  Worker count and completion order only change *scheduling*; the
  merged fingerprint is identical at 1, 2, or N workers.
- **Config-owned layout.**  The paper→(year, venue) plan, author-pool
  sizes, and shard boundaries derive from the config alone
  (``shard_size`` is part of corpus identity, like any other knob).
- **Shard-independent citations.**  The sequential generator's
  accumulate-as-you-go preferential attachment is replaced by a frozen
  preferential prior: a paper cites earlier-*year* papers with
  probability decaying in global index (``rank = ⌊E·u²⌋`` — old papers
  collect most citations, power-law-ish), biased toward its own topic
  via the config's ``same_topic_citation_bias``.  Topic identities of
  earlier papers come from a **skeleton** pass — per-(year, venue)
  topic columns drawn from their own seed streams — which any shard
  can regenerate cheaply, so no shard ever waits on another.
- **Streaming through the artifact cache.**  With a cache directory,
  each worker writes its shard as a ``corpus-shard`` artifact and
  returns only metadata; the parent never holds more than one decoded
  shard (``stream=True``), so a 10⁶–10⁷-paper corpus never fully
  materializes in RAM.
- **Crash-safe.**  Generation is idempotent and content-addressed, so
  the parent reacts to a killed worker (the supervisor discipline of
  PR 4, site ``shardgen:shard``) by rebuilding the pool and requeuing
  unfinished shards, degrading to in-process generation after
  ``max_pool_rebuilds`` — the fingerprint is unchanged either way.
"""

from __future__ import annotations

import json
import math
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from multiprocessing import get_context
from typing import Callable, Iterable

import numpy as np

from repro.bibliometrics.columnar import (
    HUMAN_FAMILY_ORDER,
    SHARD_ARTIFACT_KIND,
    SHARD_SCHEMA_VERSION,
    ColumnarCorpus,
    ColumnarShard,
    CorpusVocab,
    TextColumn,
    decode_shard,
    encode_shard,
)
from repro.bibliometrics.corpus import Venue
from repro.bibliometrics.synthgen import (
    _COMMUNITIES,
    _GIVEN,
    _HUMAN_METHOD_SENTENCES,
    _IDENTITIES,
    _PARTNERS,
    _POSITIONALITY_STATEMENTS,
    _QUANT_METHOD_SENTENCES,
    _REGIONS,
    _SECTORS,
    _SURNAMES,
    TOPICS,
    VenueProfile,
    default_venue_profiles,
)

__all__ = [
    "ShardedCorpusConfig",
    "CorpusPlan",
    "build_vocab",
    "generate_columnar_corpus",
    "generate_shard",
    "shard_cache_config",
    "topic_skeleton",
]

#: Sub-stream tags under the root seed; distinct streams never collide.
STREAM_TOPIC = 1
STREAM_AUTHORS = 2
STREAM_SHARD = 3

#: Fault-injection site consulted once per shard in pool workers
#: (worker-only modes like ``kill`` pass through elsewhere).
FAULT_SITE = "shardgen:shard"

#: Exponent of the frozen preferential prior: a citation lands on
#: earlier-paper rank ``⌊E·u**_PRIOR_EXPONENT⌋`` for ``u ~ U[0, 1)``.
_PRIOR_EXPONENT = 2.0

#: Pre-filled variants kept per sentence template (per shard).
_VARIANTS = 16

#: Title suffixes (mirrors the sequential generator's pool).
_TITLE_SUFFIXES = (
    "at scale", "in the wild", "under constraints", "revisited",
    "for the next decade", "across regions",
)

_CLOSING = (
    "Results show consistent improvements and surface open questions "
    "for operators and researchers."
)

_TOPIC_NAMES: tuple[str, ...] = tuple(sorted(TOPICS))
_QUANT_FAMILIES: tuple[str, ...] = tuple(sorted(_QUANT_METHOD_SENTENCES))


@dataclass(frozen=True)
class ShardedCorpusConfig:
    """Parameters of a sharded columnar corpus.

    Every field — including ``shard_size`` — is part of corpus
    identity: two configs that differ anywhere generate different
    corpora (and land on different artifact-cache keys).  Worker count
    is *not* a field; it never changes the output.

    Attributes:
        start_year: First publication year (inclusive).
        end_year: Last publication year (inclusive).
        seed: Root seed for every derived stream.
        total_papers: Exact corpus size; the plan distributes papers
            over (year, venue) cells proportionally to the venue
            profiles' ``papers_per_year``.
        shard_size: Papers per shard (the last shard may be smaller).
        authors_per_venue_pool: Base per-venue author-pool size at the
            *reference* scale; pools scale linearly with
            ``total_papers`` so per-author productivity stays flat.
        annual_pool_growth: Newcomer influx per year as a fraction of
            the scaled initial pool.
        mean_authors_per_paper: Average author-list length.
        mean_references: Average within-corpus citation count.
        same_topic_citation_bias: Multiplier favoring same-topic
            citations (legacy knob, same meaning).
    """

    start_year: int = 2000
    end_year: int = 2025
    seed: int = 0
    total_papers: int = 100_000
    shard_size: int = 25_000
    authors_per_venue_pool: int = 120
    annual_pool_growth: float = 0.04
    mean_authors_per_paper: float = 4.0
    mean_references: float = 8.0
    same_topic_citation_bias: float = 4.0

    def __post_init__(self) -> None:
        if self.end_year < self.start_year:
            raise ValueError("end_year must be >= start_year")
        if self.total_papers < 1:
            raise ValueError("total_papers must be >= 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.authors_per_venue_pool < 1:
            raise ValueError("authors_per_venue_pool must be >= 1")

    def to_dict(self) -> dict:
        return asdict(self)


def shard_cache_config(
    config: ShardedCorpusConfig,
    profiles: list[VenueProfile],
    shard_index: int,
) -> dict:
    """The artifact-cache key config for one shard.

    Includes the full generator config *and* the venue profiles, so a
    custom panel can never alias the default one, plus the shard index.
    """
    return {
        "config": config.to_dict(),
        "profiles": [asdict(p) for p in profiles],
        "shard": shard_index,
    }


class CorpusPlan:
    """The config-deterministic layout: papers → (year, venue) cells.

    Papers are ordered year-major, then venue (profile order), then
    position within the cell; global paper index therefore increases
    with year, which is what lets citations address "all earlier-year
    papers" as the contiguous index range ``[0, year_start)``.
    """

    def __init__(
        self, config: ShardedCorpusConfig, profiles: list[VenueProfile]
    ) -> None:
        if not profiles:
            raise ValueError("need at least one venue profile")
        self.config = config
        self.profiles = list(profiles)
        self.n_venues = len(self.profiles)
        self.n_years = config.end_year - config.start_year + 1
        base = np.array(
            [float(p.papers_per_year) for p in self.profiles], dtype=float
        )
        base_total = float(base.sum()) * self.n_years
        if base_total <= 0:
            raise ValueError("venue profiles generate no papers")
        self.scale = config.total_papers / base_total

        # Exact-total apportionment: floor the scaled weights, then give
        # the remainder to the cells with the largest fractional parts
        # (ties broken by cell index — fully deterministic).
        raw = np.tile(base * self.scale, self.n_years)
        counts = np.floor(raw).astype(np.int64)
        remainder = config.total_papers - int(counts.sum())
        if remainder > 0:
            order = np.argsort(-(raw - counts), kind="stable")
            counts[order[:remainder]] += 1
        self.cell_counts = counts
        self.cell_starts = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self.cell_starts[1:])
        #: Global index where each year's papers begin (len n_years + 1).
        self.year_starts = self.cell_starts[:: self.n_venues].copy()

        # Author pools: scaled linearly so papers-per-author stays flat
        # as the corpus grows; same pool size for every venue (as in
        # the sequential generator).
        self.pool0 = max(8, round(config.authors_per_venue_pool * self.scale))
        self.influx = max(0, round(config.annual_pool_growth * self.pool0))
        self.pool_total = self.pool0 + self.influx * (self.n_years - 1)
        self.author_offsets = (
            np.arange(self.n_venues + 1, dtype=np.int64) * self.pool_total
        )

        self.total_papers = config.total_papers
        self.n_shards = math.ceil(config.total_papers / config.shard_size)

    def shard_range(self, shard_index: int) -> tuple[int, int]:
        """Global paper index range ``[lo, hi)`` of shard ``shard_index``."""
        if not 0 <= shard_index < self.n_shards:
            raise IndexError(
                f"shard {shard_index} out of range 0..{self.n_shards - 1}"
            )
        lo = shard_index * self.config.shard_size
        return lo, min(self.total_papers, lo + self.config.shard_size)

    def shard_sizes(self) -> list[int]:
        return [
            self.shard_range(i)[1] - self.shard_range(i)[0]
            for i in range(self.n_shards)
        ]

    def cells_overlapping(self, lo: int, hi: int) -> Iterable[tuple[int, int, int]]:
        """Yield ``(cell_index, cell_lo, cell_hi)`` clipped to [lo, hi)."""
        first = int(np.searchsorted(self.cell_starts, lo, side="right")) - 1
        for cell in range(max(0, first), self.cell_counts.size):
            cell_lo = int(self.cell_starts[cell])
            cell_hi = int(self.cell_starts[cell + 1])
            if cell_lo >= hi:
                break
            if cell_hi <= lo:
                continue
            yield cell, max(cell_lo, lo), min(cell_hi, hi)

    def cell_year_venue(self, cell: int) -> tuple[int, int]:
        """(year, venue index) of cell ``cell``."""
        return (
            self.config.start_year + cell // self.n_venues,
            cell % self.n_venues,
        )

    def active_pool(self, year: int) -> int:
        """Author-pool size available in ``year`` (newcomers included)."""
        return self.pool0 + self.influx * (year - self.config.start_year)


# -- per-process memos -------------------------------------------------------

#: config-key -> (plan, skeleton, topic_order, topic_bounds); one corpus
#: config per worker process in practice, so a single slot suffices.
_MEMO: dict[str, tuple] = {}
_MEMO_SLOTS = 2


def _memo_key(config: ShardedCorpusConfig, profiles: list[VenueProfile]) -> str:
    return json.dumps(
        {"config": config.to_dict(), "profiles": [asdict(p) for p in profiles]},
        sort_keys=True,
    )


def _weight_vector(weights: dict[str, float], names: tuple[str, ...]) -> np.ndarray:
    """Cumulative probability vector over ``names`` (absent keys = 0)."""
    values = np.array([float(weights.get(name, 0.0)) for name in names])
    total = values.sum()
    if total <= 0:
        raise ValueError(f"weights sum to zero over {names}")
    return np.cumsum(values / total)


def topic_skeleton(
    config: ShardedCorpusConfig, profiles: list[VenueProfile], plan: CorpusPlan
) -> np.ndarray:
    """Topic index (into sorted topic names) for *every* paper.

    Drawn per (year, venue) cell from ``SeedSequence([seed,
    STREAM_TOPIC, cell])`` — independent of sharding, so every shard
    regenerates the identical skeleton and cross-shard citation
    targeting agrees everywhere.  Cheap: one vectorized draw per cell.
    """
    skeleton = np.empty(plan.total_papers, dtype=np.int16)
    cum_by_venue = [
        _weight_vector(p.topic_weights, _TOPIC_NAMES) for p in profiles
    ]
    for cell in range(plan.cell_counts.size):
        count = int(plan.cell_counts[cell])
        if count == 0:
            continue
        _, venue = plan.cell_year_venue(cell)
        rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, STREAM_TOPIC, cell])
        )
        draws = rng.random(count)
        lo = int(plan.cell_starts[cell])
        skeleton[lo:lo + count] = np.searchsorted(
            cum_by_venue[venue], draws, side="right"
        ).astype(np.int16)
    return skeleton


def _analysis(config: ShardedCorpusConfig, profiles: list[VenueProfile]):
    """Memoized (plan, skeleton, topic_order, topic_bounds) per config."""
    key = _memo_key(config, profiles)
    hit = _MEMO.get(key)
    if hit is not None:
        return hit
    plan = CorpusPlan(config, profiles)
    skeleton = topic_skeleton(config, profiles, plan)
    # Earlier-paper index grouped by topic, ascending index within each
    # topic (stable sort), for same-topic citation targeting.
    topic_order = np.argsort(skeleton, kind="stable").astype(np.int64)
    topic_bounds = np.searchsorted(
        skeleton[topic_order], np.arange(len(_TOPIC_NAMES) + 1)
    )
    value = (plan, skeleton, topic_order, topic_bounds)
    while len(_MEMO) >= _MEMO_SLOTS:
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[key] = value
    return value


def build_vocab(
    config: ShardedCorpusConfig,
    profiles: list[VenueProfile] | None = None,
    plan: CorpusPlan | None = None,
) -> CorpusVocab:
    """The shared side tables (venues, topics, columnar author table).

    Author attributes draw from ``SeedSequence([seed, STREAM_AUTHORS,
    venue])`` — one stream per venue, untouched by sharding.
    """
    profiles = profiles if profiles is not None else default_venue_profiles()
    plan = plan or CorpusPlan(config, profiles)
    n_total = int(plan.author_offsets[-1])
    sector_idx = np.empty(n_total, dtype=np.int8)
    region_idx = np.empty(n_total, dtype=np.int8)
    given_idx = np.empty(n_total, dtype=np.int16)
    surname_idx = np.empty(n_total, dtype=np.int16)
    affil_num = np.empty(n_total, dtype=np.int8)
    sector_pos = {name: i for i, name in enumerate(_SECTORS)}
    region_pos = {name: i for i, name in enumerate(_REGIONS)}
    for venue, profile in enumerate(profiles):
        lo, hi = int(plan.author_offsets[venue]), int(plan.author_offsets[venue + 1])
        n = hi - lo
        rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, STREAM_AUTHORS, venue])
        )
        sector_names = tuple(sorted(profile.sector_weights))
        region_names = tuple(sorted(profile.region_weights))
        sector_draw = np.searchsorted(
            _weight_vector(profile.sector_weights, sector_names),
            rng.random(n), side="right",
        )
        region_draw = np.searchsorted(
            _weight_vector(profile.region_weights, region_names),
            rng.random(n), side="right",
        )
        sector_idx[lo:hi] = np.array(
            [sector_pos[name] for name in sector_names], dtype=np.int8
        )[sector_draw]
        region_idx[lo:hi] = np.array(
            [region_pos[name] for name in region_names], dtype=np.int8
        )[region_draw]
        given_idx[lo:hi] = rng.integers(0, len(_GIVEN), n, dtype=np.int16)
        surname_idx[lo:hi] = rng.integers(0, len(_SURNAMES), n, dtype=np.int16)
        affil_num[lo:hi] = rng.integers(1, 31, n, dtype=np.int8)
    return CorpusVocab(
        venues=tuple(Venue(p.venue_id, p.name, p.kind) for p in profiles),
        topics=_TOPIC_NAMES,
        author_offsets=plan.author_offsets,
        author_sector_idx=sector_idx,
        author_region_idx=region_idx,
        author_given_idx=given_idx,
        author_surname_idx=surname_idx,
        author_affil_num=affil_num,
        sectors=_SECTORS,
        regions=_REGIONS,
        given_names=_GIVEN,
        surnames=_SURNAMES,
    )


# -- text pools --------------------------------------------------------------


def _fill_template(template: str, rng: np.random.Generator) -> str:
    return template.format(
        partner=_PARTNERS[int(rng.integers(0, len(_PARTNERS)))],
        months=int(rng.integers(3, 25)),
        n_participants=int(rng.integers(8, 61)),
        n_sites=int(rng.integers(2, 13)),
    )


def _sentence_pools(
    rng: np.random.Generator,
) -> tuple[list[list[str]], dict[str, list[list[str]]], list[str]]:
    """Pre-filled sentence variants for this shard's abstracts/bodies.

    Returns ``(quant_pools, human_pools, positionality_pool)`` where
    each template owns ``_VARIANTS`` filled strings; per-paper choices
    then index into the pools instead of re-formatting per paper.
    """
    quant_pools: list[list[str]] = []
    for family in _QUANT_FAMILIES:
        for template in _QUANT_METHOD_SENTENCES[family]:
            quant_pools.append(
                [_fill_template(template, rng) for _ in range(_VARIANTS)]
            )
    human_pools: dict[str, list[list[str]]] = {}
    for family in HUMAN_FAMILY_ORDER:
        human_pools[family] = [
            [_fill_template(template, rng) for _ in range(_VARIANTS)]
            for template in _HUMAN_METHOD_SENTENCES[family]
        ]
    positionality_pool = [
        _POSITIONALITY_STATEMENTS[int(rng.integers(0, len(_POSITIONALITY_STATEMENTS)))]
        .format(
            identity=_IDENTITIES[int(rng.integers(0, len(_IDENTITIES)))],
            community=_COMMUNITIES[int(rng.integers(0, len(_COMMUNITIES)))],
        )
        for _ in range(_VARIANTS)
    ]
    return quant_pools, human_pools, positionality_pool


#: Per-kind pools of human-method families (bit indices into
#: HUMAN_FAMILY_ORDER), mirroring the sequential generator.
_KIND_FAMILY_POOLS: dict[str, tuple[int, ...]] = {
    "networking": tuple(
        HUMAN_FAMILY_ORDER.index(f)
        for f in ("interviews", "surveys", "participatory", "ethnography")
    ),
    "hci": tuple(
        HUMAN_FAMILY_ORDER.index(f)
        for f in ("interviews", "participatory", "diaries", "focus_groups",
                  "surveys", "ethnography")
    ),
    "sts": tuple(
        HUMAN_FAMILY_ORDER.index(f)
        for f in ("ethnography", "interviews", "participatory")
    ),
}


def _dedup_csr(
    paper_of_slot: np.ndarray, values: np.ndarray, n_papers: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-paper deduplicated CSR from flat (paper, value) slot pairs.

    Vectorized: encode pairs as ``paper * stride + value``, ``np.unique``
    the lot, decode.  Values come back sorted ascending within each
    paper, matching the sequential generator's sorted tuples.
    """
    indptr = np.zeros(n_papers + 1, dtype=np.int64)
    if values.size == 0:
        return indptr, values.astype(np.int64)
    keys = np.unique(paper_of_slot.astype(np.int64) * stride + values)
    papers = keys // stride
    np.cumsum(np.bincount(papers, minlength=n_papers), out=indptr[1:])
    return indptr, keys % stride


def generate_shard(
    config: ShardedCorpusConfig,
    profiles: list[VenueProfile] | None = None,
    shard_index: int = 0,
) -> ColumnarShard:
    """Generate shard ``shard_index`` — a pure function of its arguments.

    All sampling is vectorized over the shard's papers; the only
    Python-level loops assemble strings (titles/abstracts) and run once
    per paper.
    """
    profiles = profiles if profiles is not None else default_venue_profiles()
    plan, skeleton, topic_order, topic_bounds = _analysis(config, profiles)
    lo, hi = plan.shard_range(shard_index)
    n = hi - lo
    rng = np.random.default_rng(
        np.random.SeedSequence([config.seed, STREAM_SHARD, shard_index])
    )

    # -- layout columns (from the plan, not the RNG) --------------------
    year = np.empty(n, dtype=np.int32)
    venue_idx = np.empty(n, dtype=np.int16)
    horizon = np.empty(n, dtype=np.int64)  # papers in strictly earlier years
    for cell, clip_lo, clip_hi in plan.cells_overlapping(lo, hi):
        cell_year, cell_venue = plan.cell_year_venue(cell)
        sl = slice(clip_lo - lo, clip_hi - lo)
        year[sl] = cell_year
        venue_idx[sl] = cell_venue
        horizon[sl] = plan.year_starts[cell_year - config.start_year]
    topic_idx = skeleton[lo:hi].astype(np.int16)
    years_in = (year - config.start_year).astype(np.int64)

    # -- human-method truth --------------------------------------------
    base_rate = np.array([p.human_method_rate for p in profiles])
    trend = np.array([p.human_method_trend for p in profiles])
    pos_rate = np.array([p.positionality_rate for p in profiles])
    rate = np.clip(base_rate[venue_idx] + trend[venue_idx] * years_in, 0.0, 1.0)
    uses_human = rng.random(n) < rate
    n_families = (
        1 + (rng.random(n) < 0.45).astype(np.int8)
        + (rng.random(n) < 0.15).astype(np.int8)
    )
    family_scores = rng.random((n, len(HUMAN_FAMILY_ORDER)))
    human_mask = np.zeros(n, dtype=np.uint16)
    kinds = np.array(
        [("networking", "hci", "sts").index(p.kind) for p in profiles],
        dtype=np.int8,
    )
    paper_kind = kinds[venue_idx]
    for kind_pos, kind_name in enumerate(("networking", "hci", "sts")):
        pool = np.array(_KIND_FAMILY_POOLS[kind_name], dtype=np.int64)
        rows = np.nonzero(uses_human & (paper_kind == kind_pos))[0]
        if rows.size == 0:
            continue
        scores = family_scores[rows][:, pool]
        # rank of each pool slot within its row; the k smallest win.
        ranks = np.argsort(np.argsort(scores, axis=1), axis=1)
        k = np.minimum(n_families[rows], pool.size)[:, None]
        selected = ranks < k
        weights = (1 << pool).astype(np.uint16)
        human_mask[rows] = (selected * weights).sum(axis=1).astype(np.uint16)
    positionality = (
        uses_human & (rng.random(n) < pos_rate[venue_idx])
    ).astype(np.uint8)

    # -- title / abstract / body text ----------------------------------
    verbs_cap = [tuple(v.capitalize() for v in TOPICS[t]["verbs"]) for t in _TOPIC_NAMES]
    nouns = [tuple(TOPICS[t]["nouns"]) for t in _TOPIC_NAMES]
    n_verbs = np.array([len(v) for v in verbs_cap])
    n_nouns = np.array([len(v) for v in nouns])
    verb_idx = (rng.random(n) * n_verbs[topic_idx]).astype(np.int64)
    noun_idx = (rng.random(n) * n_nouns[topic_idx]).astype(np.int64)
    suffix_idx = rng.integers(0, len(_TITLE_SUFFIXES), n)
    lead_noun_idx = (rng.random(n) * n_nouns[topic_idx]).astype(np.int64)

    quant_pools, human_pools, positionality_pool = _sentence_pools(rng)
    quant_tpl = rng.integers(0, len(quant_pools), n)
    quant_var = rng.integers(0, _VARIANTS, n)
    # Per-(paper, family) template+variant choices, drawn unconditionally
    # (fixed shapes keep the stream layout simple and deterministic).
    human_tpl = rng.random((n, len(HUMAN_FAMILY_ORDER)))
    human_var = rng.integers(0, _VARIANTS, (n, len(HUMAN_FAMILY_ORDER)))
    pos_var = rng.integers(0, _VARIANTS, n)

    titles: list[str] = []
    abstracts: list[str] = []
    bodies: list[str] = []
    human_pool_sizes = [len(human_pools[f]) for f in HUMAN_FAMILY_ORDER]
    mask_list = human_mask.tolist()
    for i in range(n):
        t = topic_idx[i]
        titles.append(
            f"{verbs_cap[t][verb_idx[i]]} {nouns[t][noun_idx[i]]} "
            f"{_TITLE_SUFFIXES[suffix_idx[i]]}"
        )
        parts = [
            f"This paper studies {nouns[t][lead_noun_idx[i]]} and the "
            f"practices surrounding it. We present a system-level analysis "
            f"and report lessons for the community.",
            quant_pools[quant_tpl[i]][quant_var[i]],
        ]
        mask = mask_list[i]
        if mask:
            for bit, family in enumerate(HUMAN_FAMILY_ORDER):
                if mask & (1 << bit):
                    pool = human_pools[family]
                    tpl = int(human_tpl[i, bit] * human_pool_sizes[bit])
                    parts.append(pool[tpl][human_var[i, bit]])
        parts.append(_CLOSING)
        abstracts.append(" ".join(parts))
        bodies.append(positionality_pool[pos_var[i]] if positionality[i] else "")

    # -- authors --------------------------------------------------------
    active = (plan.pool0 + plan.influx * years_in).astype(np.int64)
    n_auth = np.clip(
        np.rint(rng.normal(config.mean_authors_per_paper, 1.5, n)).astype(np.int64),
        1, active,
    )
    paper_of_slot = np.repeat(np.arange(n, dtype=np.int64), n_auth)
    local_author = (
        rng.random(int(n_auth.sum())) * active[paper_of_slot]
    ).astype(np.int64)
    global_author = plan.author_offsets[venue_idx[paper_of_slot]] + local_author
    author_indptr, author_values = _dedup_csr(
        paper_of_slot, global_author, n, int(plan.author_offsets[-1]) + 1
    )

    # -- citations ------------------------------------------------------
    n_refs = np.clip(
        np.rint(rng.normal(config.mean_references, 3.0, n)).astype(np.int64),
        0, horizon,
    )
    paper_of_ref = np.repeat(np.arange(n, dtype=np.int64), n_refs)
    total_refs = int(n_refs.sum())
    if total_refs:
        u = rng.random(total_refs) ** _PRIOR_EXPONENT
        bias = max(0.0, float(config.same_topic_citation_bias))
        want_same = rng.random(total_refs) < (bias / (bias + 1.0))
        ref_horizon = horizon[paper_of_ref]
        ref_topic = topic_idx[paper_of_ref].astype(np.int64)
        targets = (u * ref_horizon).astype(np.int64)  # uniform-prior fallback
        # Same-topic redirect: count earlier-year same-topic papers per
        # slot (prefix of the topic's index-sorted segment), then map
        # the prior draw into that segment.
        same_count = np.zeros(total_refs, dtype=np.int64)
        for t in range(len(_TOPIC_NAMES)):
            mask = ref_topic == t
            if not mask.any():
                continue
            seg = topic_order[topic_bounds[t]:topic_bounds[t + 1]]
            counts = np.searchsorted(seg, ref_horizon[mask])
            same_count[mask] = counts
            redirect = mask & want_same & (same_count > 0)
            if redirect.any():
                ranks = (u[redirect] * same_count[redirect]).astype(np.int64)
                targets[redirect] = seg[ranks]
        ref_indptr, ref_values = _dedup_csr(
            paper_of_ref, targets, n, plan.total_papers + 1
        )
    else:
        ref_indptr = np.zeros(n + 1, dtype=np.int64)
        ref_values = np.zeros(0, dtype=np.int64)

    return ColumnarShard(
        index=shard_index,
        paper_offset=lo,
        year=year,
        venue_idx=venue_idx,
        topic_idx=topic_idx,
        author_indptr=author_indptr,
        author_values=author_values,
        ref_indptr=ref_indptr,
        ref_values=ref_values,
        human_mask=human_mask,
        positionality=positionality,
        title=TextColumn.from_strings(titles),
        abstract=TextColumn.from_strings(abstracts),
        body=TextColumn.from_strings(bodies),
    )


# -- worker protocol ---------------------------------------------------------


def _produce_shard(
    config: ShardedCorpusConfig,
    profiles: list[VenueProfile],
    shard_index: int,
    cache_dir: str | None,
    keep_shard: bool,
) -> tuple[ColumnarShard | None, dict]:
    """Generate-or-load one shard; returns ``(shard_or_None, meta)``.

    With a cache directory the shard is read through (and written to)
    the artifact cache — concurrent producers serialize on the per-key
    lock, so racing workers generate each shard at most once.
    """
    from repro.io.artifacts import ArtifactCache

    if cache_dir is None:
        shard = generate_shard(config, profiles, shard_index)
    else:
        cache = ArtifactCache(cache_dir, version=SHARD_SCHEMA_VERSION, sweep=False)
        holder: dict[str, ColumnarShard] = {}

        def factory() -> list[dict]:
            built = generate_shard(config, profiles, shard_index)
            holder["shard"] = built
            return encode_shard(built)

        records = cache.get_or_create(
            SHARD_ARTIFACT_KIND,
            shard_cache_config(config, profiles, shard_index),
            factory,
        )
        shard = holder.get("shard") or decode_shard(records)
    meta = {
        "shard": shard_index,
        "n_papers": shard.n_papers,
        "sha": shard.fingerprint(),
    }
    return (shard if keep_shard else None), meta


def _shard_task(task: dict) -> dict:
    """Pool-worker entry point: produce one shard, return its result.

    Consults the ``shardgen:shard`` fault site first (under the task's
    exported injector specs), crediting prior worker crashes against
    ``kill`` budgets exactly as the experiment workers do — a
    "crash once, then succeed" schedule behaves identically across
    requeues.
    """
    from repro.runtime.faultinject import FaultInjector, use_fault_injector

    injector = None
    if task.get("fault") is not None:
        injector = FaultInjector.from_specs(
            task["fault"]["specs"], seed=task["fault"]["seed"]
        )
        crashes = task.get("worker_crashes", 0)
        if crashes:
            for spec in injector._specs.values():
                if spec.mode == "kill":
                    spec.fired += crashes
                    spec.calls += crashes
    with use_fault_injector(injector):
        if injector is not None:
            injector.check(FAULT_SITE)
        shard, meta = _produce_shard(
            task["config"], task["profiles"], task["shard"],
            task["cache_dir"], task["keep_shard"],
        )
    result = dict(meta)
    if shard is not None:
        result["payload"] = shard
    return result


def generate_columnar_corpus(
    config: ShardedCorpusConfig | None = None,
    profiles: list[VenueProfile] | None = None,
    *,
    workers: int = 1,
    cache_dir: str | None = None,
    stream: bool = False,
    fault_injector=None,
    max_pool_rebuilds: int = 3,
    on_shard: Callable[[dict], None] | None = None,
) -> ColumnarCorpus:
    """Generate (or reload) a sharded columnar corpus.

    Args:
        config: Generator parameters (default: the default config).
        profiles: Venue panel (default: the 12-venue default panel).
        workers: Process-pool width for shard generation; **never**
            changes the corpus content or fingerprint.
        cache_dir: Artifact-cache directory shards stream through.  A
            warm cache replays shards without regeneration (and with an
            identical fingerprint).  Required for ``stream=True``.
        stream: Keep at most one decoded shard resident in the
            returned corpus; shards reload from the cache on demand.
        fault_injector: Optional
            :class:`~repro.runtime.faultinject.FaultInjector` whose
            exported specs travel to workers (site ``shardgen:shard``).
        max_pool_rebuilds: Worker-crash budget; past it, remaining
            shards are generated in-process (degraded but complete —
            and fingerprint-identical, generation being deterministic).
        on_shard: Optional callback invoked with each shard's metadata
            as it completes (progress reporting).

    Returns:
        A :class:`ColumnarCorpus` whose fingerprint depends only on
        ``(config, profiles)``.
    """
    config = config or ShardedCorpusConfig()
    profiles = profiles if profiles is not None else default_venue_profiles()
    if stream and cache_dir is None:
        raise ValueError("stream=True requires a cache_dir to stream through")
    plan = CorpusPlan(config, profiles)
    vocab = build_vocab(config, profiles, plan)
    keep_shards = not stream
    metas: dict[int, dict] = {}
    shards: dict[int, ColumnarShard] = {}

    def finish(result: dict) -> None:
        index = result["shard"]
        payload = result.pop("payload", None)
        if payload is not None and keep_shards:
            shards[index] = payload
        metas[index] = result
        if on_shard is not None:
            on_shard(result)

    pending = set(range(plan.n_shards))
    if workers > 1 and len(pending) > 1:
        from repro.runtime.parallel import worker_init

        fault = None
        if fault_injector is not None:
            fault = {
                "seed": fault_injector.seed,
                "specs": fault_injector.export_specs(),
            }
        crashes = 0
        while pending and crashes <= max_pool_rebuilds:
            mp_context = get_context("fork")
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=mp_context,
                initializer=worker_init,
            )
            futures = {
                pool.submit(_shard_task, {
                    "config": config,
                    "profiles": profiles,
                    "shard": index,
                    "cache_dir": cache_dir,
                    # In streaming (or cached) mode workers return only
                    # metadata; the parent reloads from the cache.
                    "keep_shard": keep_shards and cache_dir is None,
                    "fault": fault,
                    "worker_crashes": crashes,
                }): index
                for index in sorted(pending)
            }
            broken = False
            try:
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = futures[future]
                        finish(future.result())
                        pending.discard(index)
            except BrokenProcessPool:
                # A worker died (OOM kill, segfault, injected kill):
                # every unfinished shard is requeued on a fresh pool.
                # Generation is idempotent and cache writes are atomic,
                # so a half-done crash leaves nothing to repair beyond
                # stranded temp files.
                broken = True
                crashes += 1
                if cache_dir is not None:
                    from repro.io.artifacts import ArtifactCache

                    ArtifactCache(
                        cache_dir, version=SHARD_SCHEMA_VERSION, sweep=False
                    ).sweep_orphans(max_age_seconds=0.0)
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            if not broken:
                break
    # Sequential path: workers == 1, a single shard, or the degraded
    # remainder after exhausting the pool-rebuild budget.  Worker-only
    # fault modes (kill) pass through in-process, so degradation always
    # completes — with the same bytes.
    for index in sorted(pending):
        shard, meta = _produce_shard(
            config, profiles, index, cache_dir, keep_shard=keep_shards
        )
        if shard is not None and keep_shards:
            shards[index] = shard
        finish(dict(meta))

    sizes = plan.shard_sizes()
    fingerprints = [metas[i]["sha"] for i in range(plan.n_shards)]

    if cache_dir is not None:
        def loader(index: int) -> ColumnarShard:
            shard = shards.get(index)
            if shard is not None:
                return shard
            from repro.io.artifacts import ArtifactCache

            cache = ArtifactCache(
                cache_dir, version=SHARD_SCHEMA_VERSION, sweep=False
            )
            records = cache.get(
                SHARD_ARTIFACT_KIND,
                shard_cache_config(config, profiles, index),
            )
            if records is not None:
                return decode_shard(records)
            # Evicted or corrupted behind our back (the cache verifies
            # the body digest on every read, so bit-rot lands here too):
            # regenerate — the shard is a pure function of
            # (config, index).  Counted so a scrubbed-around corruption
            # is visible in `repro obs report`, not silent.
            from repro.obs.metrics import current_metrics

            current_metrics().count("shardgen.recovered_shards")
            return generate_shard(config, profiles, index)
    else:
        def loader(index: int) -> ColumnarShard:
            shard = shards.get(index)
            if shard is not None:
                return shard
            return generate_shard(config, profiles, index)

    return ColumnarCorpus(
        vocab,
        sizes,
        loader,
        shard_fingerprints=fingerprints,
        max_resident=1 if stream else None,
    )
