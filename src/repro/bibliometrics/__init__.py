"""Bibliometric analysis of research communities.

The paper claims that human-centered methods are peripheral in
networking venues, that research agendas mirror the priorities of
dominant players, and that positionality statements are virtually absent
from networking papers (Sections 1, 4, 6.3, 6.4).  Testing such claims
requires a publication corpus; with no network access or scraped data
available in this environment, this package pairs a complete corpus
data model and analysis toolkit with a **calibrated synthetic corpus
generator** (see DESIGN.md, substitution table).  Every analysis code
path — detection, trends, concentration — is identical to what would run
over a scraped corpus.

Modules:

- :mod:`repro.bibliometrics.corpus` -- papers, authors, venues, corpora.
- :mod:`repro.bibliometrics.synthgen` -- synthetic corpus generator.
- :mod:`repro.bibliometrics.methods_detect` -- method-mention detection.
- :mod:`repro.bibliometrics.networks` -- coauthorship/citation graphs.
- :mod:`repro.bibliometrics.metrics` -- concentration and diversity indices.
- :mod:`repro.bibliometrics.trends` -- adoption time series.
"""

from repro.bibliometrics.corpus import Author, Paper, Venue, Corpus
from repro.bibliometrics.synthgen import (
    SyntheticCorpusConfig,
    VenueProfile,
    generate_corpus,
    default_venue_profiles,
)
from repro.bibliometrics.methods_detect import (
    METHOD_FAMILIES,
    MethodMention,
    detect_methods,
    classify_paper,
    uses_human_methods,
)
from repro.bibliometrics.networks import (
    coauthorship_graph,
    citation_graph,
    collaboration_stats,
)
from repro.bibliometrics.metrics import (
    gini,
    lorenz_curve,
    hhi,
    shannon_diversity,
    top_k_share,
    h_index,
)
from repro.bibliometrics.trends import adoption_series, venue_adoption_table
from repro.bibliometrics.statistics import (
    proportion_confint,
    two_proportion_test,
    chi_squared_independence,
    bootstrap_mean_ci,
)
from repro.bibliometrics.demographics import (
    newcomer_share,
    author_retention,
    sector_mix,
    region_mix,
    gatekeeping_index,
    room_report,
)

__all__ = [
    "Author",
    "Paper",
    "Venue",
    "Corpus",
    "SyntheticCorpusConfig",
    "VenueProfile",
    "generate_corpus",
    "default_venue_profiles",
    "METHOD_FAMILIES",
    "MethodMention",
    "detect_methods",
    "classify_paper",
    "uses_human_methods",
    "coauthorship_graph",
    "citation_graph",
    "collaboration_stats",
    "gini",
    "lorenz_curve",
    "hhi",
    "shannon_diversity",
    "top_k_share",
    "h_index",
    "adoption_series",
    "venue_adoption_table",
    "proportion_confint",
    "two_proportion_test",
    "chi_squared_independence",
    "bootstrap_mean_ci",
    "newcomer_share",
    "author_retention",
    "sector_mix",
    "region_mix",
    "gatekeeping_index",
    "room_report",
]
