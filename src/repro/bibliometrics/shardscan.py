"""Per-shard corpus analytics with associative reducers.

The classic analytics (``methods_detect.classify_paper`` over every
paper, ``trends.adoption_series``, the ``metrics`` indices over Counter
values) materialize the whole corpus as :class:`Paper` objects.  At
10⁶ papers that is exactly the ceiling the columnar layout removes — so
this module re-expresses them as a **per-shard scan** producing a small
associative summary, :class:`CorpusAggregates`, that merges like the
in-tree ``MetricsRegistry.merge`` pattern:

    ``scan(A ∪ B) == scan(A).merge(scan(B))``  (order-insensitive)

One shard is resident at a time (the scan drives
:meth:`ColumnarCorpus.iter_shards`, so streaming corpora stay
streamed), each paper's text is scanned exactly once, and the classic
dataclass pipeline remains in place as the equivalence oracle — the
tests assert that :func:`scan_corpus` + the ``*_from_counts`` helpers
in :mod:`repro.bibliometrics.trends` reproduce ``adoption_series`` /
``venue_adoption_table`` verbatim.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.bibliometrics.columnar import ColumnarCorpus, ColumnarShard, CorpusVocab
from repro.bibliometrics.methods_detect import (
    HUMAN_METHOD_FAMILIES,
    classify_text,
)
from repro.core.positionality import (
    STATEMENT_MARKERS,
    has_positionality_statement,
)

__all__ = ["CorpusAggregates", "scan_corpus", "scan_shard"]


def _merge_counter_maps(ours: dict, theirs: dict) -> dict:
    """Key-wise ``Counter`` addition of two ``key -> Counter`` maps."""
    merged = {key: Counter(value) for key, value in ours.items()}
    for key, value in theirs.items():
        bucket = merged.get(key)
        if bucket is None:
            merged[key] = Counter(value)
        else:
            bucket.update(value)
    return merged


@dataclass
class CorpusAggregates:
    """An associative summary of (part of) a corpus.

    Every field is an integer count (or a map of them), so merging is
    exact — no float accumulation order to worry about — which is what
    lets the experiment suite's columnar backend promise bit-identical
    result fingerprints against the classic dataclass pipeline.

    Attributes:
        n_papers: Papers scanned.
        venue_year: ``(venue_id, year) ->`` ``Counter`` with keys
            ``"papers"`` and ``"human"`` (papers detected at or above
            the scan's ``min_mentions`` threshold).
        family_mentions: Total detected mentions per method family.
        topic_papers: Paper counts per generator topic.
        venue_kinds: ``venue_id -> kind`` for every venue that
            contributed papers (carried so table builders need no
            corpus object).
        positionality: ``(venue_id, year) ->`` ``Counter`` with keys
            ``"papers"``, ``"detected"`` (extractor fired), ``"truth"``
            (ground-truth statement present), and the confusion cells
            ``"tp"``/``"fp"``/``"fn"`` — everything E2 needs, at
            by-year resolution so trend analyses need no rescan.
        venue_topics: ``venue_id ->`` per-topic paper ``Counter``
            (E3's agenda-concentration input, resolvable to venue
            kinds via :attr:`venue_kinds`).
        sector_slots: ``venue_id ->`` author-slot ``Counter`` keyed by
            author sector (E3's authorship-share input; one increment
            per byline slot, not per distinct author).
        author_papers: Global author index ``->`` papers authored
            (per-author depth, E12's small-N-engagement input).
        citations: Global paper index ``->`` within-corpus citations
            received.  Papers with zero citations are absent; fill
            from :attr:`n_papers` when a dense vector is needed.
    """

    n_papers: int = 0
    venue_year: dict[tuple[str, int], Counter] = field(default_factory=dict)
    family_mentions: Counter = field(default_factory=Counter)
    topic_papers: Counter = field(default_factory=Counter)
    venue_kinds: dict[str, str] = field(default_factory=dict)
    positionality: dict[tuple[str, int], Counter] = field(default_factory=dict)
    venue_topics: dict[str, Counter] = field(default_factory=dict)
    sector_slots: dict[str, Counter] = field(default_factory=dict)
    author_papers: Counter = field(default_factory=Counter)
    citations: Counter = field(default_factory=Counter)

    def merge(self, other: "CorpusAggregates") -> "CorpusAggregates":
        """The associative (and commutative) combination of two scans."""
        return CorpusAggregates(
            n_papers=self.n_papers + other.n_papers,
            venue_year=_merge_counter_maps(self.venue_year, other.venue_year),
            family_mentions=self.family_mentions + other.family_mentions,
            topic_papers=self.topic_papers + other.topic_papers,
            venue_kinds={**self.venue_kinds, **other.venue_kinds},
            positionality=_merge_counter_maps(
                self.positionality, other.positionality
            ),
            venue_topics=_merge_counter_maps(
                self.venue_topics, other.venue_topics
            ),
            sector_slots=_merge_counter_maps(
                self.sector_slots, other.sector_slots
            ),
            author_papers=self.author_papers + other.author_papers,
            citations=self.citations + other.citations,
        )

    @classmethod
    def merge_all(cls, parts: Iterable["CorpusAggregates"]) -> "CorpusAggregates":
        """Fold :meth:`merge` over ``parts`` (empty input -> empty summary)."""
        merged = cls()
        for part in parts:
            merged = merged.merge(part)
        return merged


def _positionality_candidates(shard: ColumnarShard) -> np.ndarray:
    """Papers that *might* carry a positionality statement (boolean mask).

    :func:`has_positionality_statement` starts by hunting for one of a
    handful of marker phrases, and the overwhelming majority of papers
    carry none — so this prefilter finds every marker occurrence in the
    shard's concatenated text blobs at C speed and flags only the
    papers they land in.  A marker cannot contain the ``"\\n\\n"`` that
    joins a paper's full text, so a marker in the full text is a marker
    in one of the three columns: the mask is a superset of the true
    detections (a straddle across adjacent papers in a blob can
    over-flag, never under-flag), and the real detector has the final
    word on every flagged paper.
    """
    flags = np.zeros(shard.n_papers, dtype=bool)
    for column in (shard.title, shard.abstract, shard.body):
        blob = column.blob.lower()
        offsets = column.offsets
        for marker in STATEMENT_MARKERS:
            start = blob.find(marker)
            while start != -1:
                paper = int(np.searchsorted(offsets, start, side="right")) - 1
                if 0 <= paper < shard.n_papers:
                    flags[paper] = True
                start = blob.find(marker, start + 1)
    return flags


def scan_shard(
    shard: ColumnarShard,
    vocab: CorpusVocab,
    min_mentions: int = 1,
) -> CorpusAggregates:
    """Scan one shard's text and layout columns into an aggregate.

    Each paper's full text is assembled from the shard's string pools
    **once** and handed to the method classifier (plus, for the few
    marker-flagged papers, the positionality detector); everything the
    layout columns can answer — venue/year/topic rollups, sector slot
    mixes, per-author depth, citation counts — is folded with
    vectorized ``bincount`` passes, so the per-paper Python loop stays
    text-classification-bound.
    """
    aggregates = CorpusAggregates(n_papers=shard.n_papers)
    venue_ids = [venue.venue_id for venue in vocab.venues]
    for venue in vocab.venues:
        aggregates.venue_kinds[venue.venue_id] = venue.kind
    venue_year = aggregates.venue_year
    family_mentions = aggregates.family_mentions
    positionality = aggregates.positionality
    year_column = shard.year
    venue_column = shard.venue_idx
    truth_column = shard.positionality
    topics = vocab.topics
    candidates = _positionality_candidates(shard)
    for local in range(shard.n_papers):
        text = shard.full_text(local)
        counts = classify_text(text)
        human_total = 0
        for family, count in counts.items():
            family_mentions[family] += count
            if family in HUMAN_METHOD_FAMILIES:
                human_total += count
        key = (venue_ids[venue_column[local]], int(year_column[local]))
        bucket = venue_year.get(key)
        if bucket is None:
            bucket = venue_year[key] = Counter()
        bucket["papers"] += 1
        if human_total >= min_mentions:
            bucket["human"] += 1

        detected = bool(candidates[local]) and has_positionality_statement(text)
        actual = bool(truth_column[local])
        pos = positionality.get(key)
        if pos is None:
            pos = positionality[key] = Counter()
        pos["papers"] += 1
        pos["detected"] += int(detected)
        pos["truth"] += int(actual)
        if detected and actual:
            pos["tp"] += 1
        elif detected:
            pos["fp"] += 1
        elif actual:
            pos["fn"] += 1

    n_topics = max(1, len(topics))
    n_venues = max(1, len(venue_ids))
    n_sectors = max(1, len(vocab.sectors))

    flat = np.bincount(
        shard.venue_idx.astype(np.int64) * n_topics + shard.topic_idx,
        minlength=n_venues * n_topics,
    )
    for index in np.nonzero(flat)[0]:
        venue_id = venue_ids[int(index) // n_topics]
        topic = topics[int(index) % n_topics]
        count = int(flat[index])
        aggregates.topic_papers[topic] += count
        bucket = aggregates.venue_topics.get(venue_id)
        if bucket is None:
            bucket = aggregates.venue_topics[venue_id] = Counter()
        bucket[topic] += count

    if shard.author_values.size:
        slot_venue = np.repeat(
            shard.venue_idx.astype(np.int64), np.diff(shard.author_indptr)
        )
        slot_sector = vocab.author_sector_idx[shard.author_values]
        flat = np.bincount(
            slot_venue * n_sectors + slot_sector,
            minlength=n_venues * n_sectors,
        )
        for index in np.nonzero(flat)[0]:
            venue_id = venue_ids[int(index) // n_sectors]
            sector = vocab.sectors[int(index) % n_sectors]
            bucket = aggregates.sector_slots.get(venue_id)
            if bucket is None:
                bucket = aggregates.sector_slots[venue_id] = Counter()
            bucket[sector] += int(flat[index])

        depth = np.bincount(shard.author_values)
        for author_index in np.nonzero(depth)[0]:
            aggregates.author_papers[int(author_index)] += int(depth[author_index])

    if shard.ref_values.size:
        cited = np.bincount(shard.ref_values)
        for paper_index in np.nonzero(cited)[0]:
            aggregates.citations[int(paper_index)] += int(cited[paper_index])
    return aggregates


def scan_corpus(
    corpus: ColumnarCorpus,
    min_mentions: int = 1,
) -> CorpusAggregates:
    """Scan a whole columnar corpus, one shard resident at a time.

    Equivalent to classifying every materialized :class:`Paper` (the
    oracle tests pin this down), at columnar cost: the reduction is a
    fold of :meth:`CorpusAggregates.merge` over per-shard scans, so
    the result is independent of shard boundaries.
    """
    merged = CorpusAggregates()
    for shard in corpus.iter_shards():
        merged = merged.merge(scan_shard(shard, corpus.vocab, min_mentions))
    return merged
