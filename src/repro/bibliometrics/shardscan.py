"""Per-shard corpus analytics with associative reducers.

The classic analytics (``methods_detect.classify_paper`` over every
paper, ``trends.adoption_series``, the ``metrics`` indices over Counter
values) materialize the whole corpus as :class:`Paper` objects.  At
10⁶ papers that is exactly the ceiling the columnar layout removes — so
this module re-expresses them as a **per-shard scan** producing a small
associative summary, :class:`CorpusAggregates`, that merges like the
in-tree ``MetricsRegistry.merge`` pattern:

    ``scan(A ∪ B) == scan(A).merge(scan(B))``  (order-insensitive)

One shard is resident at a time (the scan drives
:meth:`ColumnarCorpus.iter_shards`, so streaming corpora stay
streamed), each paper's text is scanned exactly once, and the classic
dataclass pipeline remains in place as the equivalence oracle — the
tests assert that :func:`scan_corpus` + the ``*_from_counts`` helpers
in :mod:`repro.bibliometrics.trends` reproduce ``adoption_series`` /
``venue_adoption_table`` verbatim.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.bibliometrics.columnar import ColumnarCorpus, ColumnarShard, CorpusVocab
from repro.bibliometrics.methods_detect import (
    HUMAN_METHOD_FAMILIES,
    classify_text,
)

__all__ = ["CorpusAggregates", "scan_corpus", "scan_shard"]


@dataclass
class CorpusAggregates:
    """An associative summary of (part of) a corpus.

    Attributes:
        n_papers: Papers scanned.
        venue_year: ``(venue_id, year) ->`` ``Counter`` with keys
            ``"papers"`` and ``"human"`` (papers detected at or above
            the scan's ``min_mentions`` threshold).
        family_mentions: Total detected mentions per method family.
        topic_papers: Paper counts per generator topic.
        venue_kinds: ``venue_id -> kind`` for every venue that
            contributed papers (carried so table builders need no
            corpus object).
    """

    n_papers: int = 0
    venue_year: dict[tuple[str, int], Counter] = field(default_factory=dict)
    family_mentions: Counter = field(default_factory=Counter)
    topic_papers: Counter = field(default_factory=Counter)
    venue_kinds: dict[str, str] = field(default_factory=dict)

    def merge(self, other: "CorpusAggregates") -> "CorpusAggregates":
        """The associative (and commutative) combination of two scans."""
        merged = CorpusAggregates(
            n_papers=self.n_papers + other.n_papers,
            venue_year={key: Counter(value) for key, value in self.venue_year.items()},
            family_mentions=self.family_mentions + other.family_mentions,
            topic_papers=self.topic_papers + other.topic_papers,
            venue_kinds={**self.venue_kinds, **other.venue_kinds},
        )
        for key, value in other.venue_year.items():
            bucket = merged.venue_year.get(key)
            if bucket is None:
                merged.venue_year[key] = Counter(value)
            else:
                bucket.update(value)
        return merged

    @classmethod
    def merge_all(cls, parts: Iterable["CorpusAggregates"]) -> "CorpusAggregates":
        """Fold :meth:`merge` over ``parts`` (empty input -> empty summary)."""
        merged = cls()
        for part in parts:
            merged = merged.merge(part)
        return merged


def scan_shard(
    shard: ColumnarShard,
    vocab: CorpusVocab,
    min_mentions: int = 1,
) -> CorpusAggregates:
    """Scan one shard's text and layout columns into an aggregate.

    Each paper's full text is assembled from the shard's string pools
    and scanned **once**; venue/year/topic come straight from the
    integer columns, so nothing else materializes.
    """
    aggregates = CorpusAggregates(n_papers=shard.n_papers)
    venue_ids = [venue.venue_id for venue in vocab.venues]
    for venue in vocab.venues:
        aggregates.venue_kinds[venue.venue_id] = venue.kind
    venue_year = aggregates.venue_year
    family_mentions = aggregates.family_mentions
    topic_papers = aggregates.topic_papers
    year_column = shard.year
    venue_column = shard.venue_idx
    topic_column = shard.topic_idx
    topics = vocab.topics
    for local in range(shard.n_papers):
        counts = classify_text(shard.full_text(local))
        human_total = 0
        for family, count in counts.items():
            family_mentions[family] += count
            if family in HUMAN_METHOD_FAMILIES:
                human_total += count
        key = (venue_ids[venue_column[local]], int(year_column[local]))
        bucket = venue_year.get(key)
        if bucket is None:
            bucket = venue_year[key] = Counter()
        bucket["papers"] += 1
        if human_total >= min_mentions:
            bucket["human"] += 1
        topic_papers[topics[topic_column[local]]] += 1
    return aggregates


def scan_corpus(
    corpus: ColumnarCorpus,
    min_mentions: int = 1,
) -> CorpusAggregates:
    """Scan a whole columnar corpus, one shard resident at a time.

    Equivalent to classifying every materialized :class:`Paper` (the
    oracle tests pin this down), at columnar cost: the reduction is a
    fold of :meth:`CorpusAggregates.merge` over per-shard scans, so
    the result is independent of shard boundaries.
    """
    merged = CorpusAggregates()
    for shard in corpus.iter_shards():
        merged = merged.merge(scan_shard(shard, corpus.vocab, min_mentions))
    return merged
